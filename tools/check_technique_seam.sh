#!/usr/bin/env bash
# Seam guard for the wrong-path technique layer.
#
# Mode-specific behavior belongs in crates/core/src/technique/ — the
# strategy layer extracted from the old Simulator::run monolith. A match
# arm on WrongPathMode anywhere else means per-mode dispatch is leaking
# back into the run loop (or a consumer), defeating the pluggable
# registry. Comparisons (`mode == WrongPathMode::…`), label lookups, and
# iteration over WrongPathMode::ALL are all fine; only `=>` match arms
# are flagged.
#
# Run from the repository root; exits non-zero and lists offenders when
# the seam is violated.

set -u

pattern='WrongPathMode::[A-Za-z]+([[:space:]]*\|[[:space:]]*WrongPathMode::[A-Za-z]+)*[[:space:]]*=>'

offenders=$(grep -rEn "$pattern" crates src examples tests 2>/dev/null \
    | grep -v '^crates/core/src/technique/' || true)

if [ -n "$offenders" ]; then
    echo "error: WrongPathMode match arms outside crates/core/src/technique/:" >&2
    echo "$offenders" >&2
    echo >&2
    echo "Mode-specific dispatch belongs in the technique layer." >&2
    echo "Implement it inside a WrongPathTechnique (or compare modes" >&2
    echo "with == / iterate WrongPathMode::ALL instead of matching)." >&2
    exit 1
fi

echo "technique seam clean: no WrongPathMode match arms outside crates/core/src/technique/"
