//! `.fsm` repro artifacts: a textual, diffable program format.
//!
//! A divergence found by the fuzzer is only useful if it can be re-run
//! after the generator's weights change, so shrunk repros are written in
//! a format independent of any seed: the assembler syntax the
//! disassembler already prints (`add x3, x1, x2`, `sd x1, 8(x28)`,
//! `beq x1, x2, 0x10010`, ...), one instruction per line, preceded by
//! `base`/`entry` headers. `#`-lines are comments; [`from_text`] parses
//! exactly what [`to_text`] emits, and round-trips bit-identically.

use ffsim_isa::{Addr, AluOp, BranchCond, FReg, FpCmpOp, FpOp, Instr, MemWidth, Program, Reg};
use std::path::Path;

/// Renders `program` as a `.fsm` document.
#[must_use]
pub fn to_text(program: &Program) -> String {
    let mut out = String::from("# ffsim program v1\n");
    out.push_str(&format!("base {:#x}\n", program.base()));
    out.push_str(&format!("entry {:#x}\n", program.entry()));
    for (_, instr) in program.iter() {
        out.push_str(&format!("{instr}\n"));
    }
    out
}

/// Parses a `.fsm` document back into a [`Program`].
///
/// # Errors
///
/// A message naming the offending line.
pub fn from_text(text: &str) -> Result<Program, String> {
    let mut base: Option<Addr> = None;
    let mut entry: Option<Addr> = None;
    let mut instrs = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line}", n + 1);
        if let Some(v) = line.strip_prefix("base ") {
            base = Some(parse_int(v.trim()).map_err(|_| err("bad base address"))? as Addr);
        } else if let Some(v) = line.strip_prefix("entry ") {
            entry = Some(parse_int(v.trim()).map_err(|_| err("bad entry address"))? as Addr);
        } else {
            instrs.push(parse_instr(line).map_err(|e| err(&e))?);
        }
    }
    let base = base.ok_or("missing base header")?;
    if instrs.is_empty() {
        return Err("no instructions".to_string());
    }
    let entry = entry.unwrap_or(base);
    if !base.is_multiple_of(4) {
        return Err(format!("base {base:#x} is not 4-byte aligned"));
    }
    let end = base + 4 * instrs.len() as Addr;
    if entry < base || entry >= end || !entry.is_multiple_of(4) {
        return Err(format!("entry {entry:#x} outside program text"));
    }
    Ok(Program::with_entry(base, entry, instrs))
}

/// Saves `program` to `path` in `.fsm` form.
///
/// # Errors
///
/// Any I/O failure writing the file.
pub fn save(path: &Path, program: &Program) -> Result<(), String> {
    std::fs::write(path, to_text(program)).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Loads a `.fsm` program from `path`.
///
/// # Errors
///
/// I/O failures or any parse error from [`from_text`].
pub fn load(path: &Path) -> Result<Program, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    from_text(&text)
}

/// Paths produced by [`write_repro`].
#[derive(Clone, Debug)]
pub struct ReproPaths {
    /// The `.fsm` program artifact.
    pub fsm: std::path::PathBuf,
    /// The regression-test stub referencing it.
    pub test_stub: std::path::PathBuf,
}

/// Writes a shrunk repro as a reusable `.fsm` artifact plus a regression
/// test stub. `note` (typically the divergence description) is embedded
/// as header comments so the artifact is self-describing.
///
/// # Errors
///
/// Any I/O failure creating `dir` or writing the two files.
pub fn write_repro(
    dir: &Path,
    name: &str,
    program: &Program,
    note: &str,
) -> Result<ReproPaths, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let fsm = dir.join(format!("{name}.fsm"));
    let mut doc = String::new();
    for line in note.lines() {
        doc.push_str(&format!("# {line}\n"));
    }
    doc.push_str(&to_text(program));
    std::fs::write(&fsm, doc).map_err(|e| format!("writing {}: {e}", fsm.display()))?;

    let test_stub = dir.join(format!("{name}_test.rs"));
    let stub = format!(
        "//! Regression stub for `{name}.fsm`. Once the divergence is fixed,\n\
         //! move this file into `crates/fuzz/tests/` (with the `.fsm` next to\n\
         //! it) so the repro guards against regressions.\n\
         \n\
         #[test]\n\
         fn {name}_stays_divergence_free() {{\n\
         \x20   let program = ffsim_fuzz::artifact::from_text(include_str!(\"{name}.fsm\"))\n\
         \x20       .expect(\"repro artifact parses\");\n\
         \x20   ffsim_fuzz::Oracle::builtin()\n\
         \x20       .check(&program)\n\
         \x20       .expect(\"techniques agree on the repro\");\n\
         }}\n"
    );
    std::fs::write(&test_stub, stub)
        .map_err(|e| format!("writing {}: {e}", test_stub.display()))?;
    Ok(ReproPaths { fsm, test_stub })
}

fn parse_int(s: &str) -> Result<i64, ()> {
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| ())?
    } else {
        s.parse::<i64>().map_err(|_| ())?
    };
    Ok(if neg { -v } else { v })
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let idx = s
        .strip_prefix('x')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| (n as usize) < ffsim_isa::NUM_INT_REGS)
        .ok_or(format!("bad integer register {s}"))?;
    Ok(Reg::new(idx))
}

fn parse_freg(s: &str) -> Result<FReg, String> {
    let idx = s
        .strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| (n as usize) < ffsim_isa::NUM_FP_REGS)
        .ok_or(format!("bad fp register {s}"))?;
    Ok(FReg::new(idx))
}

/// Splits `offset(base)` into its parts.
fn parse_mem_operand(s: &str) -> Result<(i64, &str), String> {
    let open = s.find('(').ok_or(format!("bad memory operand {s}"))?;
    let close = s
        .strip_suffix(')')
        .ok_or(format!("bad memory operand {s}"))?;
    let offset = parse_int(&s[..open]).map_err(|_| format!("bad offset in {s}"))?;
    Ok((offset, &close[open + 1..]))
}

fn alu_op(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        _ => return None,
    })
}

/// Parses one disassembly line into an [`Instr`].
fn parse_instr(line: &str) -> Result<Instr, String> {
    let (mnemonic, rest) = line.split_once(' ').unwrap_or((line, ""));
    let ops: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let want = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("{mnemonic} expects {n} operands"))
        }
    };

    if let Some(op) = alu_op(mnemonic) {
        want(3)?;
        return Ok(Instr::Alu {
            op,
            rd: parse_reg(ops[0])?,
            rs1: parse_reg(ops[1])?,
            rs2: parse_reg(ops[2])?,
        });
    }
    if let Some(op) = mnemonic.strip_suffix('i').and_then(alu_op) {
        want(3)?;
        return Ok(Instr::AluImm {
            op,
            rd: parse_reg(ops[0])?,
            rs1: parse_reg(ops[1])?,
            imm: parse_int(ops[2]).map_err(|_| format!("bad immediate {}", ops[2]))?,
        });
    }

    let load = |width, signed| -> Result<Instr, String> {
        want(2)?;
        let (offset, base) = parse_mem_operand(ops[1])?;
        Ok(Instr::Load {
            rd: parse_reg(ops[0])?,
            base: parse_reg(base)?,
            offset,
            width,
            signed,
        })
    };
    let store = |width| -> Result<Instr, String> {
        want(2)?;
        let (offset, base) = parse_mem_operand(ops[1])?;
        Ok(Instr::Store {
            src: parse_reg(ops[0])?,
            base: parse_reg(base)?,
            offset,
            width,
        })
    };
    let fp_alu = |op| -> Result<Instr, String> {
        want(3)?;
        Ok(Instr::FpAlu {
            op,
            fd: parse_freg(ops[0])?,
            fs1: parse_freg(ops[1])?,
            fs2: parse_freg(ops[2])?,
        })
    };
    let fp_cmp = |op| -> Result<Instr, String> {
        want(3)?;
        Ok(Instr::FpCmp {
            op,
            rd: parse_reg(ops[0])?,
            fs1: parse_freg(ops[1])?,
            fs2: parse_freg(ops[2])?,
        })
    };
    let branch = |cond| -> Result<Instr, String> {
        want(3)?;
        Ok(Instr::Branch {
            cond,
            rs1: parse_reg(ops[0])?,
            rs2: parse_reg(ops[1])?,
            target: parse_int(ops[2]).map_err(|_| format!("bad target {}", ops[2]))? as Addr,
        })
    };

    match mnemonic {
        "li" => {
            want(2)?;
            Ok(Instr::LoadImm {
                rd: parse_reg(ops[0])?,
                imm: parse_int(ops[1]).map_err(|_| format!("bad immediate {}", ops[1]))?,
            })
        }
        "lb" => load(MemWidth::B, true),
        "lbu" => load(MemWidth::B, false),
        "lh" => load(MemWidth::H, true),
        "lhu" => load(MemWidth::H, false),
        "lw" => load(MemWidth::W, true),
        "lwu" => load(MemWidth::W, false),
        // `ld` always sign-extends nothing (full width); Display prints
        // it for both signedness flags, so parse as signed.
        "ld" => load(MemWidth::D, true),
        "sb" => store(MemWidth::B),
        "sh" => store(MemWidth::H),
        "sw" => store(MemWidth::W),
        "sd" => store(MemWidth::D),
        "fadd" => fp_alu(FpOp::Add),
        "fsub" => fp_alu(FpOp::Sub),
        "fmul" => fp_alu(FpOp::Mul),
        "fdiv" => fp_alu(FpOp::Div),
        "fmin" => fp_alu(FpOp::Min),
        "fmax" => fp_alu(FpOp::Max),
        "fld" => {
            want(2)?;
            let (offset, base) = parse_mem_operand(ops[1])?;
            Ok(Instr::FpLoad {
                fd: parse_freg(ops[0])?,
                base: parse_reg(base)?,
                offset,
            })
        }
        "fsd" => {
            want(2)?;
            let (offset, base) = parse_mem_operand(ops[1])?;
            Ok(Instr::FpStore {
                fs: parse_freg(ops[0])?,
                base: parse_reg(base)?,
                offset,
            })
        }
        "feq" => fp_cmp(FpCmpOp::Eq),
        "flt" => fp_cmp(FpCmpOp::Lt),
        "fle" => fp_cmp(FpCmpOp::Le),
        "fcvt.d.l" => {
            want(2)?;
            Ok(Instr::IntToFp {
                fd: parse_freg(ops[0])?,
                rs: parse_reg(ops[1])?,
            })
        }
        "fcvt.l.d" => {
            want(2)?;
            Ok(Instr::FpToInt {
                rd: parse_reg(ops[0])?,
                fs: parse_freg(ops[1])?,
            })
        }
        "beq" => branch(BranchCond::Eq),
        "bne" => branch(BranchCond::Ne),
        "blt" => branch(BranchCond::Lt),
        "bge" => branch(BranchCond::Ge),
        "bltu" => branch(BranchCond::Ltu),
        "bgeu" => branch(BranchCond::Geu),
        "jal" => {
            want(2)?;
            Ok(Instr::Jal {
                rd: parse_reg(ops[0])?,
                target: parse_int(ops[1]).map_err(|_| format!("bad target {}", ops[1]))? as Addr,
            })
        }
        "jalr" => {
            want(2)?;
            let (offset, base) = parse_mem_operand(ops[1])?;
            Ok(Instr::Jalr {
                rd: parse_reg(ops[0])?,
                base: parse_reg(base)?,
                offset,
            })
        }
        "nop" => Ok(Instr::Nop),
        "halt" => Ok(Instr::Halt),
        other => Err(format!("unknown mnemonic {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn generated_programs_round_trip() {
        for seed in 0..60 {
            let p = generate(seed);
            let text = to_text(&p);
            let back = from_text(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // `ld` loses its (meaningless) signedness flag; normalize it
            // before comparison.
            let norm = |p: &Program| {
                p.iter()
                    .map(|(_, i)| match *i {
                        Instr::Load {
                            rd,
                            base,
                            offset,
                            width: MemWidth::D,
                            ..
                        } => Instr::Load {
                            rd,
                            base,
                            offset,
                            width: MemWidth::D,
                            signed: true,
                        },
                        other => other,
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(norm(&p), norm(&back), "seed {seed}");
            assert_eq!(p.base(), back.base());
            assert_eq!(p.entry(), back.entry());
            // And the text itself is a fixpoint.
            assert_eq!(text, to_text(&back), "seed {seed}: text not a fixpoint");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_text("").is_err());
        assert!(from_text("base 0x1000\n").is_err());
        assert!(from_text("base 0x1000\nbogus x1, x2\n").is_err());
        assert!(from_text("base 0x1001\nnop\n").is_err());
        assert!(from_text("base 0x1000\nentry 0x2000\nnop\n").is_err());
        assert!(from_text("nop\n").is_err(), "missing base header");
    }

    #[test]
    fn handwritten_document_parses() {
        let text = "\
# a tiny diamond
base 0x10000
entry 0x10000
li x1, 5
beq x1, x0, 0x10010
addi x1, x1, -1
jal x0, 0x10010
halt
";
        let p = from_text(text).expect("parses");
        assert_eq!(p.len(), 5);
        assert!(matches!(p.instr_at(0x10010), Some(Instr::Halt)));
    }
}
