//! The cross-technique differential oracle.
//!
//! The paper's central claim is that the four wrong-path techniques are
//! *timing* techniques: they may disagree on cycles, but the correct-path
//! architectural outcome — retired instruction count, final state digest,
//! and any typed error — must be bit-identical across them. The oracle
//! runs one program through every technique in a [`TechniqueRegistry`]
//! and reports the first disagreement as a [`Divergence`].
//!
//! Each program is checked under several *variants* that exercise the
//! fault-injection knobs from the robustness layer (trapping fault
//! models under the squash policy, wrong-path pc corruption, a tight
//! wrong-path watchdog): faults on a wrong path are squashed, so the
//! post-squash architectural state must still agree everywhere.
//!
//! Two further cross-checks ride along:
//! - when the program runs to `halt`, the baseline digest must equal a
//!   pure functional execution of the same program (no timing model at
//!   all), and
//! - wrong-path emulation's checkpoint/restore must be exact: at every
//!   branch, the emulator digest after a squashed wrong-path episode
//!   must equal the digest before the redirect.

use ffsim_core::{SimConfig, Simulator, TechniqueRegistry};
use ffsim_emu::{Emulator, FaultPolicy, FollowComputed, Memory};
use ffsim_isa::{Instr, Program, INSTR_BYTES};
use ffsim_uarch::CoreConfig;
use std::fmt;

/// Fault-injection variants every program is checked under. All of them
/// keep the squash policy: wrong-path faults must be absorbed, so the
/// cross-technique agreement contract is unchanged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Default permissive configuration.
    Baseline,
    /// Trapping fault model (divide-by-zero, address limit) with the
    /// squash policy: wrong paths fault and are squashed; a correct-path
    /// fault is a typed error all techniques must agree on.
    TrapFaults,
    /// Deterministic wrong-path start-pc corruption (wpemul-only knob;
    /// other techniques ignore it, and state must still agree).
    PcCorruption,
    /// A tight wrong-path watchdog: episodes are cut short early.
    TightWatchdog,
    /// Per-instruction frontend→timing handoff (`handoff_batch = 1`):
    /// batching is a pure host-speed knob, so unit batches must leave
    /// every architectural observable untouched.
    UnitBatch,
}

impl Variant {
    /// All variants, in checking order.
    pub const ALL: [Variant; 5] = [
        Variant::Baseline,
        Variant::TrapFaults,
        Variant::PcCorruption,
        Variant::TightWatchdog,
        Variant::UnitBatch,
    ];

    /// Stable label used in reports and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::TrapFaults => "trap-faults",
            Variant::PcCorruption => "pc-corruption",
            Variant::TightWatchdog => "tight-watchdog",
            Variant::UnitBatch => "unit-batch",
        }
    }

    /// Applies the variant's knobs to a run configuration.
    pub fn apply(self, cfg: &mut SimConfig) {
        match self {
            Variant::Baseline => {}
            Variant::TrapFaults => {
                cfg.fault_model.trap_div_zero = true;
                cfg.fault_policy = FaultPolicy::SquashWrongPath;
            }
            Variant::PcCorruption => {
                cfg.wp_pc_corruption = Some(ffsim_core::PcCorruption {
                    every_nth: 3,
                    xor_mask: 0x40,
                });
            }
            Variant::TightWatchdog => {
                cfg.wrong_path_watchdog = Some(24);
            }
            Variant::UnitBatch => {
                cfg.handoff_batch = 1;
            }
        }
    }
}

/// What one technique produced for one (program, variant) pair. Timing
/// (cycles) is deliberately absent: techniques may differ there.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The run finished; architectural observables.
    Completed {
        /// Retired correct-path instructions.
        instructions: u64,
        /// Final architectural state digest (registers + memory).
        state_digest: u64,
    },
    /// The run ended with a typed error (display form).
    Failed(String),
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed {
                instructions,
                state_digest,
            } => write!(
                f,
                "ok: {instructions} instructions, digest {state_digest:#018x}"
            ),
            RunOutcome::Failed(e) => write!(f, "error: {e}"),
        }
    }
}

/// A cross-technique disagreement: the smoking gun the fuzzer hunts for.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The fault-injection variant the disagreement appeared under.
    pub variant: &'static str,
    /// Technique the baseline outcome came from (first registry entry).
    pub baseline_label: String,
    /// The baseline outcome.
    pub baseline: RunOutcome,
    /// The disagreeing technique.
    pub label: String,
    /// What it produced instead.
    pub outcome: RunOutcome,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} disagrees with {}: {} vs {}",
            self.variant, self.label, self.baseline_label, self.outcome, self.baseline
        )
    }
}

/// What the oracle observed for a divergence-free program.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleReport {
    /// The program ran to `halt` (vs. the instruction cap) at baseline.
    pub ran_to_halt: bool,
    /// Any variant produced a typed (correct-path) error.
    pub faulted: bool,
    /// Simulations executed (techniques × variants).
    pub runs: u32,
}

/// The differential oracle. Holds the registry under test and the shared
/// run parameters.
pub struct Oracle {
    registry: TechniqueRegistry,
    core: CoreConfig,
    /// Correct-path instruction cap per run — a safety net for runaway
    /// programs; generated programs terminate well below it.
    pub max_instructions: u64,
    /// Variants to check; defaults to [`Variant::ALL`].
    pub variants: Vec<Variant>,
}

impl fmt::Debug for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Oracle")
            .field("registry", &self.registry)
            .field("max_instructions", &self.max_instructions)
            .field("variants", &self.variants)
            .finish_non_exhaustive()
    }
}

impl Oracle {
    /// An oracle over the built-in techniques on the tiny test core.
    #[must_use]
    pub fn builtin() -> Oracle {
        Oracle::with_registry(TechniqueRegistry::builtin())
    }

    /// An oracle over an explicit registry (the hook broken-technique
    /// tests use: register a fifth technique and watch it get caught).
    #[must_use]
    pub fn with_registry(registry: TechniqueRegistry) -> Oracle {
        Oracle {
            registry,
            core: CoreConfig::tiny_for_tests(),
            max_instructions: 100_000,
            variants: Variant::ALL.to_vec(),
        }
    }

    /// The registry under test.
    #[must_use]
    pub fn registry(&self) -> &TechniqueRegistry {
        &self.registry
    }

    /// Runs `program` through every registered technique under every
    /// variant and cross-checks the architectural outcomes.
    ///
    /// # Errors
    ///
    /// The first [`Divergence`] found.
    pub fn check(&self, program: &Program) -> Result<OracleReport, Divergence> {
        let mut report = OracleReport::default();
        for &variant in &self.variants {
            let mut baseline: Option<(String, RunOutcome)> = None;
            for (label, mode) in self.registry.entries() {
                let mut cfg = SimConfig::with_core(self.core.clone(), mode);
                cfg.max_instructions = Some(self.max_instructions);
                variant.apply(&mut cfg);
                let outcome = self.run_one(program, label, cfg);
                report.runs += 1;
                if matches!(outcome, RunOutcome::Failed(_)) {
                    report.faulted = true;
                }
                match &baseline {
                    None => {
                        if variant == Variant::Baseline {
                            if let RunOutcome::Completed { instructions, .. } = outcome {
                                report.ran_to_halt = instructions < self.max_instructions;
                            }
                        }
                        baseline = Some((label.to_string(), outcome));
                    }
                    Some((base_label, base)) => {
                        if outcome != *base {
                            return Err(Divergence {
                                variant: variant.label(),
                                baseline_label: base_label.clone(),
                                baseline: base.clone(),
                                label: label.to_string(),
                                outcome,
                            });
                        }
                    }
                }
            }
            // Functional reference: a program that ran to halt must leave
            // the same architectural state as a run with no timing model
            // at all (only meaningful without injected fault models).
            if variant == Variant::Baseline && report.ran_to_halt {
                if let Some((base_label, RunOutcome::Completed { state_digest, .. })) = &baseline {
                    let reference = functional_digest(program, self.max_instructions);
                    if let Some(reference) = reference {
                        if reference != *state_digest {
                            return Err(Divergence {
                                variant: "functional-reference",
                                baseline_label: "functional".to_string(),
                                baseline: RunOutcome::Completed {
                                    instructions: 0,
                                    state_digest: reference,
                                },
                                label: base_label.clone(),
                                outcome: RunOutcome::Completed {
                                    instructions: 0,
                                    state_digest: *state_digest,
                                },
                            });
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    fn run_one(&self, program: &Program, label: &str, cfg: SimConfig) -> RunOutcome {
        let technique = self
            .registry
            .build(label, &cfg)
            .expect("iterated registry entries are buildable");
        let run = Simulator::with_technique(program.clone(), Memory::new(), cfg, technique)
            .and_then(Simulator::run);
        match run {
            Ok(r) => RunOutcome::Completed {
                instructions: r.instructions,
                state_digest: r.state_digest,
            },
            Err(e) => RunOutcome::Failed(e.to_string()),
        }
    }
}

/// Digest of a pure functional execution (no timing model), or `None`
/// when the program does not halt within `max_steps` (then the simulator
/// runs were truncated and their runahead digests are not comparable).
fn functional_digest(program: &Program, max_steps: u64) -> Option<u64> {
    let mut emu = Emulator::with_memory(program.clone(), Memory::new()).ok()?;
    emu.run_to_halt(max_steps).ok()?;
    emu.is_halted().then(|| emu.digest())
}

/// Checks wrong-path emulation's checkpoint/restore exactness on the
/// functional emulator directly: at every conditional branch along the
/// correct path, emulate the *not-taken* path as a squashed wrong-path
/// episode and require the state digest after the squash to equal the
/// digest before the redirect. Consecutive branches exercise
/// back-to-back episodes (nested-misprediction checkpoint reuse).
///
/// # Errors
///
/// A description of the first digest mismatch.
pub fn check_restore_exactness(program: &Program, budget: usize) -> Result<u64, String> {
    let mut emu = Emulator::with_memory(program.clone(), Memory::new())
        .map_err(|e| format!("program entry not executable: {e:?}"))?;
    let mut episodes = 0u64;
    for _ in 0..1_000_000u64 {
        if emu.is_halted() {
            return Ok(episodes);
        }
        let inst = match emu.step() {
            Ok(inst) => inst,
            Err(e) => return Err(format!("correct-path fault during walk: {e:?}")),
        };
        let Some(outcome) = inst.branch else { continue };
        if !matches!(inst.instr, Instr::Branch { .. }) {
            continue;
        }
        // The wrong path starts wherever the branch did NOT go.
        let wrong_start = if outcome.taken {
            inst.pc + INSTR_BYTES
        } else {
            inst.instr
                .direct_target()
                .expect("conditional branches are direct")
        };
        let before = emu.digest();
        let _ =
            emu.emulate_wrong_path_bounded(wrong_start, budget, Some(4096), &mut FollowComputed);
        let after = emu.digest();
        if before != after {
            return Err(format!(
                "checkpoint/restore leak at branch {:#x}: digest {before:#018x} -> {after:#018x}",
                inst.pc
            ));
        }
        episodes += 1;
    }
    Err("program did not halt within the walk bound".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn builtin_techniques_agree_on_generated_programs() {
        let oracle = Oracle::builtin();
        for seed in 0..12 {
            let p = generate(seed);
            let report = oracle
                .check(&p)
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            assert_eq!(report.runs, 20, "4 techniques x 5 variants");
        }
    }

    #[test]
    fn restore_exactness_holds_on_generated_programs() {
        for seed in 0..25 {
            let p = generate(seed);
            let episodes =
                check_restore_exactness(&p, 64).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Generated programs are branch-dense; most seeds have many
            // episodes, every seed has at least a handful.
            assert!(episodes > 0, "seed {seed}: no branches walked");
        }
    }

    #[test]
    fn variant_labels_are_stable() {
        let labels: Vec<&str> = Variant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec![
                "baseline",
                "trap-faults",
                "pc-corruption",
                "tight-watchdog",
                "unit-batch",
            ]
        );
    }
}
