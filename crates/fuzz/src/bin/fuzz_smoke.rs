//! Deterministic differential fuzzing smoke run.
//!
//! Generates `--budget` programs from `--seed`, runs every one through
//! the cross-technique oracle (all config variants) plus the
//! checkpoint/restore exactness check, and prints a summary. Output is
//! byte-identical across runs for a fixed seed — no wall-clock, no
//! ambient randomness — so CI diffs it directly.
//!
//! Exit status: 0 when divergence-free, 1 when any program diverged (the
//! shrunk repro is printed and, with `--artifact-dir`, written to disk).
//!
//! With `--corpus DIR`, the permanent regression corpus at `DIR` is
//! replayed through the oracle *before* fuzzing — old divergences must
//! stay fixed — and any newly shrunk divergence is added to it
//! (content-addressed, so re-finding a known program changes nothing).

use ffsim_fuzz::oracle::check_restore_exactness;
use ffsim_fuzz::{artifact, corpus, gen, shrink, Oracle};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seed: u64,
    budget: u64,
    artifact_dir: Option<PathBuf>,
    corpus: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0xf5,
        budget: 200,
        artifact_dir: None,
        corpus: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                let parsed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                args.seed = parsed.map_err(|_| format!("bad --seed {v}"))?;
            }
            "--budget" => {
                let v = value("--budget")?;
                args.budget = v.parse().map_err(|_| format!("bad --budget {v}"))?;
            }
            "--artifact-dir" => args.artifact_dir = Some(PathBuf::from(value("--artifact-dir")?)),
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus")?)),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz_smoke [--seed N|0xN] [--budget N] [--artifact-dir DIR] \
                     [--corpus DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.budget == 0 {
        return Err("--budget must be at least 1".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz_smoke: {e}");
            return ExitCode::FAILURE;
        }
    };
    let oracle = Oracle::builtin();
    println!(
        "fuzz_smoke: seed={:#x} budget={} techniques={} variants={}",
        args.seed,
        args.budget,
        oracle.registry().len(),
        oracle.variants.len()
    );

    // Replay the permanent corpus first: a fuzzing run that re-breaks an
    // old repro should say so before burning budget on new programs.
    if let Some(dir) = &args.corpus {
        let entries = match corpus::entries(dir) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("fuzz_smoke: {e}");
                return ExitCode::FAILURE;
            }
        };
        for path in &entries {
            let program = match artifact::load(path) {
                Ok(program) => program,
                Err(e) => {
                    println!("CORPUS PARSE FAILURE: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(divergence) = oracle.check(&program) {
                println!("CORPUS REGRESSION at {}:", path.display());
                println!("  {divergence}");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "fuzz_smoke: corpus: {} entries replayed, 0 regressions",
            entries.len()
        );
    }

    let (mut halted, mut truncated, mut episodes, mut runs) = (0u64, 0u64, 0u64, 0u64);
    for index in 0..args.budget {
        let program_seed = gen::seed_for(args.seed, index);
        let program = gen::generate(program_seed);
        match oracle.check(&program) {
            Ok(report) => {
                runs += report.runs as u64;
                if report.ran_to_halt {
                    halted += 1;
                } else {
                    truncated += 1;
                }
            }
            Err(divergence) => {
                println!("DIVERGENCE at program {index} (seed {program_seed:#x}):");
                println!("  {divergence}");
                let repro = shrink(&program, |candidate| oracle.check(candidate).is_err());
                println!("shrunk repro ({} instructions):", repro.len());
                for line in artifact::to_text(&repro).lines() {
                    println!("  {line}");
                }
                if let Some(dir) = &args.artifact_dir {
                    let name = format!("divergence_{program_seed:016x}");
                    match artifact::write_repro(dir, &name, &repro, &divergence.to_string()) {
                        Ok(paths) => {
                            println!("wrote {}", paths.fsm.display());
                            println!("wrote {}", paths.test_stub.display());
                        }
                        Err(e) => eprintln!("fuzz_smoke: writing artifacts: {e}"),
                    }
                }
                if let Some(dir) = &args.corpus {
                    match corpus::write_entry(dir, &repro, &divergence.to_string()) {
                        Ok(Some(path)) => println!("corpus: added {}", path.display()),
                        Ok(None) => println!("corpus: repro already present"),
                        Err(e) => eprintln!("fuzz_smoke: writing corpus entry: {e}"),
                    }
                }
                return ExitCode::FAILURE;
            }
        }
        // The restore-exactness cross-check is cheaper than the full
        // differential matrix; run it on every program as well.
        match check_restore_exactness(&program, 64) {
            Ok(n) => episodes += n,
            Err(e) => {
                println!("RESTORE MISMATCH at program {index} (seed {program_seed:#x}):");
                println!("  {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "fuzz_smoke: {} programs, {} technique runs, 0 divergences",
        args.budget, runs
    );
    println!(
        "fuzz_smoke: {halted} ran to halt, {truncated} hit the instruction cap, \
         {episodes} wrong-path restore episodes verified"
    );
    ExitCode::SUCCESS
}
