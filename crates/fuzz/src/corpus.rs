//! The permanent regression corpus: a directory of `.fsm` programs that
//! once exposed (or nearly exposed) a divergence, replayed by every
//! fuzzing run and by the test suite.
//!
//! Entries are **content-addressed**: the file name embeds a digest of
//! the canonical `.fsm` body, so re-finding a known program is a no-op
//! and the corpus never accumulates duplicates. The repository keeps its
//! corpus at the repo root (`corpus/`); `fuzz_smoke --corpus DIR` replays
//! it before fuzzing and writes newly shrunk divergences back to it.

use crate::artifact;
use ffsim_isa::Program;
use std::path::{Path, PathBuf};

/// FNV-1a over the canonical `.fsm` body; the corpus entry's identity.
fn digest(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The corpus file name for `program` (stable across note changes: only
/// the program text is digested).
#[must_use]
pub fn entry_name(program: &Program) -> String {
    format!("corpus-{:016x}.fsm", digest(&artifact::to_text(program)))
}

/// Lists the corpus entries in `dir`, sorted by file name so replay
/// order is deterministic. A missing directory is an empty corpus, not
/// an error.
///
/// # Errors
///
/// Any I/O failure reading an existing directory.
pub fn entries(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let read = match std::fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading corpus {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = read
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().is_some_and(|e| e == "fsm")).then_some(path)
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// Adds `program` to the corpus at `dir`, creating the directory if
/// needed. `note` lines become self-describing header comments. Returns
/// the written path, or `None` when an identical program is already in
/// the corpus.
///
/// # Errors
///
/// Any I/O failure creating the directory or writing the entry.
pub fn write_entry(dir: &Path, program: &Program, note: &str) -> Result<Option<PathBuf>, String> {
    let path = dir.join(entry_name(program));
    if path.exists() {
        return Ok(None);
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let mut doc = String::new();
    for line in note.lines() {
        doc.push_str(&format!("# {line}\n"));
    }
    doc.push_str(&artifact::to_text(program));
    std::fs::write(&path, doc).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ffsim-corpus-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        assert_eq!(
            entries(&tmp_dir("corpus-missing")).expect("empty"),
            Vec::<PathBuf>::new()
        );
    }

    #[test]
    fn entries_are_content_addressed_and_deduplicated() {
        let dir = tmp_dir("corpus-dedupe");
        let program = generate(7);
        let first = write_entry(&dir, &program, "first find").expect("write");
        assert!(first.is_some(), "new program is written");
        let again = write_entry(&dir, &program, "different note, same program").expect("write");
        assert!(again.is_none(), "identical program deduplicates");
        assert_eq!(entries(&dir).expect("list").len(), 1);

        let other = write_entry(&dir, &generate(8), "another").expect("write");
        assert!(other.is_some());
        assert_eq!(entries(&dir).expect("list").len(), 2);
    }

    #[test]
    fn written_entries_replay_bit_identically() {
        let dir = tmp_dir("corpus-replay");
        let program = generate(11);
        let path = write_entry(&dir, &program, "note\nwith two lines")
            .expect("write")
            .expect("new entry");
        let back = artifact::load(&path).expect("corpus entry parses");
        assert_eq!(
            artifact::to_text(&back),
            artifact::to_text(&program),
            "comment headers do not perturb the program"
        );
    }
}
