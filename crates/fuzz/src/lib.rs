//! # ffsim-fuzz — deterministic differential fuzzing for the simulator
//!
//! The four wrong-path techniques (`nowp`, `instrec`, `conv`, `wpemul`)
//! model *timing* differently but must never disagree on *architecture*:
//! the correct path retires the same instructions and produces the same
//! final state no matter how the frontend treats a misprediction. That
//! invariant is exactly what decoupled functional-first simulation rests
//! on — and exactly what a hand-written test suite under-exercises,
//! because interesting violations hide behind branchy, aliasing,
//! re-converging control flow.
//!
//! This crate closes the gap with three deterministic pieces:
//!
//! - [`gen`] — a seeded program generator producing *structurally
//!   terminating* programs biased toward branches, loops, convergence
//!   diamonds, indirect jumps, and data-dependent memory aliasing. The
//!   same seed always yields the same program.
//! - [`oracle`] — a differential oracle running each program through
//!   every technique registered in a
//!   [`TechniqueRegistry`](ffsim_core::TechniqueRegistry) under several
//!   config variants (fault trapping, wrong-path PC corruption, tight
//!   watchdogs), asserting identical retired-instruction counts, state
//!   digests, and typed error outcomes. It also cross-checks
//!   checkpoint/restore exactness around every wrong-path excursion.
//! - [`shrink`] + [`artifact`] — a delta-debugging shrinker that
//!   minimizes a divergent program, and a textual `.fsm` format that
//!   persists the repro independent of generator seeds, together with a
//!   regression-test stub.
//! - [`corpus`] — a content-addressed permanent regression corpus
//!   (`corpus/` at the repository root): shrunk repros accumulate there,
//!   are replayed by every `fuzz_smoke --corpus` run and by the test
//!   suite, and never duplicate.
//!
//! The `fuzz_smoke` binary wires these together behind `--seed`,
//! `--budget`, and `--corpus` flags; its output is byte-identical across
//! runs for a fixed seed and corpus, so CI can diff it.

pub mod artifact;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use gen::{generate, seed_for, GenConfig, ProgramGen};
pub use oracle::{Divergence, Oracle, OracleReport, RunOutcome, Variant};
pub use shrink::shrink;
