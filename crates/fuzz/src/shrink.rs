//! Divergence shrinking: minimize a failing program to a small repro.
//!
//! Given a program and a predicate that reports whether the failure still
//! reproduces, the shrinker runs three deterministic passes to a fixpoint:
//!
//! 1. **Truncation** — binary-search the shortest prefix (suffix replaced
//!    by `halt`) that still fails.
//! 2. **Nop-out delta-debugging** — replace chunks of instructions with
//!    `nop`, halving the chunk size down to single instructions. Addresses
//!    stay fixed, so no branch retargeting is needed and every candidate
//!    is trivially well formed.
//! 3. **Compaction** — delete the accumulated `nop`s, remapping branch and
//!    jump targets past the removed slots. Compaction is only kept if the
//!    predicate still fails on the compacted program (an indirect jump may
//!    encode a code address in a plain `li`, which compaction cannot see).
//!
//! Every pass re-validates candidates through the caller's predicate, so
//! the result is always a genuine repro — at worst the original program.

use ffsim_isa::{Addr, Instr, Program, INSTR_BYTES};

/// Upper bound on shrink rounds; each round is itself a fixpoint pass, so
/// this is a safety net rather than a tuning knob.
const MAX_ROUNDS: usize = 8;

/// Minimizes `program` while `fails` keeps returning `true`.
///
/// `fails` must be deterministic: it is consulted many times and the
/// shrinker assumes a candidate that failed once fails always.
pub fn shrink(program: &Program, mut fails: impl FnMut(&Program) -> bool) -> Program {
    let mut best = program.clone();
    if !fails(&best) {
        // Not a repro at all; nothing to do.
        return best;
    }
    for _ in 0..MAX_ROUNDS {
        let before = (best.len(), count_nops(&best));
        best = truncate_pass(best, &mut fails);
        best = nop_out_pass(best, &mut fails);
        if let Some(compacted) = compact(&best) {
            if fails(&compacted) {
                best = compacted;
            }
        }
        if (best.len(), count_nops(&best)) == before {
            break;
        }
    }
    best
}

fn count_nops(p: &Program) -> usize {
    p.iter().filter(|(_, i)| matches!(i, Instr::Nop)).count()
}

fn instrs_of(p: &Program) -> Vec<Instr> {
    p.iter().map(|(_, i)| *i).collect()
}

/// Binary-searches the shortest failing prefix, replacing the cut suffix
/// with a single `halt`.
fn truncate_pass(program: Program, fails: &mut impl FnMut(&Program) -> bool) -> Program {
    let instrs = instrs_of(&program);
    let make = |keep: usize| -> Program {
        let mut v: Vec<Instr> = instrs[..keep].to_vec();
        v.push(Instr::Halt);
        Program::new(program.base(), v)
    };
    // Invariant: `make(hi)` fails (hi = full length reproduces by
    // construction), `make(lo)` does not (or lo has not been probed yet).
    let (mut lo, mut hi) = (0usize, instrs.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = make(mid);
        if fails(&candidate) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    if hi < instrs.len() {
        make(hi)
    } else {
        program
    }
}

/// ddmin-style pass replacing chunks with `nop`; the last instruction
/// (the terminating `halt`) is never touched.
fn nop_out_pass(program: Program, fails: &mut impl FnMut(&Program) -> bool) -> Program {
    let mut instrs = instrs_of(&program);
    if instrs.len() < 2 {
        return program;
    }
    let editable = instrs.len() - 1;
    let mut chunk = editable.div_ceil(2).max(1);
    loop {
        let mut start = 0;
        while start < editable {
            let end = (start + chunk).min(editable);
            let saved: Vec<Instr> = instrs[start..end].to_vec();
            if saved.iter().any(|i| !matches!(i, Instr::Nop)) {
                for slot in &mut instrs[start..end] {
                    *slot = Instr::Nop;
                }
                let candidate = Program::new(program.base(), instrs.clone());
                if !fails(&candidate) {
                    instrs[start..end].copy_from_slice(&saved);
                }
            }
            start = end;
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }
    Program::new(program.base(), instrs)
}

/// Deletes `nop`s and remaps direct branch/jump targets. Returns `None`
/// when there is nothing to delete or a target would escape the image
/// (a branch aimed exactly at a trailing run of removed `nop`s).
fn compact(program: &Program) -> Option<Program> {
    let instrs = instrs_of(program);
    let keep: Vec<bool> = instrs.iter().map(|i| !matches!(i, Instr::Nop)).collect();
    if keep.iter().all(|&k| k) {
        return None;
    }
    // new_index[i] = index of the first kept instruction at or after i.
    let mut new_index = vec![0usize; instrs.len() + 1];
    let mut next = keep.iter().filter(|&&k| k).count();
    new_index[instrs.len()] = next;
    for i in (0..instrs.len()).rev() {
        if keep[i] {
            next -= 1;
        }
        new_index[i] = next;
    }
    let kept_total = new_index[instrs.len()];
    let base = program.base();
    let remap = |target: Addr| -> Option<Addr> {
        let idx = ((target - base) / INSTR_BYTES) as usize;
        let new = *new_index.get(idx)?;
        (new < kept_total).then(|| base + new as Addr * INSTR_BYTES)
    };
    let mut out = Vec::with_capacity(kept_total);
    for (i, instr) in instrs.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        out.push(match *instr {
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Instr::Branch {
                cond,
                rs1,
                rs2,
                target: remap(target)?,
            },
            Instr::Jal { rd, target } => Instr::Jal {
                rd,
                target: remap(target)?,
            },
            other => other,
        });
    }
    Some(Program::new(base, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use ffsim_isa::DEFAULT_TEXT_BASE;

    /// A predicate that fails iff the program still contains a `div`
    /// instruction — a stand-in for "the divergence reproduces".
    fn has_div(p: &Program) -> bool {
        p.iter().any(|(_, i)| {
            matches!(
                i,
                Instr::Alu {
                    op: ffsim_isa::AluOp::Div,
                    ..
                } | Instr::AluImm {
                    op: ffsim_isa::AluOp::Div,
                    ..
                }
            )
        })
    }

    #[test]
    fn shrinks_to_the_failing_instruction() {
        // Find a generated program containing a div and shrink it; the
        // minimum is div + halt.
        for seed in 0..200 {
            let p = generate(seed);
            if !has_div(&p) {
                continue;
            }
            let small = shrink(&p, has_div);
            assert!(has_div(&small), "seed {seed}: shrink lost the repro");
            assert!(
                small.len() <= 2,
                "seed {seed}: expected <=2 instructions, got {}",
                small.len()
            );
            return;
        }
        panic!("no generated program contained a div in 200 seeds");
    }

    #[test]
    fn non_repro_is_returned_unchanged() {
        let p = generate(7);
        let out = shrink(&p, |_| false);
        assert_eq!(instrs_of(&p), instrs_of(&out));
    }

    #[test]
    fn compaction_remaps_branch_targets() {
        use ffsim_isa::{BranchCond, Reg};
        let z = Reg::new(0);
        // 0: branch -> 3 (over two nops), 1: nop, 2: nop, 3: halt
        let p = Program::new(
            DEFAULT_TEXT_BASE,
            vec![
                Instr::Branch {
                    cond: BranchCond::Eq,
                    rs1: z,
                    rs2: z,
                    target: DEFAULT_TEXT_BASE + 12,
                },
                Instr::Nop,
                Instr::Nop,
                Instr::Halt,
            ],
        );
        let c = compact(&p).expect("has nops to delete");
        assert_eq!(c.len(), 2);
        match c.instr_at(DEFAULT_TEXT_BASE) {
            Some(Instr::Branch { target, .. }) => {
                assert_eq!(*target, DEFAULT_TEXT_BASE + INSTR_BYTES);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn shrink_preserves_termination_on_generated_programs() {
        use ffsim_emu::Emulator;
        // Shrinking under an instruction-count predicate must still yield
        // programs that halt (the truncation pass appends halts).
        let p = generate(11);
        // The smallest program still satisfying `len > 4` has exactly 5
        // instructions; the shrinker must find it and keep it runnable.
        let small = shrink(&p, |c| c.len() > 4);
        assert_eq!(small.len(), 5);
        let mut emu = Emulator::new(small).expect("shrunk program loads");
        emu.run_to_halt(100_000).expect("shrunk program runs");
        assert!(emu.is_halted());
    }
}
