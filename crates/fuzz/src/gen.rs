//! Seeded, fully deterministic random program generation.
//!
//! Programs are generated *structurally*, not instruction-by-instruction:
//! the generator emits a preamble that seeds registers and a small shared
//! data window, then a body built from nestable shapes — straight-line
//! compute, forward diamonds (the convergence technique's bread and
//! butter), counter-controlled loops, and immediate-loaded indirect jumps.
//! Every backward edge is guarded by a dedicated loop-counter register
//! that the loop body cannot write, so **every generated program
//! terminates** on the correct path; wrong paths may still run wild,
//! which is exactly what the differential oracle wants to stress.
//!
//! Memory traffic is biased toward a 256-byte aliasing window addressed
//! off a reserved base register, both with static offsets and with
//! data-dependent (masked) offsets, so wrong-path stores and loads
//! frequently alias correct-path locations.

use ffsim_isa::{
    Addr, AluOp, BranchCond, FReg, FpCmpOp, FpOp, Instr, MemWidth, Program, Reg, DEFAULT_TEXT_BASE,
    INSTR_BYTES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Registers the generator may freely overwrite with computed values.
const DATA_REGS: [u8; 9] = [3, 4, 5, 6, 7, 12, 13, 14, 15];
/// Loop-counter registers: written only by their own loop's `li`/`addi`.
const COUNTER_REGS: [u8; 4] = [8, 9, 10, 11];
/// Holds the data-window base address for the whole program.
const BASE_REG: u8 = 28;
/// Scratch register for computed (data-dependent) addresses.
const ADDR_REG: u8 = 29;
/// Target register for immediate-loaded indirect jumps.
const JUMP_REG: u8 = 30;
/// FP registers in play.
const FP_REGS: [u8; 4] = [0, 1, 2, 3];

/// Base address of the shared data window all memory traffic aliases in.
pub const DATA_BASE: Addr = 0x2000_0000;
/// Size of the aliasing window in bytes (offsets stay inside it).
pub const DATA_WINDOW: u64 = 256;

/// Tunable knobs for program generation.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Rough instruction budget for the program body (the final program
    /// adds a preamble and epilogue on top).
    pub body_budget: usize,
    /// Maximum nesting depth of diamonds and loops.
    pub max_depth: usize,
    /// Maximum trip count of a generated loop.
    pub max_trips: i64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            body_budget: 48,
            max_depth: 3,
            max_trips: 5,
        }
    }
}

/// A deterministic program generator; one instance per seed.
#[derive(Debug)]
pub struct ProgramGen {
    rng: StdRng,
    cfg: GenConfig,
    /// Instructions emitted so far; branch/jump targets are patched in
    /// [`ProgramGen::finish`] from the fixup list.
    out: Vec<Instr>,
    /// `(instruction index, target index)` pairs to patch.
    fixups: Vec<(usize, usize)>,
    /// Loop counters currently guarding an enclosing loop.
    busy_counters: Vec<u8>,
}

impl ProgramGen {
    /// Creates a generator for `seed` with default knobs.
    #[must_use]
    pub fn new(seed: u64) -> ProgramGen {
        ProgramGen::with_config(seed, GenConfig::default())
    }

    /// Creates a generator for `seed` with explicit knobs.
    #[must_use]
    pub fn with_config(seed: u64, cfg: GenConfig) -> ProgramGen {
        ProgramGen {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            out: Vec::new(),
            fixups: Vec::new(),
            busy_counters: Vec::new(),
        }
    }

    /// Generates one complete program.
    #[must_use]
    pub fn generate(mut self) -> Program {
        self.preamble();
        let budget = self.cfg.body_budget;
        self.seq(budget, self.cfg.max_depth);
        self.out.push(Instr::Halt);
        self.finish()
    }

    /// Seeds the base register, the data registers, a few window words,
    /// and the FP registers, so the body starts from varied state.
    fn preamble(&mut self) {
        self.out.push(Instr::LoadImm {
            rd: Reg::new(BASE_REG),
            imm: DATA_BASE as i64,
        });
        for &r in &DATA_REGS {
            // A mix of small, zero, negative and large magnitudes keeps
            // branch conditions and divides interesting.
            let imm = match self.rng.gen_range(0u32..5) {
                0 => 0,
                1 => self.rng.gen_range(-8i64..8),
                2 => self.rng.gen_range(0i64..64),
                3 => -self.rng.gen_range(1i64..1 << 20),
                _ => self.rng.gen_range(0i64..1 << 32),
            };
            self.out.push(Instr::LoadImm {
                rd: Reg::new(r),
                imm,
            });
        }
        for k in 0..4u64 {
            let src = self.data_reg();
            self.out.push(Instr::Store {
                src,
                base: Reg::new(BASE_REG),
                offset: (k * 8) as i64,
                width: MemWidth::D,
            });
        }
        for &f in &FP_REGS {
            let rs = self.data_reg();
            self.out.push(Instr::IntToFp {
                fd: FReg::new(f),
                rs,
            });
        }
    }

    /// Emits roughly `budget` instructions of nested shapes.
    fn seq(&mut self, budget: usize, depth: usize) {
        let mut left = budget;
        while left > 0 {
            let spent = match self.rng.gen_range(0u32..10) {
                0 | 1 if depth > 0 && left >= 6 => self.diamond(left, depth),
                2 if depth > 0 && left >= 8 => self.loop_shape(left, depth),
                3 if left >= 2 => self.indirect_jump(),
                _ => self.straight_line(),
            };
            left = left.saturating_sub(spent.max(1));
        }
    }

    /// One straight-line instruction (compute or memory), biased toward
    /// the aliasing window.
    fn straight_line(&mut self) -> usize {
        let instr = match self.rng.gen_range(0u32..12) {
            0..=2 => {
                let op = self.alu_op();
                let (rd, rs1, rs2) = (self.data_reg(), self.data_reg(), self.data_reg());
                Instr::Alu { op, rd, rs1, rs2 }
            }
            3..=4 => {
                let op = self.alu_op();
                // Shift amounts must stay modest to keep values varied.
                let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    self.rng.gen_range(0i64..8)
                } else {
                    self.rng.gen_range(-64i64..64)
                };
                let (rd, rs1) = (self.data_reg(), self.data_reg());
                Instr::AluImm { op, rd, rs1, imm }
            }
            5..=6 => {
                let (width, signed) = self.mem_width();
                let rd = self.data_reg();
                let offset = self.window_offset(width);
                Instr::Load {
                    rd,
                    base: Reg::new(BASE_REG),
                    offset,
                    width,
                    signed,
                }
            }
            7..=8 => {
                let (width, _) = self.mem_width();
                let src = self.data_reg();
                let offset = self.window_offset(width);
                Instr::Store {
                    src,
                    base: Reg::new(BASE_REG),
                    offset,
                    width,
                }
            }
            9 => return self.computed_access(),
            10 => {
                let op = match self.rng.gen_range(0u32..6) {
                    0 => FpOp::Add,
                    1 => FpOp::Sub,
                    2 => FpOp::Mul,
                    3 => FpOp::Div,
                    4 => FpOp::Min,
                    _ => FpOp::Max,
                };
                let (fd, fs1, fs2) = (self.fp_reg(), self.fp_reg(), self.fp_reg());
                Instr::FpAlu { op, fd, fs1, fs2 }
            }
            _ => match self.rng.gen_range(0u32..5) {
                0 => {
                    let fd = self.fp_reg();
                    let offset = self.window_offset(MemWidth::D);
                    Instr::FpLoad {
                        fd,
                        base: Reg::new(BASE_REG),
                        offset,
                    }
                }
                1 => {
                    let fs = self.fp_reg();
                    let offset = self.window_offset(MemWidth::D);
                    Instr::FpStore {
                        fs,
                        base: Reg::new(BASE_REG),
                        offset,
                    }
                }
                2 => {
                    let op = match self.rng.gen_range(0u32..3) {
                        0 => FpCmpOp::Eq,
                        1 => FpCmpOp::Lt,
                        _ => FpCmpOp::Le,
                    };
                    let rd = self.data_reg();
                    let (fs1, fs2) = (self.fp_reg(), self.fp_reg());
                    Instr::FpCmp { op, rd, fs1, fs2 }
                }
                3 => {
                    let fd = self.fp_reg();
                    let rs = self.data_reg();
                    Instr::IntToFp { fd, rs }
                }
                _ => {
                    let rd = self.data_reg();
                    let fs = self.fp_reg();
                    Instr::FpToInt { rd, fs }
                }
            },
        };
        self.out.push(instr);
        1
    }

    /// A data-dependent access: mask a data register into the window,
    /// add the base, and load or store through the computed address.
    /// This is the aliasing workhorse — the offset depends on values a
    /// wrong path computes differently.
    fn computed_access(&mut self) -> usize {
        let v = self.data_reg();
        self.out.push(Instr::AluImm {
            op: AluOp::And,
            rd: Reg::new(ADDR_REG),
            rs1: v,
            imm: (DATA_WINDOW - 8) as i64 & !7,
        });
        self.out.push(Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(ADDR_REG),
            rs1: Reg::new(ADDR_REG),
            rs2: Reg::new(BASE_REG),
        });
        let load = self.rng.gen_bool(0.5);
        let r = self.data_reg();
        self.out.push(if load {
            Instr::Load {
                rd: r,
                base: Reg::new(ADDR_REG),
                offset: 0,
                width: MemWidth::D,
                signed: true,
            }
        } else {
            Instr::Store {
                src: r,
                base: Reg::new(ADDR_REG),
                offset: 0,
                width: MemWidth::D,
            }
        });
        3
    }

    /// A forward diamond: `branch else; then-side; jal merge; else-side;
    /// merge`. Both sides reconverge — the convergence technique's target
    /// shape — and the data-dependent condition keeps the predictor
    /// guessing.
    fn diamond(&mut self, budget: usize, depth: usize) -> usize {
        let side = ((budget - 3) / 2).min(12);
        let branch_at = self.out.len();
        self.out.push(Instr::Nop); // patched to the conditional branch
        self.seq(side.max(1), depth - 1);
        let jal_at = self.out.len();
        self.out.push(Instr::Nop); // patched to `jal merge`
        let else_target = self.out.len();
        self.seq(side.max(1), depth - 1);
        let merge = self.out.len();
        // An empty merge target is fine: the next shape (or halt) follows.
        let cond = self.branch_cond();
        let rs1 = self.data_reg();
        let rs2 = if self.rng.gen_bool(0.4) {
            Reg::ZERO
        } else {
            self.data_reg()
        };
        self.out[branch_at] = Instr::Branch {
            cond,
            rs1,
            rs2,
            target: 0,
        };
        self.fixups.push((branch_at, else_target));
        self.out[jal_at] = Instr::Jal {
            rd: Reg::ZERO,
            target: 0,
        };
        self.fixups.push((jal_at, merge));
        self.out.len() - branch_at
    }

    /// A counter-controlled loop. The counter register is reserved for
    /// the loop's extent, so nested shapes cannot clobber it and the
    /// backward branch always terminates.
    fn loop_shape(&mut self, budget: usize, depth: usize) -> usize {
        let Some(&counter) = COUNTER_REGS
            .iter()
            .find(|r| !self.busy_counters.contains(r))
        else {
            return self.straight_line();
        };
        self.busy_counters.push(counter);
        let trips = self.rng.gen_range(1i64..self.cfg.max_trips + 1);
        let start = self.out.len();
        self.out.push(Instr::LoadImm {
            rd: Reg::new(counter),
            imm: trips,
        });
        let top = self.out.len();
        let body = ((budget - 3) / (trips.max(1) as usize)).clamp(1, 10);
        self.seq(body, depth - 1);
        self.out.push(Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::new(counter),
            rs1: Reg::new(counter),
            imm: -1,
        });
        let branch_at = self.out.len();
        self.out.push(Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::new(counter),
            rs2: Reg::ZERO,
            target: 0,
        });
        self.fixups.push((branch_at, top));
        self.busy_counters.pop();
        self.out.len() - start
    }

    /// An indirect jump through an immediate-loaded register: always
    /// forward (to the instruction after the pair), so it terminates, but
    /// it exercises the indirect predictor and — on the wrong path —
    /// stale `JUMP_REG` values that leave the text image entirely.
    fn indirect_jump(&mut self) -> usize {
        let li_at = self.out.len();
        self.out.push(Instr::Nop); // patched to `li JUMP_REG, target`
        let rd = if self.rng.gen_bool(0.25) {
            Reg::RA
        } else {
            Reg::ZERO
        };
        self.out.push(Instr::Jalr {
            rd,
            base: Reg::new(JUMP_REG),
            offset: 0,
        });
        let target = self.out.len();
        self.out[li_at] = Instr::LoadImm {
            rd: Reg::new(JUMP_REG),
            imm: 0, // patched below via fixups (address of `target`)
        };
        self.fixups.push((li_at, target));
        2
    }

    /// Patches index-based targets into absolute addresses and assembles
    /// the final program.
    fn finish(mut self) -> Program {
        let base = DEFAULT_TEXT_BASE;
        let addr_of = |idx: usize| base + idx as Addr * INSTR_BYTES;
        for &(at, target_idx) in &self.fixups {
            let target = addr_of(target_idx.min(self.out.len() - 1));
            match &mut self.out[at] {
                Instr::Branch { target: t, .. } | Instr::Jal { target: t, .. } => *t = target,
                Instr::LoadImm { imm, .. } => *imm = target as i64,
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        Program::new(base, self.out)
    }

    fn data_reg(&mut self) -> Reg {
        Reg::new(DATA_REGS[self.rng.gen_range(0usize..DATA_REGS.len())])
    }

    fn fp_reg(&mut self) -> FReg {
        FReg::new(FP_REGS[self.rng.gen_range(0usize..FP_REGS.len())])
    }

    fn alu_op(&mut self) -> AluOp {
        match self.rng.gen_range(0u32..13) {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::And,
            3 => AluOp::Or,
            4 => AluOp::Xor,
            5 => AluOp::Sll,
            6 => AluOp::Srl,
            7 => AluOp::Sra,
            8 => AluOp::Slt,
            9 => AluOp::Sltu,
            10 => AluOp::Mul,
            11 => AluOp::Div,
            _ => AluOp::Rem,
        }
    }

    fn branch_cond(&mut self) -> BranchCond {
        match self.rng.gen_range(0u32..6) {
            0 => BranchCond::Eq,
            1 => BranchCond::Ne,
            2 => BranchCond::Lt,
            3 => BranchCond::Ge,
            4 => BranchCond::Ltu,
            _ => BranchCond::Geu,
        }
    }

    fn mem_width(&mut self) -> (MemWidth, bool) {
        let width = match self.rng.gen_range(0u32..4) {
            0 => MemWidth::B,
            1 => MemWidth::H,
            2 => MemWidth::W,
            _ => MemWidth::D,
        };
        (width, self.rng.gen_bool(0.5))
    }

    /// A width-aligned offset inside the data window.
    fn window_offset(&mut self, width: MemWidth) -> i64 {
        let step = width.bytes();
        (self.rng.gen_range(0u64..DATA_WINDOW / step) * step) as i64
    }
}

/// Generates the program for `seed` with default knobs (the fuzzing
/// entry point: program `i` of a campaign uses `seed_for(base_seed, i)`).
#[must_use]
pub fn generate(seed: u64) -> Program {
    ProgramGen::new(seed).generate()
}

/// Derives the per-program seed from a campaign seed and program index
/// (SplitMix-style mixing so neighboring indices decorrelate).
#[must_use]
pub fn seed_for(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_emu::Emulator;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in 0..20 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a, b, "seed {seed} must reproduce byte-identically");
        }
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn programs_terminate_functionally() {
        // The structural termination guarantee, checked empirically: every
        // generated program halts within a generous step bound.
        for seed in 0..200 {
            let p = generate(seed);
            let mut emu = Emulator::new(p).expect("entry is executable");
            let steps = emu
                .run_to_halt(1_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}: functional fault {e:?}"));
            assert!(emu.is_halted(), "seed {seed} did not halt in {steps} steps");
        }
    }

    #[test]
    fn programs_are_branch_dense() {
        let mut branches = 0usize;
        let mut mems = 0usize;
        let mut total = 0usize;
        for seed in 0..50 {
            let p = generate(seed);
            total += p.len();
            branches += p.iter().filter(|(_, i)| i.is_branch()).count();
            mems += p.iter().filter(|(_, i)| i.is_mem()).count();
        }
        let bf = branches as f64 / total as f64;
        let mf = mems as f64 / total as f64;
        assert!(bf > 0.08, "branch fraction {bf:.3} too low for fuzzing");
        assert!(mf > 0.15, "memory fraction {mf:.3} too low for aliasing");
    }

    #[test]
    fn all_targets_resolve_inside_the_image() {
        for seed in 0..100 {
            let p = generate(seed);
            for (pc, i) in p.iter() {
                if let Some(t) = i.direct_target() {
                    assert!(p.contains(t), "seed {seed}: {pc:#x} targets {t:#x}");
                }
            }
        }
    }
}
