//! The oracle's fire drill: register a deliberately broken fifth
//! technique and require the differential check to (a) catch it on
//! generated programs and (b) shrink a divergent program to a tiny
//! repro. If this test ever fails, the fuzzer has gone blind.

use ffsim_core::technique::{passive_frontend, MispredictContext, WrongPathTechnique};
use ffsim_core::{FetchSource, SimConfig, TechniqueRegistry, WrongPathMode};
use ffsim_emu::{CancelCause, Emulator, Fault, StreamEntry, WrongPathFaultStats};
use ffsim_fuzz::{artifact, gen, shrink, Oracle, Variant};
use ffsim_obs::TraceEvent;

/// A frontend wrapper that silently drops one correct-path entry — the
/// kind of off-by-one a real technique could introduce while splicing
/// wrong-path instructions into the stream.
#[derive(Debug)]
struct DroppingSource {
    inner: Box<dyn FetchSource>,
    drop_at: u64,
    popped: u64,
}

impl FetchSource for DroppingSource {
    fn pop(&mut self) -> Option<StreamEntry> {
        let mut entry = self.inner.pop();
        self.popped += 1;
        if self.popped == self.drop_at {
            // Swallow this entry and hand out the next one instead.
            entry = self.inner.pop();
        }
        entry
    }

    fn peek(&mut self, index: usize) -> Option<&StreamEntry> {
        self.inner.peek(index)
    }

    fn fault(&self) -> Option<Fault> {
        self.inner.fault()
    }

    fn fault_was_wrong_path(&self) -> bool {
        self.inner.fault_was_wrong_path()
    }

    fn fault_stats(&self) -> WrongPathFaultStats {
        self.inner.fault_stats()
    }

    fn cancelled(&self) -> Option<CancelCause> {
        self.inner.cancelled()
    }

    fn emulator(&self) -> &Emulator {
        self.inner.emulator()
    }

    fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.inner.take_trace()
    }

    fn trace_dropped(&self) -> u64 {
        self.inner.trace_dropped()
    }
}

/// "No wrong path" with the dropping frontend bug: architecturally it
/// skips one retired instruction, which the oracle must flag.
#[derive(Debug)]
struct SkippingTechnique;

impl WrongPathTechnique for SkippingTechnique {
    fn mode(&self) -> WrongPathMode {
        WrongPathMode::NoWrongPath
    }

    fn build_frontend(&self, emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource> {
        Box::new(DroppingSource {
            inner: passive_frontend(emu, cfg),
            drop_at: 7,
            popped: 0,
        })
    }

    fn on_mispredict(&mut self, _cx: &mut MispredictContext<'_>) {}
}

fn broken_registry() -> TechniqueRegistry {
    let mut registry = TechniqueRegistry::builtin();
    registry.register("skipper", WrongPathMode::NoWrongPath, |_cfg| {
        Box::new(SkippingTechnique)
    });
    registry
}

#[test]
fn oracle_catches_the_broken_technique_and_shrinks_it() {
    let mut oracle = Oracle::with_registry(broken_registry());
    // The baseline variant is enough to expose an instruction-count bug;
    // keeping the matrix small keeps the shrinker fast.
    oracle.variants = vec![Variant::Baseline];

    let mut caught = None;
    for index in 0..32u64 {
        let program = gen::generate(gen::seed_for(0xb0_06, index));
        if let Err(divergence) = oracle.check(&program) {
            caught = Some((program, divergence));
            break;
        }
    }
    let (program, divergence) =
        caught.expect("a dropped stream entry must diverge within 32 programs");
    assert_eq!(
        divergence.label, "skipper",
        "the broken technique is the one flagged: {divergence}"
    );

    let repro = shrink(&program, |candidate| oracle.check(candidate).is_err());
    assert!(
        oracle.check(&repro).is_err(),
        "shrunk program must still reproduce"
    );
    assert!(
        repro.len() <= 16,
        "repro must shrink to <=16 instructions, got {}:\n{}",
        repro.len(),
        artifact::to_text(&repro)
    );

    // The repro survives a round-trip through the .fsm artifact format,
    // so it can be committed as a regression test.
    let text = artifact::to_text(&repro);
    let back = artifact::from_text(&text).expect("artifact round-trips");
    assert!(
        oracle.check(&back).is_err(),
        "artifact round-trip must preserve the divergence"
    );
}

#[test]
fn healthy_registry_stays_clean_under_the_same_seeds() {
    let oracle = Oracle::builtin();
    for index in 0..8u64 {
        let program = gen::generate(gen::seed_for(0xb0_06, index));
        oracle
            .check(&program)
            .unwrap_or_else(|d| panic!("builtin techniques diverged: {d}"));
    }
}
