//! Property: wrong-path emulation's checkpoint/restore is *exact* under
//! back-to-back episodes. At every conditional branch along the correct
//! path the test runs two wrong-path excursions in a row — the second
//! from a corrupted start pc, with no correct-path step in between,
//! mimicking a nested misprediction resolving into another redirect —
//! and requires the architectural digest to be untouched after each
//! squash. A final run-to-halt then cross-checks that the excursions
//! left no residue the digest might have missed.

use ffsim_emu::{Emulator, FollowComputed, Memory};
use ffsim_fuzz::gen;
use ffsim_isa::{Instr, INSTR_BYTES};
use proptest::prelude::*;

proptest! {
    #[test]
    fn back_to_back_squashes_restore_the_digest(
        seed in 0u64..512,
        budget in 1usize..64,
        mask in prop_oneof![Just(0u64), Just(0x40u64), Just(0x104u64), Just(0xffff_f000u64)],
    ) {
        let program = gen::generate(seed);
        let mut emu = Emulator::with_memory(program.clone(), Memory::new())
            .expect("generated entry is executable");
        let mut episodes = 0u64;
        while !emu.is_halted() {
            let inst = emu.step().expect("generated programs do not fault");
            let Some(outcome) = inst.branch else { continue };
            if !matches!(inst.instr, Instr::Branch { .. }) {
                continue;
            }
            let wrong_start = if outcome.taken {
                inst.pc + INSTR_BYTES
            } else {
                inst.instr.direct_target().expect("conditional branches are direct")
            };
            // First episode: the not-taken path.
            let before = emu.digest();
            let _ = emu.emulate_wrong_path_bounded(
                wrong_start, budget, Some(4096), &mut FollowComputed);
            prop_assert_eq!(before, emu.digest(),
                "first squash leaked state at branch {:#x}", inst.pc);
            // Second episode immediately after, from a corrupted pc —
            // back-to-back checkpoint reuse with no step in between.
            let _ = emu.emulate_wrong_path_bounded(
                wrong_start ^ mask, budget, Some(4096), &mut FollowComputed);
            prop_assert_eq!(before, emu.digest(),
                "second squash leaked state at branch {:#x}", inst.pc);
            episodes += 2;
        }
        prop_assert!(episodes > 0, "generated programs are branch-dense");

        // No residue: the walked-and-squashed emulator must agree with a
        // clean functional run of the same program.
        let mut clean = Emulator::with_memory(program, Memory::new())
            .expect("generated entry is executable");
        clean.run_to_halt(1_000_000).expect("clean run halts");
        prop_assert_eq!(emu.digest(), clean.digest());
    }
}
