//! Replays the repository's permanent regression corpus (`corpus/` at
//! the repo root) through the full differential oracle. Every entry is a
//! program that once exposed — or guards against — a divergence between
//! the wrong-path techniques; they must stay divergence-free forever.

use ffsim_fuzz::oracle::check_restore_exactness;
use ffsim_fuzz::{artifact, corpus, Oracle};
use std::path::PathBuf;

fn repo_corpus() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn repo_corpus_stays_divergence_free() {
    let entries = corpus::entries(&repo_corpus()).expect("corpus readable");
    assert!(
        !entries.is_empty(),
        "the committed corpus must not be empty (expected at {})",
        repo_corpus().display()
    );
    let oracle = Oracle::builtin();
    for path in &entries {
        let program = artifact::load(path)
            .unwrap_or_else(|e| panic!("{}: corpus entry must parse: {e}", path.display()));
        oracle
            .check(&program)
            .unwrap_or_else(|d| panic!("{}: corpus regression: {d}", path.display()));
        check_restore_exactness(&program, 64)
            .unwrap_or_else(|e| panic!("{}: restore mismatch: {e}", path.display()));
    }
}

#[test]
fn repo_corpus_names_are_content_addresses() {
    for path in corpus::entries(&repo_corpus()).expect("corpus readable") {
        let program = artifact::load(&path).expect("corpus entry parses");
        let expected = corpus::entry_name(&program);
        let actual = path.file_name().expect("file name").to_string_lossy();
        assert_eq!(
            actual,
            expected,
            "{}: entry renamed or edited without re-addressing",
            path.display()
        );
    }
}
