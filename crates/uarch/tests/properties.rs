//! Property-based tests for the microarchitectural components: cache vs. a
//! reference LRU model, predictor determinism, RAS semantics, DRAM
//! bandwidth accounting, and hierarchy invariants.

use ffsim_isa::{BranchCond, Instr, Reg};
use ffsim_uarch::{
    BranchConfig, BranchPredictor, Cache, CacheConfig, CoreConfig, Dram, DramConfig, Level, Lookup,
    MemoryHierarchy, PathKind, ReturnStack, Tlb, TlbConfig,
};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference LRU set-associative cache model (slow but obviously correct).
struct RefCache {
    sets: Vec<VecDeque<u64>>, // front = MRU line numbers
    assoc: usize,
    line_shift: u32,
    set_count: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        RefCache {
            sets: vec![VecDeque::new(); cfg.num_sets() as usize],
            assoc: cfg.assoc as usize,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_count: cfg.num_sets(),
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) % self.set_count) as usize
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn lookup(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let line = self.line_of(addr);
        if let Some(pos) = self.sets[set].iter().position(|&l| l == line) {
            let l = self.sets[set].remove(pos).unwrap();
            self.sets[set].push_front(l);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let line = self.line_of(addr);
        if let Some(pos) = self.sets[set].iter().position(|&l| l == line) {
            let l = self.sets[set].remove(pos).unwrap();
            self.sets[set].push_front(l);
            return;
        }
        if self.sets[set].len() == self.assoc {
            self.sets[set].pop_back();
        }
        self.sets[set].push_front(line);
    }
}

proptest! {
    /// The cache's hit/miss behaviour matches the reference LRU model for
    /// arbitrary access/fill interleavings (fill-on-miss protocol).
    #[test]
    fn cache_matches_reference_lru(
        addrs in proptest::collection::vec(0u64..0x8000, 1..400),
    ) {
        let cfg = CacheConfig { size_bytes: 2048, assoc: 4, line_bytes: 64, latency: 1 };
        let mut cache = Cache::new("dut", cfg);
        let mut reference = RefCache::new(cfg);
        for addr in addrs {
            let got_hit = cache.lookup(addr, false, PathKind::Correct) == Lookup::Hit;
            let want_hit = reference.lookup(addr);
            prop_assert_eq!(got_hit, want_hit, "divergence at {:#x}", addr);
            if !got_hit {
                cache.fill(addr, false);
                reference.fill(addr);
            }
        }
    }

    /// `probe` agrees with a subsequent lookup's hit/miss and never
    /// changes behaviour.
    #[test]
    fn probe_is_a_pure_observer(
        addrs in proptest::collection::vec(0u64..0x2000, 1..200),
    ) {
        let cfg = CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1 };
        let mut a = Cache::new("with-probe", cfg);
        let mut b = Cache::new("without", cfg);
        for addr in addrs {
            let probed = a.probe(addr);
            let hit_a = a.lookup(addr, false, PathKind::Correct) == Lookup::Hit;
            prop_assert_eq!(probed, hit_a);
            let hit_b = b.lookup(addr, false, PathKind::Correct) == Lookup::Hit;
            prop_assert_eq!(hit_a, hit_b);
            if !hit_a {
                a.fill(addr, false);
                b.fill(addr, false);
            }
        }
    }

    /// The RAS behaves like a depth-bounded stack whose bottom falls away.
    #[test]
    fn ras_matches_bounded_stack(
        cap in 1usize..16,
        ops in proptest::collection::vec(prop_oneof![
            (1u64..1_000_000).prop_map(Some),
            Just(None),
        ], 0..100),
    ) {
        let mut ras = ReturnStack::new(cap);
        let mut reference: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(addr) => {
                    ras.push(addr);
                    reference.push(addr);
                    if reference.len() > cap {
                        reference.remove(0);
                    }
                }
                None => {
                    prop_assert_eq!(ras.pop(), reference.pop());
                }
            }
            prop_assert_eq!(ras.len(), reference.len());
            prop_assert_eq!(ras.peek(), reference.last().copied());
        }
    }

    /// Two predictors fed the same program-order stream stay identical,
    /// and wrong-path views never perturb them.
    #[test]
    fn predictor_replica_stays_in_sync(
        outcomes in proptest::collection::vec((0u64..32, any::<bool>()), 1..300),
        probe_wp in any::<bool>(),
    ) {
        let cfg = BranchConfig {
            gshare_history_bits: 8,
            gshare_table_bits: 8,
            bimodal_table_bits: 8,
            indirect_entries: 16,
            ras_entries: 4,
        };
        let mut a = BranchPredictor::new(cfg);
        let mut b = BranchPredictor::new(cfg);
        for (slot, taken) in outcomes {
            let pc = 0x1000 + slot * 4;
            let target = 0x8000 + slot * 16;
            let instr = Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::new(1),
                rs2: Reg::new(2),
                target,
            };
            let next = if taken { target } else { pc + 4 };
            if probe_wp {
                // Interleave wrong-path probing on one side only; it must
                // not cause divergence.
                let mut view = a.wrong_path_view();
                let _ = view.predict(pc ^ 0x40, &instr);
                let _ = view.predict(pc ^ 0x80, &instr);
            }
            let ra = a.observe(pc, &instr, taken, next);
            let rb = b.observe(pc, &instr, taken, next);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// DRAM: latency is always >= fixed latency; total queueing equals the
    /// sum of individual queue delays; line spacing is enforced.
    #[test]
    fn dram_bandwidth_accounting(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let cfg = DramConfig { latency: 100, cycles_per_line: 7 };
        let mut d = Dram::new(cfg);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut total_queue = 0;
        for t in sorted {
            let lat = d.access(t, PathKind::Correct);
            prop_assert!(lat >= cfg.latency);
            total_queue += lat - cfg.latency;
        }
        prop_assert_eq!(d.stats().queue_cycles, total_queue);
        prop_assert_eq!(d.stats().accesses.get(PathKind::Correct) as usize, times.len());
    }

    /// TLB: accesses within one page never miss twice in a row; capacity
    /// is respected (a working set <= entries never misses after warmup).
    #[test]
    fn tlb_working_set_fits(pages in proptest::collection::vec(0u64..8, 16..100)) {
        let mut t = Tlb::new(TlbConfig { entries: 8, page_bytes: 4096, walk_latency: 30 });
        // Warm up all 8 possible pages.
        for p in 0..8u64 {
            let _ = t.access(p * 4096, PathKind::Correct);
        }
        for p in pages {
            prop_assert_eq!(t.access(p * 4096 + 123, PathKind::Correct), 0);
        }
    }

    /// Hierarchy: after any access the line is present in L1, and repeat
    /// access at the same address is always an L1 hit with lower or equal
    /// latency.
    #[test]
    fn hierarchy_repeat_access_hits_l1(
        addrs in proptest::collection::vec(0u64..0x10_0000, 1..100),
        writes in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut mh = MemoryHierarchy::new(&CoreConfig::tiny_for_tests());
        let mut now = 0;
        for (addr, w) in addrs.iter().zip(writes) {
            let first = mh.data_access(*addr, w, now, PathKind::Correct);
            now += 1000;
            let again = mh.data_access(*addr, w, now, PathKind::Correct);
            now += 1000;
            prop_assert_eq!(again.served_by, Level::L1);
            prop_assert!(again.latency <= first.latency);
        }
    }
}
