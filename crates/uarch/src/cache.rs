//! Set-associative, write-back, write-allocate cache with LRU replacement
//! and per-path statistics.

use crate::config::CacheConfig;
use crate::path::{PathKind, PerPath};
use ffsim_isa::Addr;

/// Result of a cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// The line is present.
    Hit,
    /// The line is absent; the caller should fetch it from the next level
    /// and [`Cache::fill`] it.
    Miss,
}

/// Per-cache statistics, split by correct/wrong path.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CacheStats {
    /// Hits per path.
    pub hits: PerPath,
    /// Misses per path.
    pub misses: PerPath,
    /// Lines evicted (any state).
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses across both paths.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits.total() + self.misses.total()
    }

    /// Miss ratio across both paths (0 when there were no accesses).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            self.misses.total() as f64 / acc as f64
        }
    }
}

#[derive(Clone, Copy, Default, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp — larger is more recent.
    stamp: u64,
}

/// A single cache level.
///
/// The cache tracks presence, recency and dirtiness only — data contents
/// live in the functional simulator. Lookups and fills are attributed to a
/// [`PathKind`] so wrong-path pollution and prefetching effects can be
/// measured (the heart of the paper's evaluation).
///
/// # Examples
///
/// ```
/// use ffsim_uarch::{Cache, CacheConfig, Lookup, PathKind};
/// let cfg = CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1 };
/// let mut c = Cache::new("L1D", cfg);
/// assert_eq!(c.lookup(0x40, false, PathKind::Correct), Lookup::Miss);
/// c.fill(0x40, false);
/// assert_eq!(c.lookup(0x40, false, PathKind::Correct), Lookup::Hit);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    name: &'static str,
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::num_sets`]).
    #[must_use]
    pub fn new(name: &'static str, cfg: CacheConfig) -> Cache {
        let sets = cfg.num_sets();
        assert!(cfg.line_bytes.is_power_of_two(), "line size power of two");
        Cache {
            name,
            cfg,
            sets: vec![vec![Line::default(); cfg.assoc as usize]; sets as usize],
            set_mask: sets - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (e.g. after cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index(&self, addr: Addr) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Looks up `addr`, updating recency, dirtiness and statistics.
    ///
    /// A miss does *not* allocate — call [`Cache::fill`] after fetching
    /// from the next level, so multi-level hierarchies control allocation
    /// order themselves.
    pub fn lookup(&mut self, addr: Addr, is_write: bool, path: PathKind) -> Lookup {
        self.clock += 1;
        let (set_idx, tag) = self.index(addr);
        let clock = self.clock;
        for line in &mut self.sets[set_idx] {
            if line.valid && line.tag == tag {
                line.stamp = clock;
                line.dirty |= is_write;
                self.stats.hits.bump(path);
                return Lookup::Hit;
            }
        }
        self.stats.misses.bump(path);
        Lookup::Miss
    }

    /// Checks for presence without updating recency or statistics.
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Inserts the line containing `addr`, evicting the LRU line of its set
    /// if needed. Returns the evicted line's base address if the victim was
    /// dirty (the caller writes it back to the next level).
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<Addr> {
        self.clock += 1;
        let clock = self.clock;
        let (set_idx, tag) = self.index(addr);
        let set_bits = self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        // Already present (e.g. racing fills): refresh in place.
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = clock;
            line.dirty |= dirty;
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("associativity is non-zero");
        let mut evicted_dirty = None;
        if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
                let victim_line = (victim.tag << set_bits) | set_idx as u64;
                evicted_dirty = Some(victim_line << self.line_shift);
            }
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            stamp: clock,
        };
        evicted_dirty
    }

    /// Invalidates all lines and resets recency (not statistics).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets * 2 ways * 64B lines.
        Cache::new(
            "test",
            CacheConfig {
                size_bytes: 256,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
            },
        )
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x1000, false, PathKind::Correct), Lookup::Miss);
        assert_eq!(c.fill(0x1000, false), None);
        assert_eq!(c.lookup(0x1000, false, PathKind::Correct), Lookup::Hit);
        assert_eq!(c.stats().hits.get(PathKind::Correct), 1);
        assert_eq!(c.stats().misses.get(PathKind::Correct), 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = small();
        c.fill(0x1000, false);
        assert_eq!(c.lookup(0x103f, false, PathKind::Correct), Lookup::Hit);
        assert_eq!(c.lookup(0x1040, false, PathKind::Correct), Lookup::Miss);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // All map to set 0: line addresses with bit 6 (set index) = 0.
        let a = 0x0000;
        let b = 0x0080;
        let d = 0x0100;
        c.fill(a, false);
        c.fill(b, false);
        // Touch a so b becomes LRU.
        assert_eq!(c.lookup(a, false, PathKind::Correct), Lookup::Hit);
        c.fill(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        c.fill(0x0000, false);
        assert_eq!(c.lookup(0x0000, true, PathKind::Correct), Lookup::Hit);
        c.fill(0x0080, false);
        // Evict set 0's LRU (0x0000, dirty).
        let evicted = c.fill(0x0100, false);
        assert_eq!(evicted, Some(0x0000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn fill_with_dirty_flag() {
        let mut c = small();
        c.fill(0x0000, true);
        c.fill(0x0080, false);
        let evicted = c.fill(0x0100, false);
        assert_eq!(evicted, Some(0x0000));
    }

    #[test]
    fn wrong_path_stats_are_separate() {
        let mut c = small();
        let _ = c.lookup(0x0000, false, PathKind::Wrong);
        c.fill(0x0000, false);
        let _ = c.lookup(0x0000, false, PathKind::Correct);
        assert_eq!(c.stats().misses.get(PathKind::Wrong), 1);
        assert_eq!(c.stats().misses.get(PathKind::Correct), 0);
        assert_eq!(c.stats().hits.get(PathKind::Correct), 1);
    }

    #[test]
    fn probe_does_not_touch_recency_or_stats() {
        let mut c = small();
        c.fill(0x0000, false);
        c.fill(0x0080, false);
        // Probing 0x0000 must not refresh it.
        assert!(c.probe(0x0000));
        let stats_before = c.stats();
        c.fill(0x0100, false); // LRU is still 0x0000
        assert!(!c.probe(0x0000));
        assert_eq!(stats_before.accesses(), c.stats().accesses());
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = small();
        c.fill(0x0000, true);
        c.flush();
        assert!(!c.probe(0x0000));
        assert_eq!(c.lookup(0x0000, false, PathKind::Correct), Lookup::Miss);
    }

    #[test]
    fn refill_existing_line_is_idempotent() {
        let mut c = small();
        c.fill(0x0000, false);
        assert_eq!(c.fill(0x0000, true), None);
        assert_eq!(c.stats().evictions, 0);
        // The in-place refresh merged the dirty bit.
        c.fill(0x0080, false);
        assert_eq!(c.fill(0x0100, false), Some(0x0000));
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        let _ = c.lookup(0x0000, false, PathKind::Correct);
        c.fill(0x0000, false);
        let _ = c.lookup(0x0000, false, PathKind::Correct);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
