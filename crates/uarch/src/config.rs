//! Simulated core configuration — the reproduction of the paper's Table I.
//!
//! The paper configures its simulator "similar to a P-core of an Intel
//! Alder Lake system (also known as Golden Cove microarchitecture)", with
//! the LLC and memory bandwidth downscaled to per-core shares.
//! [`CoreConfig::golden_cove_like`] encodes that configuration; every
//! structure is independently adjustable for sensitivity studies.

use ffsim_isa::ExecClass;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles, charged on a hit at this level.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets,
    /// capacity not divisible by `assoc * line_bytes`).
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        let way_bytes = self.assoc * self.line_bytes;
        assert!(
            way_bytes > 0 && self.size_bytes.is_multiple_of(way_bytes),
            "cache size must be a multiple of assoc*line"
        );
        let sets = self.size_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        sets
    }
}

/// TLB geometry and page-walk cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Extra latency charged on a TLB miss (page walk).
    pub walk_latency: u64,
}

/// DRAM latency and bandwidth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DramConfig {
    /// Fixed access latency in cycles (row access + controller).
    pub latency: u64,
    /// Minimum cycles between consecutive line transfers (line size /
    /// per-core bandwidth) — models the downscaled per-core share the
    /// paper uses.
    pub cycles_per_line: u64,
}

/// Branch-prediction structure sizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchConfig {
    /// Global-history bits of the gshare direction predictor.
    pub gshare_history_bits: u32,
    /// log2 of the gshare pattern-history table entries.
    pub gshare_table_bits: u32,
    /// log2 of the bimodal table entries (hybrid chooser fallback).
    pub bimodal_table_bits: u32,
    /// Entries in the (tagged, direct-mapped) indirect target predictor.
    pub indirect_entries: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

/// Per-class functional-unit pools.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuPool {
    /// Number of units of this class.
    pub count: usize,
    /// Result latency in cycles.
    pub latency: u64,
    /// Whether the unit is pipelined (accepts one op per cycle) or blocks
    /// for the full latency (divides).
    pub pipelined: bool,
}

/// Complete single-core configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct CoreConfig {
    /// Instructions fetched/decoded per cycle.
    pub fetch_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue (scheduler) entries.
    pub iq_size: usize,
    /// Load-queue entries.
    pub load_queue: usize,
    /// Store-queue entries.
    pub store_queue: usize,
    /// Fetch-to-dispatch pipeline depth in cycles.
    pub frontend_depth: u64,
    /// Extra cycles to squash and restore rename state after a mispredict
    /// resolves (added on top of `frontend_depth` for the refill).
    pub redirect_penalty: u64,
    /// Functional units for integer ALU ops.
    pub int_alu: FuPool,
    /// Functional units for integer multiplies.
    pub int_mul: FuPool,
    /// Functional units for integer divides.
    pub int_div: FuPool,
    /// Functional units for FP add/cmp/convert.
    pub fp_add: FuPool,
    /// Functional units for FP multiplies.
    pub fp_mul: FuPool,
    /// Functional units for FP divides.
    pub fp_div: FuPool,
    /// Load ports (address generation + access).
    pub load_ports: FuPool,
    /// Store ports.
    pub store_ports: FuPool,
    /// Branch execution units.
    pub branch_units: FuPool,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache (per-core share).
    pub llc: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Main memory.
    pub dram: DramConfig,
    /// Branch predictor sizing.
    pub branch: BranchConfig,
    /// Enable the L2 next-line prefetcher (off by default; ablations only).
    pub l2_next_line_prefetcher: bool,
    /// Runahead depth of the functional→performance instruction queue.
    pub queue_depth: usize,
}

impl CoreConfig {
    /// A Golden Cove–like P-core, following the paper's experimental setup
    /// (§IV): large OoO window (512-entry ROB — Table III notes "the
    /// remaining instructions in the ROB (up to 512)"), 6-wide frontend,
    /// and LLC capacity plus memory bandwidth downscaled to a single
    /// core's share of a typical SKU.
    #[must_use]
    pub fn golden_cove_like() -> CoreConfig {
        CoreConfig {
            fetch_width: 6,
            retire_width: 8,
            rob_size: 512,
            iq_size: 200,
            load_queue: 192,
            store_queue: 114,
            frontend_depth: 10,
            redirect_penalty: 7,
            int_alu: FuPool {
                count: 5,
                latency: 1,
                pipelined: true,
            },
            int_mul: FuPool {
                count: 2,
                latency: 3,
                pipelined: true,
            },
            int_div: FuPool {
                count: 1,
                latency: 18,
                pipelined: false,
            },
            fp_add: FuPool {
                count: 3,
                latency: 3,
                pipelined: true,
            },
            fp_mul: FuPool {
                count: 2,
                latency: 4,
                pipelined: true,
            },
            fp_div: FuPool {
                count: 1,
                latency: 14,
                pipelined: false,
            },
            load_ports: FuPool {
                count: 3,
                latency: 1,
                pipelined: true,
            },
            store_ports: FuPool {
                count: 2,
                latency: 1,
                pipelined: true,
            },
            branch_units: FuPool {
                count: 2,
                latency: 1,
                pipelined: true,
            },
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                assoc: 12,
                line_bytes: 64,
                latency: 5,
            },
            l2: CacheConfig {
                size_bytes: 1280 * 1024,
                assoc: 10,
                line_bytes: 64,
                latency: 15,
            },
            llc: CacheConfig {
                // 3 MB per-core share (downscaled, as in the paper).
                size_bytes: 3 * 1024 * 1024,
                assoc: 12,
                line_bytes: 64,
                latency: 45,
            },
            itlb: TlbConfig {
                entries: 128,
                page_bytes: 4096,
                walk_latency: 20,
            },
            dtlb: TlbConfig {
                entries: 96,
                page_bytes: 4096,
                walk_latency: 20,
            },
            dram: DramConfig {
                latency: 260,
                // ~64B line over a ~5.3 B/cycle per-core share.
                cycles_per_line: 12,
            },
            branch: BranchConfig {
                gshare_history_bits: 14,
                gshare_table_bits: 14,
                bimodal_table_bits: 13,
                indirect_entries: 512,
                ras_entries: 32,
            },
            l2_next_line_prefetcher: false,
            queue_depth: 2048,
        }
    }

    /// A small core for fast unit tests: tiny caches and window so that
    /// capacity effects show up with short programs.
    #[must_use]
    pub fn tiny_for_tests() -> CoreConfig {
        let mut c = CoreConfig::golden_cove_like();
        c.rob_size = 32;
        c.iq_size = 16;
        c.load_queue = 16;
        c.store_queue = 16;
        c.l1i = CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        };
        c.l1d = CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
            latency: 3,
        };
        c.l2 = CacheConfig {
            size_bytes: 4096,
            assoc: 4,
            line_bytes: 64,
            latency: 10,
        };
        c.llc = CacheConfig {
            size_bytes: 16 * 1024,
            assoc: 4,
            line_bytes: 64,
            latency: 30,
        };
        c.dram = DramConfig {
            latency: 200,
            cycles_per_line: 12,
        };
        c.queue_depth = 256;
        c
    }

    /// The functional-unit pool serving an execution class.
    #[must_use]
    pub fn fu_pool(&self, class: ExecClass) -> FuPool {
        match class {
            ExecClass::IntAlu => self.int_alu,
            ExecClass::IntMul => self.int_mul,
            ExecClass::IntDiv => self.int_div,
            ExecClass::FpAdd => self.fp_add,
            ExecClass::FpMul => self.fp_mul,
            ExecClass::FpDiv => self.fp_div,
            ExecClass::Load => self.load_ports,
            ExecClass::Store => self.store_ports,
            ExecClass::Branch => self.branch_units,
        }
    }

    /// The wrong-path instruction budget per misprediction: one ROB's
    /// worth plus the frontend pipeline buffers (paper §III-B: "The wrong
    /// path is always followed for one reorder buffer (ROB) size worth of
    /// instructions (plus the frontend pipeline buffers)").
    #[must_use]
    pub fn wrong_path_budget(&self) -> usize {
        self.rob_size + self.frontend_depth as usize * self.fetch_width
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::golden_cove_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_cove_geometry_is_consistent() {
        let c = CoreConfig::golden_cove_like();
        assert_eq!(c.l1i.num_sets(), 64);
        assert_eq!(c.l1d.num_sets(), 64);
        assert_eq!(c.l2.num_sets(), 2048);
        assert_eq!(c.llc.num_sets(), 4096);
        assert_eq!(c.rob_size, 512);
    }

    #[test]
    fn wrong_path_budget_covers_rob_plus_frontend() {
        let c = CoreConfig::golden_cove_like();
        assert_eq!(
            c.wrong_path_budget(),
            512 + (c.frontend_depth as usize) * c.fetch_width
        );
    }

    #[test]
    fn fu_pool_lookup() {
        let c = CoreConfig::golden_cove_like();
        assert!(!c.fu_pool(ExecClass::IntDiv).pipelined);
        assert!(c.fu_pool(ExecClass::IntAlu).pipelined);
        assert_eq!(c.fu_pool(ExecClass::Load).count, 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let bad = CacheConfig {
            size_bytes: 3 * 64 * 5,
            assoc: 5,
            line_bytes: 64,
            latency: 1,
        };
        let _ = bad.num_sets();
    }
}
