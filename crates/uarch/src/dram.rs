//! Main-memory timing: fixed latency plus a per-core bandwidth share.
//!
//! The paper downscales memory bandwidth "to reflect the available ...
//! memory bandwidth per core in common SKUs" (§IV). [`Dram`] models that
//! share as a minimum spacing between line transfers: each access pays the
//! fixed latency, plus queueing delay when lines are requested faster than
//! the share allows.

use crate::config::DramConfig;
use crate::path::{PathKind, PerPath};

/// DRAM statistics.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct DramStats {
    /// Line transfers per path.
    pub accesses: PerPath,
    /// Total cycles spent queueing behind the bandwidth limit.
    pub queue_cycles: u64,
}

/// Bandwidth-limited main memory.
///
/// # Examples
///
/// ```
/// use ffsim_uarch::{Dram, DramConfig, PathKind};
/// let mut d = Dram::new(DramConfig { latency: 100, cycles_per_line: 10 });
/// // Two back-to-back requests at the same cycle: the second queues.
/// assert_eq!(d.access(1000, PathKind::Correct), 100);
/// assert!(d.access(1000, PathKind::Correct) > 100);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    next_free: u64,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle memory.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Dram {
        Dram {
            cfg,
            next_free: 0,
            stats: DramStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets statistics (the bandwidth timeline is kept).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Requests one line at cycle `now`; returns the total latency
    /// (fixed latency + any bandwidth queueing).
    pub fn access(&mut self, now: u64, path: PathKind) -> u64 {
        self.stats.accesses.bump(path);
        let start = now.max(self.next_free);
        let queue = start - now;
        self.stats.queue_cycles += queue;
        self.next_free = start + self.cfg.cycles_per_line;
        queue + self.cfg.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig {
            latency: 100,
            cycles_per_line: 10,
        })
    }

    #[test]
    fn isolated_access_pays_only_latency() {
        let mut d = dram();
        assert_eq!(d.access(500, PathKind::Correct), 100);
        assert_eq!(d.stats().queue_cycles, 0);
    }

    #[test]
    fn burst_queues_behind_bandwidth() {
        let mut d = dram();
        assert_eq!(d.access(0, PathKind::Correct), 100);
        assert_eq!(d.access(0, PathKind::Correct), 110);
        assert_eq!(d.access(0, PathKind::Correct), 120);
        assert_eq!(d.stats().queue_cycles, 10 + 20);
    }

    #[test]
    fn spaced_accesses_do_not_queue() {
        let mut d = dram();
        assert_eq!(d.access(0, PathKind::Correct), 100);
        assert_eq!(d.access(10, PathKind::Correct), 100);
        assert_eq!(d.access(1000, PathKind::Correct), 100);
    }

    #[test]
    fn out_of_order_request_times_are_tolerated() {
        let mut d = dram();
        let _ = d.access(100, PathKind::Correct);
        // An earlier-stamped request arriving later still queues correctly.
        let lat = d.access(50, PathKind::Wrong);
        assert_eq!(lat, 60 + 100);
        assert_eq!(d.stats().accesses.get(PathKind::Wrong), 1);
    }
}
