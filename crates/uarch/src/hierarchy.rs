//! The memory hierarchy: L1I/L1D → unified L2 → LLC → DRAM, with TLBs.
//!
//! The hierarchy tracks line presence and recency only; data contents live
//! in the functional simulator. Every access is attributed to a
//! [`PathKind`], which is what makes wrong-path cache pollution and
//! prefetching — the paper's central effect — observable: wrong-path
//! fills warm (or pollute) the same line state later correct-path accesses
//! hit.

use crate::cache::{Cache, Lookup};
use crate::config::CoreConfig;
use crate::dram::Dram;
use crate::path::PathKind;
use crate::tlb::Tlb;
use ffsim_isa::Addr;

/// Which level served an access.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Served by the first-level cache.
    L1,
    /// Served by the unified L2.
    L2,
    /// Served by the last-level cache.
    Llc,
    /// Served by main memory.
    Memory,
}

/// Latency and serving level of one access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Total latency in cycles (TLB walk + cache levels + DRAM queueing).
    pub latency: u64,
    /// The level that had the line.
    pub served_by: Level,
}

/// A single-core cache/TLB/DRAM hierarchy.
///
/// # Examples
///
/// ```
/// use ffsim_uarch::{MemoryHierarchy, CoreConfig, PathKind, Level};
/// let cfg = CoreConfig::golden_cove_like();
/// let mut mh = MemoryHierarchy::new(&cfg);
/// let cold = mh.data_access(0x10_0000, false, 0, PathKind::Correct);
/// assert_eq!(cold.served_by, Level::Memory);
/// let warm = mh.data_access(0x10_0000, false, 100, PathKind::Correct);
/// assert_eq!(warm.served_by, Level::L1);
/// assert!(warm.latency < cold.latency);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    dram: Dram,
    line_bytes: u64,
    next_line_prefetch: bool,
    prefetch_issued: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `cfg`.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new("L1I", cfg.l1i),
            l1d: Cache::new("L1D", cfg.l1d),
            l2: Cache::new("L2", cfg.l2),
            llc: Cache::new("LLC", cfg.llc),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            dram: Dram::new(cfg.dram),
            line_bytes: cfg.l1d.line_bytes,
            next_line_prefetch: cfg.l2_next_line_prefetcher,
            prefetch_issued: 0,
        }
    }

    /// The instruction cache (stats inspection).
    #[must_use]
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data cache (stats inspection).
    #[must_use]
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2 (stats inspection).
    #[must_use]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The last-level cache (stats inspection).
    #[must_use]
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// The instruction TLB (stats inspection).
    #[must_use]
    pub fn itlb(&self) -> &Tlb {
        &self.itlb
    }

    /// The data TLB (stats inspection).
    #[must_use]
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// Main memory (stats inspection).
    #[must_use]
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Number of prefetch fills issued by the optional L2 next-line
    /// prefetcher.
    #[must_use]
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetch_issued
    }

    /// Resets all statistics (cache/TLB contents and the DRAM bandwidth
    /// timeline are kept — use after warmup).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.dram.reset_stats();
    }

    /// Handles a dirty line evicted from L2 by pushing it to the LLC,
    /// chaining to DRAM bandwidth if the LLC evicts dirty in turn.
    fn writeback_from_l2(&mut self, victim: Addr, now: u64, path: PathKind) {
        if let Some(llc_victim) = self.llc.fill(victim, true) {
            let _ = llc_victim;
            // Dirty LLC eviction: consumes DRAM bandwidth off the critical
            // path; the latency result is intentionally dropped.
            let _ = self.dram.access(now, path);
        }
    }

    /// Fetches a line into L2 (and below) without charging latency — the
    /// optional next-line prefetcher.
    fn prefetch_into_l2(&mut self, addr: Addr, now: u64, path: PathKind) {
        if self.l2.probe(addr) {
            return;
        }
        self.prefetch_issued += 1;
        if !self.llc.probe(addr) {
            let _ = self.dram.access(now, path);
            if let Some(v) = self.llc.fill(addr, false) {
                let _ = v;
                let _ = self.dram.access(now, path);
            }
        }
        if let Some(victim) = self.l2.fill(addr, false) {
            self.writeback_from_l2(victim, now, path);
        }
    }

    /// Common L2→LLC→DRAM walk; returns (additional latency, level).
    fn access_below_l1(&mut self, addr: Addr, now: u64, path: PathKind) -> (u64, Level) {
        let mut latency = self.l2.config().latency;
        if self.l2.lookup(addr, false, path) == Lookup::Hit {
            return (latency, Level::L2);
        }
        if self.next_line_prefetch {
            self.prefetch_into_l2(addr + self.line_bytes, now, path);
        }
        latency += self.llc.config().latency;
        let level = if self.llc.lookup(addr, false, path) == Lookup::Hit {
            Level::Llc
        } else {
            latency += self.dram.access(now + latency, path);
            if let Some(v) = self.llc.fill(addr, false) {
                let _ = v;
                let _ = self.dram.access(now + latency, path);
            }
            Level::Memory
        };
        if let Some(victim) = self.l2.fill(addr, false) {
            self.writeback_from_l2(victim, now + latency, path);
        }
        (latency, level)
    }

    /// An instruction fetch of the line containing `pc` at cycle `now`.
    pub fn fetch(&mut self, pc: Addr, now: u64, path: PathKind) -> AccessResult {
        let mut latency = self.itlb.access(pc, path);
        latency += self.l1i.config().latency;
        if self.l1i.lookup(pc, false, path) == Lookup::Hit {
            return AccessResult {
                latency,
                served_by: Level::L1,
            };
        }
        let (below, level) = self.access_below_l1(pc, now + latency, path);
        latency += below;
        if let Some(victim) = self.l1i.fill(pc, false) {
            // Instruction lines are never dirty; defensive writeback anyway.
            self.writeback_from_l2(victim, now + latency, path);
        }
        AccessResult {
            latency,
            served_by: level,
        }
    }

    /// A data access (load or store) at cycle `now`.
    ///
    /// Stores are modeled write-allocate/write-back: a store miss fetches
    /// the line like a load and marks it dirty in L1D.
    pub fn data_access(
        &mut self,
        addr: Addr,
        is_write: bool,
        now: u64,
        path: PathKind,
    ) -> AccessResult {
        let mut latency = self.dtlb.access(addr, path);
        latency += self.l1d.config().latency;
        if self.l1d.lookup(addr, is_write, path) == Lookup::Hit {
            return AccessResult {
                latency,
                served_by: Level::L1,
            };
        }
        let (below, level) = self.access_below_l1(addr, now + latency, path);
        latency += below;
        if let Some(victim) = self.l1d.fill(addr, is_write) {
            // Dirty L1D victim: write back into L2.
            if let Some(l2_victim) = self.l2.fill(victim, true) {
                self.writeback_from_l2(l2_victim, now + latency, path);
            }
        }
        AccessResult {
            latency,
            served_by: level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&CoreConfig::tiny_for_tests())
    }

    #[test]
    fn levels_fill_on_the_way_up() {
        let mut mh = hierarchy();
        let r = mh.data_access(0x8000, false, 0, PathKind::Correct);
        assert_eq!(r.served_by, Level::Memory);
        assert!(mh.l1d().probe(0x8000));
        assert!(mh.l2().probe(0x8000));
        assert!(mh.llc().probe(0x8000));
        let r = mh.data_access(0x8000, false, 10, PathKind::Correct);
        assert_eq!(r.served_by, Level::L1);
    }

    #[test]
    fn latency_ordering_l1_l2_llc_mem() {
        let mut mh = hierarchy();
        let mem = mh.data_access(0x8000, false, 0, PathKind::Correct).latency;
        let l1 = mh.data_access(0x8000, false, 0, PathKind::Correct).latency;
        // Evict from tiny L1D but not from L2 by touching conflicting sets.
        // Tiny L1D: 1 KiB, 2-way, 64B lines → 8 sets; lines 0x8000 + 8*64*k
        // conflict. Three fills evict the first.
        let _ = mh.data_access(0x8000 + 0x200, false, 0, PathKind::Correct);
        let _ = mh.data_access(0x8000 + 0x400, false, 0, PathKind::Correct);
        let l2 = mh.data_access(0x8000, false, 0, PathKind::Correct);
        assert_eq!(l2.served_by, Level::L2);
        assert!(l1 < l2.latency && l2.latency < mem);
    }

    #[test]
    fn wrong_path_fill_serves_correct_path_hit() {
        // The paper's key positive-interference effect: a wrong-path access
        // prefetches the line for the correct path.
        let mut mh = hierarchy();
        let r = mh.data_access(0x9000, false, 0, PathKind::Wrong);
        assert_eq!(r.served_by, Level::Memory);
        let r = mh.data_access(0x9000, false, 10, PathKind::Correct);
        assert_eq!(r.served_by, Level::L1);
        assert_eq!(mh.l1d().stats().misses.get(PathKind::Wrong), 1);
        assert_eq!(mh.l1d().stats().hits.get(PathKind::Correct), 1);
    }

    #[test]
    fn wrong_path_can_evict_correct_path_lines() {
        // And the negative-interference effect: wrong-path fills evict.
        let mut mh = hierarchy();
        let _ = mh.data_access(0xa000, false, 0, PathKind::Correct);
        // Two conflicting wrong-path lines evict 0xa000 from 2-way L1D.
        let _ = mh.data_access(0xa200, false, 0, PathKind::Wrong);
        let _ = mh.data_access(0xa400, false, 0, PathKind::Wrong);
        assert!(!mh.l1d().probe(0xa000));
        // Still in L2 though — tiny L2 is 4 KiB / 4-way.
        assert!(mh.l2().probe(0xa000));
    }

    #[test]
    fn stores_dirty_then_write_back() {
        let mut mh = hierarchy();
        let _ = mh.data_access(0xb000, true, 0, PathKind::Correct);
        // Evict the dirty line from L1D.
        let _ = mh.data_access(0xb200, false, 0, PathKind::Correct);
        let _ = mh.data_access(0xb400, false, 0, PathKind::Correct);
        assert!(!mh.l1d().probe(0xb000));
        assert_eq!(mh.l1d().stats().writebacks, 1);
    }

    #[test]
    fn instruction_and_data_paths_are_separate() {
        let mut mh = hierarchy();
        let _ = mh.fetch(0xc000, 0, PathKind::Correct);
        assert!(mh.l1i().probe(0xc000));
        assert!(!mh.l1d().probe(0xc000));
        // Both share L2.
        assert!(mh.l2().probe(0xc000));
        let r = mh.data_access(0xc000, false, 10, PathKind::Correct);
        assert_eq!(r.served_by, Level::L2);
    }

    #[test]
    fn tlb_miss_adds_walk_latency() {
        let mut mh = hierarchy();
        let cold = mh.data_access(0xd000, false, 0, PathKind::Correct).latency;
        // Same page, different line: TLB hit, otherwise same path depth.
        // Use a far-future cycle so DRAM bandwidth queueing cannot differ.
        let warm_tlb = mh
            .data_access(0xd040, false, 1_000_000, PathKind::Correct)
            .latency;
        assert!(cold > warm_tlb);
    }

    #[test]
    fn next_line_prefetcher_warms_l2() {
        let mut cfg = CoreConfig::tiny_for_tests();
        cfg.l2_next_line_prefetcher = true;
        let mut mh = MemoryHierarchy::new(&cfg);
        let _ = mh.data_access(0xe000, false, 0, PathKind::Correct);
        assert!(mh.l2().probe(0xe040), "next line prefetched into L2");
        assert!(mh.prefetches_issued() >= 1);
        let r = mh.data_access(0xe040, false, 10, PathKind::Correct);
        assert_eq!(r.served_by, Level::L2);
    }
}
