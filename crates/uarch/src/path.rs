//! Correct-path vs. wrong-path attribution.

/// Whether a microarchitectural event belongs to the correct path or to a
/// speculative wrong path.
///
/// Every cache, TLB and DRAM access in this simulator is attributed to a
/// path so the experiment harness can report the paper's per-path metrics
/// (e.g. Table III's wrong-path L2 misses) and so "no wrong-path modeling"
/// configurations can be validated to never issue wrong-path accesses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PathKind {
    /// Architecturally-committed (correct-path) work.
    Correct,
    /// Speculative work past a mispredicted branch, later squashed.
    Wrong,
}

impl PathKind {
    /// Dense index (0 = correct, 1 = wrong) for stats arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            PathKind::Correct => 0,
            PathKind::Wrong => 1,
        }
    }
}

/// A pair of counters split by [`PathKind`].
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct PerPath {
    counts: [u64; 2],
}

impl PerPath {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> PerPath {
        PerPath::default()
    }

    /// Increments the counter for `path`.
    pub fn bump(&mut self, path: PathKind) {
        self.counts[path.index()] += 1;
    }

    /// Adds `n` to the counter for `path`.
    pub fn add(&mut self, path: PathKind, n: u64) {
        self.counts[path.index()] += n;
    }

    /// The counter for `path`.
    #[must_use]
    pub fn get(self, path: PathKind) -> u64 {
        self.counts[path.index()]
    }

    /// Sum across both paths.
    #[must_use]
    pub fn total(self) -> u64 {
        self.counts[0] + self.counts[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_path_counters() {
        let mut p = PerPath::new();
        p.bump(PathKind::Correct);
        p.add(PathKind::Wrong, 5);
        p.bump(PathKind::Wrong);
        assert_eq!(p.get(PathKind::Correct), 1);
        assert_eq!(p.get(PathKind::Wrong), 6);
        assert_eq!(p.total(), 7);
    }

    #[test]
    fn indices_are_dense() {
        assert_eq!(PathKind::Correct.index(), 0);
        assert_eq!(PathKind::Wrong.index(), 1);
    }
}
