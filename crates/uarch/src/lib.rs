//! # ffsim-uarch — microarchitectural components for the timing model
//!
//! The hardware-structure substrate of this repository's reproduction of
//! *“Simulating Wrong-Path Instructions in Decoupled Functional-First
//! Simulation”* (Eyerman et al., ISPASS 2023):
//!
//! * [`CoreConfig`] — the simulated core parameters; the default
//!   [`CoreConfig::golden_cove_like`] mirrors the paper's Table I setup
//!   (Alder Lake P-core with per-core-downscaled LLC and memory bandwidth),
//! * [`Cache`] / [`MemoryHierarchy`] / [`Tlb`] / [`Dram`] — set-associative
//!   caches with LRU, write-back/write-allocate, per-path statistics, a
//!   bandwidth-limited DRAM model, and TLBs,
//! * [`BranchPredictor`] — a gshare/bimodal hybrid with indirect target
//!   prediction and a return-address stack, designed so two instances fed
//!   the same program-order branch stream remain bit-identical (the
//!   synchronization property the wrong-path-emulation replica requires),
//! * [`PathKind`] — correct-path vs wrong-path attribution threaded
//!   through every component, making wrong-path cache interference — the
//!   paper's subject — directly measurable.
//!
//! # Examples
//!
//! ```
//! use ffsim_uarch::{CoreConfig, MemoryHierarchy, PathKind, Level};
//!
//! let cfg = CoreConfig::golden_cove_like();
//! let mut mh = MemoryHierarchy::new(&cfg);
//! // A wrong-path access warms the cache...
//! mh.data_access(0x4_0000, false, 0, PathKind::Wrong);
//! // ...so the later correct-path access hits: positive interference.
//! let r = mh.data_access(0x4_0000, false, 50, PathKind::Correct);
//! assert_eq!(r.served_by, Level::L1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod branch;
mod cache;
mod config;
mod dram;
mod hierarchy;
mod path;
mod tlb;

pub use branch::{
    BranchPredictor, BranchResolution, BranchStats, Prediction, ReturnStack, SpeculativeState,
    WrongPathPredictor,
};
pub use cache::{Cache, CacheStats, Lookup};
pub use config::{BranchConfig, CacheConfig, CoreConfig, DramConfig, FuPool, TlbConfig};
pub use dram::{Dram, DramStats};
pub use hierarchy::{AccessResult, Level, MemoryHierarchy};
pub use path::{PathKind, PerPath};
pub use tlb::{Tlb, TlbStats};
