//! Translation lookaside buffers.
//!
//! A small fully-associative LRU TLB per access stream (instruction and
//! data). The simulated machine is physically addressed, so the TLB only
//! models the *timing* of translation: a miss charges a fixed page-walk
//! latency.

use crate::config::TlbConfig;
use crate::path::{PathKind, PerPath};
use ffsim_isa::Addr;

/// TLB statistics, split by path.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct TlbStats {
    /// Hits per path.
    pub hits: PerPath,
    /// Misses (page walks) per path.
    pub misses: PerPath,
}

/// A fully-associative, LRU translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use ffsim_uarch::{Tlb, TlbConfig, PathKind};
/// let mut tlb = Tlb::new(TlbConfig { entries: 2, page_bytes: 4096, walk_latency: 20 });
/// assert_eq!(tlb.access(0x1000, PathKind::Correct), 20, "cold miss walks");
/// assert_eq!(tlb.access(0x1fff, PathKind::Correct), 0, "same page hits");
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    page_shift: u32,
    /// page number → LRU stamp. Hits are O(1); the LRU victim scan runs
    /// only on misses (stamps are unique, so eviction is deterministic).
    entries: std::collections::HashMap<u64, u64>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or the page size is not a power of two.
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.entries > 0, "TLB must have entries");
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            cfg,
            page_shift: cfg.page_bytes.trailing_zeros(),
            entries: std::collections::HashMap::with_capacity(cfg.entries),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics (entries are kept — use after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Translates `addr`, returning the extra latency (0 on a hit, the
    /// configured walk latency on a miss). Misses allocate.
    pub fn access(&mut self, addr: Addr, path: PathKind) -> u64 {
        self.clock += 1;
        let page = addr >> self.page_shift;
        if let Some(stamp) = self.entries.get_mut(&page) {
            *stamp = self.clock;
            self.stats.hits.bump(path);
            return 0;
        }
        self.stats.misses.bump(path);
        if self.entries.len() >= self.cfg.entries {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .expect("non-empty")
                .0;
            self.entries.remove(&victim);
        }
        self.entries.insert(page, self.clock);
        self.cfg.walk_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: usize) -> Tlb {
        Tlb::new(TlbConfig {
            entries,
            page_bytes: 4096,
            walk_latency: 25,
        })
    }

    #[test]
    fn hit_after_walk() {
        let mut t = tlb(4);
        assert_eq!(t.access(0x12345, PathKind::Correct), 25);
        assert_eq!(t.access(0x12345, PathKind::Correct), 0);
        assert_eq!(t.stats().hits.get(PathKind::Correct), 1);
        assert_eq!(t.stats().misses.get(PathKind::Correct), 1);
    }

    #[test]
    fn lru_replacement() {
        let mut t = tlb(2);
        let page = |n: u64| n * 4096;
        assert_eq!(t.access(page(1), PathKind::Correct), 25);
        assert_eq!(t.access(page(2), PathKind::Correct), 25);
        // Touch page 1 → page 2 becomes LRU.
        assert_eq!(t.access(page(1), PathKind::Correct), 0);
        assert_eq!(t.access(page(3), PathKind::Correct), 25);
        assert_eq!(t.access(page(2), PathKind::Correct), 25, "page 2 evicted");
        assert_eq!(
            t.access(page(1), PathKind::Correct),
            25,
            "page 1 now evicted"
        );
    }

    #[test]
    fn wrong_path_walks_are_attributed() {
        let mut t = tlb(4);
        let _ = t.access(0x5000, PathKind::Wrong);
        assert_eq!(t.stats().misses.get(PathKind::Wrong), 1);
        assert_eq!(t.stats().misses.get(PathKind::Correct), 0);
        // And the wrong-path walk warms the TLB for the correct path —
        // the interference effect the paper studies.
        assert_eq!(t.access(0x5abc, PathKind::Correct), 0);
    }
}
