//! Branch prediction: hybrid gshare/bimodal direction predictor, tagged
//! indirect target predictor, and a return-address stack.
//!
//! ## Determinism and replica synchronization
//!
//! The paper's wrong-path *emulation* technique keeps "a copy of the
//! branch predictor model" in the functional simulator (§III-B). For the
//! copy to trigger wrong paths exactly where the timing model detects
//! mispredictions, both predictors must compute identical predictions.
//! This implementation guarantees that by making all predictor state a
//! deterministic function of the *program-order* branch stream: state is
//! only mutated by [`BranchPredictor::observe`], which both sides call
//! with the same in-order sequence of `(pc, instruction, actual outcome)`.
//! Prediction happens inside `observe`, *before* the update, exactly once
//! per dynamic branch.
//!
//! Wrong-path branches are predicted through a [`WrongPathPredictor`]
//! view: it reads the shared tables but keeps scratch global history and a
//! scratch return-address stack, so wrong-path lookups never perturb
//! predictor state (on either side), as in the paper.

use crate::config::BranchConfig;
use ffsim_isa::{Addr, BranchKind, Instr, INSTR_BYTES};

/// A branch prediction: direction plus predicted next fetch pc.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Prediction {
    /// Predicted taken?
    pub taken: bool,
    /// Predicted next fetch pc. `None` when the direction is taken but no
    /// target is available (indirect predictor / RAS miss) — fetch must
    /// stall, and no wrong path can be reconstructed.
    pub next_pc: Option<Addr>,
}

impl Prediction {
    /// Whether this prediction disagrees with the actual `next_pc`.
    #[must_use]
    pub fn mispredicts(&self, actual_next_pc: Addr) -> bool {
        self.next_pc != Some(actual_next_pc)
    }
}

/// The outcome of observing one dynamic branch in program order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchResolution {
    /// The prediction made (before state update).
    pub prediction: Prediction,
    /// Whether the prediction was wrong.
    pub mispredicted: bool,
    /// Where fetch would go under the wrong prediction — the start of the
    /// wrong path (paper §III-A: "the next instruction if the branch is
    /// predicted not taken, the branch target if the branch is predicted
    /// taken, or the predicted target for an indirect branch").
    /// `None` when correctly predicted, or when no wrong-path target
    /// exists (unpredictable indirect).
    pub wrong_path_start: Option<Addr>,
}

/// Prediction accuracy counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct BranchStats {
    /// Conditional branches observed.
    pub cond_branches: u64,
    /// Conditional branches mispredicted (direction).
    pub cond_mispredicts: u64,
    /// Indirect jumps/calls observed.
    pub indirect_branches: u64,
    /// Indirect jumps/calls mispredicted (target).
    pub indirect_mispredicts: u64,
    /// Returns observed.
    pub returns: u64,
    /// Returns mispredicted.
    pub return_mispredicts: u64,
    /// Unconditional direct jumps/calls observed (never mispredicted).
    pub direct_jumps: u64,
}

impl BranchStats {
    /// All observed branches.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cond_branches + self.indirect_branches + self.returns + self.direct_jumps
    }

    /// All mispredictions.
    #[must_use]
    pub fn mispredicts(&self) -> u64 {
        self.cond_mispredicts + self.indirect_mispredicts + self.return_mispredicts
    }

    /// Mispredictions per kilo-branch (0 when no branches ran).
    #[must_use]
    pub fn mpki_per_branch(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.mispredicts() as f64 * 1000.0 / self.total() as f64
        }
    }
}

/// Circular return-address stack.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReturnStack {
    buf: Vec<Addr>,
    top: usize,
    count: usize,
}

impl ReturnStack {
    /// Creates an empty stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> ReturnStack {
        assert!(capacity > 0, "RAS capacity must be positive");
        ReturnStack {
            buf: vec![0; capacity],
            top: 0,
            count: 0,
        }
    }

    /// Pushes a return address, overwriting the oldest entry when full.
    pub fn push(&mut self, addr: Addr) {
        self.top = (self.top + 1) % self.buf.len();
        self.buf[self.top] = addr;
        self.count = (self.count + 1).min(self.buf.len());
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.count == 0 {
            return None;
        }
        let v = self.buf[self.top];
        self.top = (self.top + self.buf.len() - 1) % self.buf.len();
        self.count -= 1;
        Some(v)
    }

    /// The most recent return address without popping.
    #[must_use]
    pub fn peek(&self) -> Option<Addr> {
        (self.count > 0).then(|| self.buf[self.top])
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the stack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

fn counter_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// The branch predictor: gshare + bimodal hybrid with a per-pc chooser,
/// a tagged direct-mapped indirect target predictor, and a return-address
/// stack.
///
/// # Examples
///
/// ```
/// use ffsim_uarch::{BranchPredictor, BranchConfig};
/// use ffsim_isa::{Instr, BranchCond, Reg};
///
/// let mut bp = BranchPredictor::new(BranchConfig {
///     gshare_history_bits: 8, gshare_table_bits: 10,
///     bimodal_table_bits: 10, indirect_entries: 64, ras_entries: 8,
/// });
/// let branch = Instr::Branch { cond: BranchCond::Ne, rs1: Reg::new(1), rs2: Reg::new(2), target: 0x1000 };
/// // A loop branch taken 100 times trains quickly.
/// let mut mispredicts = 0;
/// for _ in 0..100 {
///     let r = bp.observe(0x2000, &branch, true, 0x1000);
///     if r.mispredicted { mispredicts += 1; }
/// }
/// assert!(mispredicts <= 2);
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    cfg: BranchConfig,
    gshare: Vec<u8>,
    bimodal: Vec<u8>,
    chooser: Vec<u8>,
    ghr: u64,
    indirect: Vec<Option<(u64, Addr)>>,
    ras: ReturnStack,
    stats: BranchStats,
}

impl BranchPredictor {
    /// Creates a predictor with all counters weakly not-taken and empty
    /// target structures.
    #[must_use]
    pub fn new(cfg: BranchConfig) -> BranchPredictor {
        BranchPredictor {
            cfg,
            gshare: vec![1; 1 << cfg.gshare_table_bits],
            bimodal: vec![1; 1 << cfg.bimodal_table_bits],
            chooser: vec![2; 1 << cfg.gshare_table_bits],
            ghr: 0,
            indirect: vec![None; cfg.indirect_entries],
            ras: ReturnStack::new(cfg.ras_entries),
            stats: BranchStats::default(),
        }
    }

    /// Accumulated accuracy statistics.
    #[must_use]
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Resets accuracy statistics (predictor state is kept — use after
    /// warmup).
    pub fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }

    fn gshare_index(&self, pc: Addr, ghr: u64) -> usize {
        let hist = ghr & ((1u64 << self.cfg.gshare_history_bits) - 1);
        (((pc >> 2) ^ hist) & ((1 << self.cfg.gshare_table_bits) - 1)) as usize
    }

    fn bimodal_index(&self, pc: Addr) -> usize {
        ((pc >> 2) & ((1 << self.cfg.bimodal_table_bits) - 1)) as usize
    }

    fn indirect_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) % self.indirect.len()
    }

    fn predict_direction(&self, pc: Addr, ghr: u64) -> bool {
        let g = self.gshare[self.gshare_index(pc, ghr)] >= 2;
        let b = self.bimodal[self.bimodal_index(pc)] >= 2;
        let use_gshare = self.chooser[self.gshare_index(pc, 0)] >= 2;
        if use_gshare {
            g
        } else {
            b
        }
    }

    fn predict_with(&self, pc: Addr, instr: &Instr, ghr: u64, ras_top: Option<Addr>) -> Prediction {
        let fallthrough = pc + INSTR_BYTES;
        match instr.branch_kind() {
            Some(BranchKind::Conditional) => {
                let taken = self.predict_direction(pc, ghr);
                let next = if taken {
                    instr.direct_target()
                } else {
                    Some(fallthrough)
                };
                Prediction {
                    taken,
                    next_pc: next,
                }
            }
            Some(BranchKind::DirectJump | BranchKind::DirectCall) => Prediction {
                taken: true,
                next_pc: instr.direct_target(),
            },
            Some(BranchKind::Return) => Prediction {
                taken: true,
                next_pc: ras_top,
            },
            Some(BranchKind::Indirect | BranchKind::IndirectCall) => {
                let e = self.indirect[self.indirect_index(pc)];
                let target = e.and_then(|(tag, t)| (tag == pc).then_some(t));
                Prediction {
                    taken: true,
                    next_pc: target,
                }
            }
            None => Prediction {
                taken: false,
                next_pc: Some(fallthrough),
            },
        }
    }

    /// Predicts the branch at `pc` using committed state, without updating.
    #[must_use]
    pub fn predict(&self, pc: Addr, instr: &Instr) -> Prediction {
        self.predict_with(pc, instr, self.ghr, self.ras.peek())
    }

    /// Observes one dynamic branch **in program order**: predicts, compares
    /// against the actual outcome, updates all state, and reports where the
    /// wrong path would have started.
    ///
    /// This is the single mutation point of the predictor; calling it with
    /// the same sequence on two instances keeps them bit-identical — the
    /// property the wrong-path-emulation replica relies on.
    pub fn observe(
        &mut self,
        pc: Addr,
        instr: &Instr,
        actual_taken: bool,
        actual_next_pc: Addr,
    ) -> BranchResolution {
        let prediction = self.predict(pc, instr);
        let mispredicted = prediction.mispredicts(actual_next_pc);
        let fallthrough = pc + INSTR_BYTES;

        match instr.branch_kind() {
            Some(BranchKind::Conditional) => {
                self.stats.cond_branches += 1;
                if mispredicted {
                    self.stats.cond_mispredicts += 1;
                }
                let gi = self.gshare_index(pc, self.ghr);
                let bi = self.bimodal_index(pc);
                let g_correct = (self.gshare[gi] >= 2) == actual_taken;
                let b_correct = (self.bimodal[bi] >= 2) == actual_taken;
                let ci = self.gshare_index(pc, 0);
                if g_correct != b_correct {
                    counter_update(&mut self.chooser[ci], g_correct);
                }
                counter_update(&mut self.gshare[gi], actual_taken);
                counter_update(&mut self.bimodal[bi], actual_taken);
                self.ghr = (self.ghr << 1) | u64::from(actual_taken);
            }
            Some(BranchKind::DirectJump) => {
                self.stats.direct_jumps += 1;
            }
            Some(BranchKind::DirectCall) => {
                self.stats.direct_jumps += 1;
                self.ras.push(fallthrough);
            }
            Some(BranchKind::Return) => {
                self.stats.returns += 1;
                if mispredicted {
                    self.stats.return_mispredicts += 1;
                }
                let _ = self.ras.pop();
            }
            Some(BranchKind::Indirect) => {
                self.stats.indirect_branches += 1;
                if mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
                let idx = self.indirect_index(pc);
                self.indirect[idx] = Some((pc, actual_next_pc));
            }
            Some(BranchKind::IndirectCall) => {
                self.stats.indirect_branches += 1;
                if mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
                let idx = self.indirect_index(pc);
                self.indirect[idx] = Some((pc, actual_next_pc));
                self.ras.push(fallthrough);
            }
            None => {}
        }

        let wrong_path_start = if mispredicted {
            match prediction.next_pc {
                // Predicted path differs from actual: the wrong path is the
                // predicted one.
                Some(p) if p != actual_next_pc => Some(p),
                _ => {
                    // Unpredictable (no target): conditional branches never
                    // land here; for indirect/returns there is no wrong
                    // path to follow.
                    let _ = actual_taken;
                    None
                }
            }
        } else {
            None
        };

        BranchResolution {
            prediction,
            mispredicted,
            wrong_path_start,
        }
    }

    /// Captures the speculative fetch state (global history + RAS copy)
    /// from which wrong-path predictions evolve.
    #[must_use]
    pub fn speculative_state(&self) -> SpeculativeState {
        SpeculativeState {
            ghr: self.ghr,
            ras: self.ras.clone(),
        }
    }

    /// Predicts a wrong-path branch at `pc`, reading committed tables and
    /// advancing `state` speculatively (history shift, RAS push/pop).
    /// Never mutates the predictor itself.
    pub fn predict_speculative(
        &self,
        pc: Addr,
        instr: &Instr,
        state: &mut SpeculativeState,
    ) -> Prediction {
        let p = self.predict_with(pc, instr, state.ghr, state.ras.peek());
        match instr.branch_kind() {
            Some(BranchKind::Conditional) => {
                state.ghr = (state.ghr << 1) | u64::from(p.taken);
            }
            Some(BranchKind::DirectCall | BranchKind::IndirectCall) => {
                state.ras.push(pc + INSTR_BYTES);
            }
            Some(BranchKind::Return) => {
                let _ = state.ras.pop();
            }
            _ => {}
        }
        p
    }

    /// Starts a wrong-path prediction view: reads committed tables, with
    /// scratch global history and a scratch copy of the RAS. Used to steer
    /// branch directions while reconstructing or emulating a wrong path.
    #[must_use]
    pub fn wrong_path_view(&self) -> WrongPathPredictor<'_> {
        WrongPathPredictor {
            parent: self,
            state: self.speculative_state(),
        }
    }
}

/// Ownable speculative fetch state for wrong-path prediction (global
/// history and a scratch return-address stack). Pair with
/// [`BranchPredictor::predict_speculative`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpeculativeState {
    ghr: u64,
    ras: ReturnStack,
}

/// Speculative predictor view for steering wrong-path fetch.
///
/// Direction/target tables are read from the parent (never written);
/// global history and the return-address stack evolve locally so
/// consecutive wrong-path branches see self-consistent speculative state.
#[derive(Clone, Debug)]
pub struct WrongPathPredictor<'a> {
    parent: &'a BranchPredictor,
    state: SpeculativeState,
}

impl WrongPathPredictor<'_> {
    /// Predicts the wrong-path branch at `pc` and speculatively advances
    /// the local history/RAS.
    pub fn predict(&mut self, pc: Addr, instr: &Instr) -> Prediction {
        self.parent.predict_speculative(pc, instr, &mut self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{BranchCond, Reg};

    fn cfg() -> BranchConfig {
        BranchConfig {
            gshare_history_bits: 8,
            gshare_table_bits: 10,
            bimodal_table_bits: 10,
            indirect_entries: 16,
            ras_entries: 4,
        }
    }

    fn cond(target: Addr) -> Instr {
        Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target,
        }
    }

    #[test]
    fn ras_push_pop_lifo() {
        let mut r = ReturnStack::new(3);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.peek(), Some(3));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut r = ReturnStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn trains_on_biased_branch() {
        let mut bp = BranchPredictor::new(cfg());
        let b = cond(0x100);
        let mut wrong = 0;
        for _ in 0..200 {
            let r = bp.observe(0x2000, &b, true, 0x100);
            if r.mispredicted {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "biased branch should train fast, got {wrong}");
        assert_eq!(bp.stats().cond_branches, 200);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut bp = BranchPredictor::new(cfg());
        let b = cond(0x100);
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let next = if taken { 0x100 } else { 0x2004 };
            let r = bp.observe(0x2000, &b, taken, next);
            if i >= 100 && r.mispredicted {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late <= 5,
            "gshare should capture a T/N/T/N pattern, got {wrong_late} late mispredicts"
        );
    }

    #[test]
    fn wrong_path_start_is_the_other_direction() {
        let mut bp = BranchPredictor::new(cfg());
        let b = cond(0x100);
        // Train taken.
        for _ in 0..50 {
            let _ = bp.observe(0x2000, &b, true, 0x100);
        }
        // Now the actual outcome is not-taken → prediction (taken, 0x100)
        // is wrong; wrong path starts at the predicted target.
        let r = bp.observe(0x2000, &b, false, 0x2004);
        assert!(r.mispredicted);
        assert_eq!(r.wrong_path_start, Some(0x100));
        // Re-train not-taken until prediction flips...
        for _ in 0..10 {
            let _ = bp.observe(0x2000, &b, false, 0x2004);
        }
        // ...then a taken outcome makes the wrong path the fall-through.
        let r = bp.observe(0x2000, &b, true, 0x100);
        assert!(r.mispredicted);
        assert_eq!(r.wrong_path_start, Some(0x2004));
    }

    #[test]
    fn direct_jumps_never_mispredict() {
        let mut bp = BranchPredictor::new(cfg());
        let j = Instr::Jal {
            rd: Reg::ZERO,
            target: 0x500,
        };
        let r = bp.observe(0x2000, &j, true, 0x500);
        assert!(!r.mispredicted);
        assert_eq!(bp.stats().direct_jumps, 1);
    }

    #[test]
    fn call_return_pairs_predict_via_ras() {
        let mut bp = BranchPredictor::new(cfg());
        let call = Instr::Jal {
            rd: Reg::RA,
            target: 0x500,
        };
        let ret = Instr::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            offset: 0,
        };
        let r = bp.observe(0x2000, &call, true, 0x500);
        assert!(!r.mispredicted);
        let r = bp.observe(0x500, &ret, true, 0x2004);
        assert!(!r.mispredicted, "return predicted from RAS");
        // Empty RAS → unpredictable return, no wrong-path target.
        let r = bp.observe(0x500, &ret, true, 0x2004);
        assert!(r.mispredicted);
        assert_eq!(r.wrong_path_start, None);
    }

    #[test]
    fn indirect_learns_last_target() {
        let mut bp = BranchPredictor::new(cfg());
        let jr = Instr::Jalr {
            rd: Reg::ZERO,
            base: Reg::new(5),
            offset: 0,
        };
        let r = bp.observe(0x2000, &jr, true, 0x700);
        assert!(r.mispredicted, "cold indirect mispredicts");
        assert_eq!(r.wrong_path_start, None, "no target to follow");
        let r = bp.observe(0x2000, &jr, true, 0x700);
        assert!(!r.mispredicted, "repeated target predicted");
        let r = bp.observe(0x2000, &jr, true, 0x900);
        assert!(r.mispredicted, "target change mispredicts");
        assert_eq!(
            r.wrong_path_start,
            Some(0x700),
            "wrong path follows stale predicted target"
        );
    }

    #[test]
    fn two_instances_stay_bit_identical() {
        let mut a = BranchPredictor::new(cfg());
        let mut b = BranchPredictor::new(cfg());
        let branch = cond(0x100);
        // A pseudo-random but deterministic outcome sequence.
        let mut x = 12345u64;
        for i in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = x & 4 != 0;
            let pc = 0x2000 + (i % 7) * 4;
            let next = if taken { 0x100 } else { pc + 4 };
            let ra = a.observe(pc, &branch, taken, next);
            let rb = b.observe(pc, &branch, taken, next);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn wrong_path_view_does_not_mutate_parent() {
        let mut bp = BranchPredictor::new(cfg());
        let b = cond(0x100);
        for _ in 0..20 {
            let _ = bp.observe(0x2000, &b, true, 0x100);
        }
        let stats_before = bp.stats();
        let snapshot = bp.clone();
        {
            let mut view = bp.wrong_path_view();
            for pc in [0x3000u64, 0x3004, 0x3008] {
                let _ = view.predict(pc, &b);
            }
            let call = Instr::Jal {
                rd: Reg::RA,
                target: 0x500,
            };
            let _ = view.predict(0x300c, &call);
        }
        assert_eq!(bp.stats(), stats_before);
        assert_eq!(bp.predict(0x2000, &b), snapshot.predict(0x2000, &b));
    }

    #[test]
    fn wrong_path_view_speculative_ras_is_consistent() {
        let mut bp = BranchPredictor::new(cfg());
        let call = Instr::Jal {
            rd: Reg::RA,
            target: 0x500,
        };
        let ret = Instr::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            offset: 0,
        };
        let _ = bp.observe(0x2000, &call, true, 0x500);
        let mut view = bp.wrong_path_view();
        // Wrong path calls then returns: the speculative RAS should nest.
        let _ = view.predict(0x3000, &call); // pushes 0x3004
        let p = view.predict(0x500, &ret);
        assert_eq!(p.next_pc, Some(0x3004));
        let p = view.predict(0x500, &ret);
        assert_eq!(p.next_pc, Some(0x2004), "outer frame from committed RAS");
    }
}
