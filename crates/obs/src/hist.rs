//! Log2-bucketed histograms for long-tailed simulator quantities
//! (wrong-path episode lengths, convergence distances, stall runs).
//!
//! Values are `u64` counters bucketed by their bit length: bucket 0 holds
//! exactly the value 0 and bucket `b >= 1` holds `[2^(b-1), 2^b)`. The
//! representation is fixed-size and mergeable, so per-worker histograms
//! combine into campaign-wide ones without rescaling, and everything is
//! integer arithmetic — deterministic across platforms.

use crate::json::Value;

/// Number of buckets: one for zero plus one per possible bit length.
pub const NUM_BUCKETS: usize = 65;

/// A mergeable log2 histogram over `u64` samples.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Log2Hist {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Log2Hist {
        Log2Hist {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index of a value: 0 for 0, else its bit length.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `[lo, hi]` value range of a bucket index.
#[must_use]
pub fn bucket_range(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), (1 << b) - 1),
    }
}

impl Log2Hist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Log2Hist {
        Log2Hist::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one. Merging per-run histograms
    /// yields exactly the histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (0 < p <= 100), resolved to the upper edge of
    /// the bucket holding the rank-`ceil(p/100 * count)` sample, clamped to
    /// the observed `[min, max]`. Returns `None` when empty.
    ///
    /// The result is an upper bound on the true percentile with at most
    /// one-bucket (2x) resolution error — the standard trade-off of log2
    /// histograms.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // ceil without floats: rank in [1, count].
        let rank = ((self.count as f64 * p / 100.0).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The bucket is non-empty, so its samples lie in
                // [max(lo, self.min), min(hi, self.max)].
                let (_, hi) = bucket_range(b);
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median ([`percentile`](Log2Hist::percentile) at 50).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// 90th percentile ([`percentile`](Log2Hist::percentile) at 90).
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.percentile(90.0)
    }

    /// 99th percentile ([`percentile`](Log2Hist::percentile) at 99).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, hi) = bucket_range(b);
                (lo, hi, c)
            })
    }

    /// Deterministic JSON form: summary statistics plus the non-empty
    /// buckets (`[lo, hi, count]` triples).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        Value::Obj(vec![
            ("count".into(), int(self.count)),
            ("sum".into(), int(self.sum)),
            ("min".into(), int(self.min().unwrap_or(0))),
            ("max".into(), int(self.max().unwrap_or(0))),
            (
                "buckets".into(),
                Value::Arr(
                    self.buckets()
                        .map(|(lo, hi, c)| Value::Arr(vec![int(lo), int(hi), int(c)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// A compact one-line text rendering (for stderr diagnostics):
    /// `count=N mean=M p50=X p90=Y p99=Z max=W`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "count=0".to_string();
        }
        format!(
            "count={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0).unwrap_or(0),
            self.percentile(90.0).unwrap_or(0),
            self.percentile(99.0).unwrap_or(0),
            self.max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_range(b);
            assert_eq!(bucket_index(lo), b);
            assert_eq!(bucket_index(hi), b);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Log2Hist::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_bucket_upper_edges_clamped_to_observed_range() {
        let mut h = Log2Hist::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(1000); // bucket [512, 1023]
                        // p50 and p90 land in the [8, 15] bucket.
        assert_eq!(h.percentile(50.0), Some(15));
        assert_eq!(h.percentile(90.0), Some(15));
        // p100 lands in the tail bucket, clamped to the observed max.
        assert_eq!(h.percentile(100.0), Some(1000));
        // Degenerate single-value histogram: every percentile is the value.
        let mut one = Log2Hist::new();
        one.record(100);
        assert_eq!(one.percentile(1.0), Some(100));
        assert_eq!(one.percentile(99.0), Some(100));
        assert_eq!(Log2Hist::new().percentile(50.0), None);
    }

    #[test]
    fn percentile_helpers_match_known_answers() {
        // 90 samples of 10 ([8,15]), 9 of 100 ([64,127]), 1 of 5000
        // ([4096,8191], clamped to the observed max).
        let mut h = Log2Hist::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(5000);
        assert_eq!(h.p50(), h.percentile(50.0));
        assert_eq!(h.p50(), Some(15));
        assert_eq!(h.p90(), Some(15)); // rank 90 is the last of the 10s
        assert_eq!(h.p99(), Some(127)); // rank 99 is the last of the 100s
        assert_eq!(h.percentile(100.0), Some(5000));
        let empty = Log2Hist::new();
        assert_eq!(empty.p50(), None);
        assert_eq!(empty.p90(), None);
        assert_eq!(empty.p99(), None);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        let mut all = Log2Hist::new();
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 7, 4096] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram is the identity.
        let before = a;
        a.merge(&Log2Hist::new());
        assert_eq!(a, before);
    }

    #[test]
    fn json_export_round_trips_through_parser() {
        let mut h = Log2Hist::new();
        for v in [3u64, 3, 3, 70] {
            h.record(v);
        }
        let text = h.to_value().to_json();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(doc.get("count").and_then(Value::as_int), Some(4));
        assert_eq!(doc.get("sum").and_then(Value::as_int), Some(79));
        let buckets = doc.get("buckets").and_then(Value::as_arr).unwrap();
        assert_eq!(buckets.len(), 2, "two non-empty buckets");
    }

    #[test]
    fn summary_line_is_stable() {
        let mut h = Log2Hist::new();
        h.record(8);
        h.record(8);
        assert_eq!(h.summary(), "count=2 mean=8.0 p50=8 p90=8 p99=8 max=8");
        assert_eq!(Log2Hist::new().summary(), "count=0");
    }
}
