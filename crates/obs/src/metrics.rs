//! A unified registry of named counters, gauges and [`Log2Hist`]s.
//!
//! The registry follows the same observer-effect discipline as
//! [`EventRing`](crate::trace::EventRing): a disabled registry costs a
//! single predictable branch per update, and the closure-based variants
//! ([`inc_with`](MetricsRegistry::inc_with),
//! [`observe_with`](MetricsRegistry::observe_with)) skip the value
//! computation entirely when disabled.
//!
//! Metric handles ([`CounterId`], [`GaugeId`], [`HistId`]) are plain
//! indices obtained at registration time, so hot-path updates never hash
//! or compare names. Registration is get-or-register per kind; reusing a
//! name across kinds is a [`MetricsError::KindMismatch`].
//!
//! Snapshots come out two ways, both deterministic:
//! [`render_prometheus`](MetricsRegistry::render_prometheus) for the
//! Prometheus text exposition, and
//! [`to_value`](MetricsRegistry::to_value) for the integer-only JSON
//! dialect in [`crate::json`].

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::hist::Log2Hist;
use crate::json::Value;

/// Handle to a registered counter (monotonically increasing `u64`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterId(usize);

/// Handle to a registered gauge (a settable `i64`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GaugeId(usize);

/// Handle to a registered histogram ([`Log2Hist`] of `u64` samples).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistId(usize);

/// The kind of a registered metric.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Log2 histogram of samples.
    Hist,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Hist => "histogram",
        }
    }
}

/// Registration failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MetricsError {
    /// The name is not a valid metric name
    /// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    InvalidName(String),
    /// The name is already registered under a different kind.
    KindMismatch {
        /// The offending metric name.
        name: String,
        /// The kind it is already registered as.
        registered: MetricKind,
        /// The kind the caller asked for.
        requested: MetricKind,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::InvalidName(name) => {
                write!(
                    f,
                    "invalid metric name {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
                )
            }
            MetricsError::KindMismatch {
                name,
                registered,
                requested,
            } => write!(
                f,
                "metric {name:?} already registered as a {}, requested as a {}",
                registered.as_str(),
                requested.as_str()
            ),
        }
    }
}

impl std::error::Error for MetricsError {}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A unified registry of named counters, gauges and histograms with a
/// zero-cost disabled fast path.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    hists: Vec<(String, Log2Hist)>,
    index: BTreeMap<String, (MetricKind, usize)>,
}

impl MetricsRegistry {
    /// A disabled registry: registrations succeed (handles stay valid if
    /// the registry is later swapped for an enabled one built the same
    /// way), but every update is a no-op behind one branch.
    #[must_use]
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// An enabled registry.
    #[must_use]
    pub fn enabled() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// Whether updates are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn register(
        &mut self,
        name: &str,
        kind: MetricKind,
        len: usize,
    ) -> Result<Option<usize>, MetricsError> {
        if let Some(&(registered, slot)) = self.index.get(name) {
            if registered == kind {
                return Ok(Some(slot));
            }
            return Err(MetricsError::KindMismatch {
                name: name.to_string(),
                registered,
                requested: kind,
            });
        }
        if !valid_name(name) {
            return Err(MetricsError::InvalidName(name.to_string()));
        }
        self.index.insert(name.to_string(), (kind, len));
        Ok(None)
    }

    /// Registers (or finds) a counter by name.
    ///
    /// # Errors
    ///
    /// [`MetricsError::InvalidName`] for malformed names and
    /// [`MetricsError::KindMismatch`] when the name is taken by a gauge
    /// or histogram.
    pub fn counter(&mut self, name: &str) -> Result<CounterId, MetricsError> {
        if let Some(slot) = self.register(name, MetricKind::Counter, self.counters.len())? {
            return Ok(CounterId(slot));
        }
        self.counters.push((name.to_string(), 0));
        Ok(CounterId(self.counters.len() - 1))
    }

    /// Registers (or finds) a gauge by name.
    ///
    /// # Errors
    ///
    /// Same contract as [`counter`](MetricsRegistry::counter).
    pub fn gauge(&mut self, name: &str) -> Result<GaugeId, MetricsError> {
        if let Some(slot) = self.register(name, MetricKind::Gauge, self.gauges.len())? {
            return Ok(GaugeId(slot));
        }
        self.gauges.push((name.to_string(), 0));
        Ok(GaugeId(self.gauges.len() - 1))
    }

    /// Registers (or finds) a histogram by name.
    ///
    /// # Errors
    ///
    /// Same contract as [`counter`](MetricsRegistry::counter).
    pub fn hist(&mut self, name: &str) -> Result<HistId, MetricsError> {
        if let Some(slot) = self.register(name, MetricKind::Hist, self.hists.len())? {
            return Ok(HistId(slot));
        }
        self.hists.push((name.to_string(), Log2Hist::new()));
        Ok(HistId(self.hists.len() - 1))
    }

    /// Adds `delta` to a counter. One branch when disabled.
    #[inline]
    pub fn inc(&mut self, id: CounterId, delta: u64) {
        if !self.enabled {
            return;
        }
        self.bump(id, delta);
    }

    /// Adds a lazily computed delta to a counter: the closure runs only
    /// when the registry is enabled.
    #[inline]
    pub fn inc_with(&mut self, id: CounterId, make: impl FnOnce() -> u64) {
        if !self.enabled {
            return;
        }
        self.bump(id, make());
    }

    #[cold]
    fn bump(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 = self.counters[id.0].1.saturating_add(delta);
    }

    /// Sets a gauge. One branch when disabled.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: i64) {
        if !self.enabled {
            return;
        }
        self.store(id, value);
    }

    #[cold]
    fn store(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }

    /// Records a histogram sample. One branch when disabled.
    #[inline]
    pub fn observe(&mut self, id: HistId, value: u64) {
        if !self.enabled {
            return;
        }
        self.sample(id, value);
    }

    /// Records a lazily computed sample: the closure runs only when the
    /// registry is enabled.
    #[inline]
    pub fn observe_with(&mut self, id: HistId, make: impl FnOnce() -> u64) {
        if !self.enabled {
            return;
        }
        self.sample(id, make());
    }

    #[cold]
    fn sample(&mut self, id: HistId, value: u64) {
        self.hists[id.0].1.record(value);
    }

    /// Current counter value.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current gauge value.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].1
    }

    /// The histogram behind a handle.
    #[must_use]
    pub fn hist_value(&self, id: HistId) -> &Log2Hist {
        &self.hists[id.0].1
    }

    /// Looks a counter's value up by name (`None` when unregistered).
    #[must_use]
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        match self.index.get(name) {
            Some(&(MetricKind::Counter, slot)) => Some(self.counters[slot].1),
            _ => None,
        }
    }

    /// Folds another registry's state into this one: counters add,
    /// histograms merge, gauges take the other registry's value (a gauge
    /// is a point-in-time reading, so last write wins).
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            if let Ok(id) = self.counter(name) {
                self.counters[id.0].1 = self.counters[id.0].1.saturating_add(*v);
            }
        }
        for (name, v) in &other.gauges {
            if let Ok(id) = self.gauge(name) {
                self.gauges[id.0].1 = *v;
            }
        }
        for (name, h) in &other.hists {
            if let Ok(id) = self.hist(name) {
                self.hists[id.0].1.merge(h);
            }
        }
    }

    /// Prometheus text exposition (version 0.0.4): one `# TYPE` line per
    /// metric, names in sorted order, histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`. Fully
    /// deterministic for a given registry state.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, &(kind, slot)) in &self.index {
            let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
            match kind {
                MetricKind::Counter => {
                    let _ = writeln!(out, "{name} {}", self.counters[slot].1);
                }
                MetricKind::Gauge => {
                    let _ = writeln!(out, "{name} {}", self.gauges[slot].1);
                }
                MetricKind::Hist => {
                    let h = &self.hists[slot].1;
                    let mut cum = 0u64;
                    for (_, hi, c) in h.buckets() {
                        cum += c;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Deterministic JSON snapshot through [`crate::json`]: sorted
    /// `counters` / `gauges` objects and `hists` in their
    /// [`Log2Hist::to_value`] form.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, &(kind, slot)) in &self.index {
            match kind {
                MetricKind::Counter => counters.push((
                    name.clone(),
                    Value::Int(i64::try_from(self.counters[slot].1).unwrap_or(i64::MAX)),
                )),
                MetricKind::Gauge => gauges.push((name.clone(), Value::Int(self.gauges[slot].1))),
                MetricKind::Hist => hists.push((name.clone(), self.hists[slot].1.to_value())),
            }
        }
        Value::Obj(vec![
            ("counters".into(), Value::Obj(counters)),
            ("gauges".into(), Value::Obj(gauges)),
            ("hists".into(), Value::Obj(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = MetricsRegistry::disabled();
        let c = reg.counter("ffsim_steps_total").unwrap();
        let g = reg.gauge("ffsim_depth").unwrap();
        let h = reg.hist("ffsim_wait_ns").unwrap();
        reg.inc(c, 5);
        reg.inc_with(c, || panic!("closure must not run when disabled"));
        reg.set(g, 9);
        reg.observe(h, 100);
        reg.observe_with(h, || panic!("closure must not run when disabled"));
        assert_eq!(reg.counter_value(c), 0);
        assert_eq!(reg.gauge_value(g), 0);
        assert_eq!(reg.hist_value(h).count(), 0);
    }

    #[test]
    fn enabled_registry_records_and_reads_back() {
        let mut reg = MetricsRegistry::enabled();
        let c = reg.counter("c_total").unwrap();
        let g = reg.gauge("g").unwrap();
        let h = reg.hist("h_ns").unwrap();
        reg.inc(c, 2);
        reg.inc_with(c, || 3);
        reg.set(g, -7);
        reg.observe(h, 10);
        reg.observe_with(h, || 1000);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.counter_by_name("c_total"), Some(5));
        assert_eq!(reg.gauge_value(g), -7);
        assert_eq!(reg.hist_value(h).count(), 2);
        assert_eq!(reg.hist_value(h).sum(), 1010);
    }

    #[test]
    fn registration_is_get_or_register_per_kind() {
        let mut reg = MetricsRegistry::enabled();
        let a = reg.counter("dup").unwrap();
        let b = reg.counter("dup").unwrap();
        assert_eq!(a, b);
        reg.inc(a, 1);
        reg.inc(b, 1);
        assert_eq!(reg.counter_value(a), 2);
    }

    #[test]
    fn kind_collisions_are_errors() {
        let mut reg = MetricsRegistry::enabled();
        reg.counter("name").unwrap();
        let err = reg.gauge("name").unwrap_err();
        assert_eq!(
            err,
            MetricsError::KindMismatch {
                name: "name".into(),
                registered: MetricKind::Counter,
                requested: MetricKind::Gauge,
            }
        );
        let err = reg.hist("name").unwrap_err();
        assert!(matches!(err, MetricsError::KindMismatch { .. }));
        assert!(err.to_string().contains("already registered as a counter"));
    }

    #[test]
    fn invalid_names_are_rejected() {
        let mut reg = MetricsRegistry::enabled();
        for bad in ["", "9lead", "has space", "dash-ed", "unicodé"] {
            assert_eq!(
                reg.counter(bad).unwrap_err(),
                MetricsError::InvalidName(bad.into()),
                "{bad:?} should be rejected"
            );
        }
        for good in ["a", "_x", ":ns", "ffsim_queue_depth", "A9_z:"] {
            assert!(reg.counter(good).is_ok(), "{good:?} should be accepted");
        }
    }

    #[test]
    fn prometheus_exposition_format() {
        let mut reg = MetricsRegistry::enabled();
        let c = reg.counter("zz_total").unwrap();
        let g = reg.gauge("aa_depth").unwrap();
        let h = reg.hist("mm_ns").unwrap();
        reg.inc(c, 3);
        reg.set(g, 4);
        reg.observe(h, 1); // bucket [1,1]
        reg.observe(h, 10); // bucket [8,15]
        reg.observe(h, 12); // bucket [8,15]
        let text = reg.render_prometheus();
        // Sorted by name: aa_depth, mm_ns, zz_total.
        let expected = "\
# TYPE aa_depth gauge
aa_depth 4
# TYPE mm_ns histogram
mm_ns_bucket{le=\"1\"} 1
mm_ns_bucket{le=\"15\"} 3
mm_ns_bucket{le=\"+Inf\"} 3
mm_ns_sum 23
mm_ns_count 3
# TYPE zz_total counter
zz_total 3
";
        assert_eq!(text, expected);
        // Deterministic.
        assert_eq!(text, reg.render_prometheus());
    }

    #[test]
    fn json_snapshot_parses_and_is_sorted() {
        let mut reg = MetricsRegistry::enabled();
        let b = reg.counter("b_total").unwrap();
        reg.counter("a_total").unwrap();
        reg.inc(b, 7);
        let doc = crate::json::parse(&reg.to_value().to_json()).unwrap();
        let counters = doc.get("counters").unwrap();
        assert_eq!(counters.get("b_total").and_then(Value::as_int), Some(7));
        assert_eq!(counters.get("a_total").and_then(Value::as_int), Some(0));
        match counters {
            Value::Obj(members) => {
                assert_eq!(members[0].0, "a_total", "keys sorted");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn absorb_merges_counters_and_hists() {
        let mut a = MetricsRegistry::enabled();
        let mut b = MetricsRegistry::enabled();
        let ca = a.counter("n_total").unwrap();
        let cb = b.counter("n_total").unwrap();
        let hb = b.hist("h_ns").unwrap();
        let gb = b.gauge("depth").unwrap();
        a.inc(ca, 1);
        b.inc(cb, 2);
        b.observe(hb, 8);
        b.set(gb, 5);
        a.absorb(&b);
        assert_eq!(a.counter_by_name("n_total"), Some(3));
        let h = a.hist("h_ns").unwrap();
        assert_eq!(a.hist_value(h).count(), 1);
        let g = a.gauge("depth").unwrap();
        assert_eq!(a.gauge_value(g), 5);
    }
}
