//! Minimal JSON reading and writing for campaign manifests and
//! observability exports (Chrome traces, histograms, CPI stacks).
//!
//! The build environment has no crates.io access, so this module provides
//! exactly the JSON surface those artifacts need: objects with ordered
//! keys, arrays, strings, integers, booleans and null. Serialization is
//! fully deterministic (insertion order, fixed two-space indentation),
//! which the campaign driver relies on for byte-identical manifests
//! across runs and worker counts.

use std::fmt::Write as _;

/// A JSON value. Numbers are integers only — the manifest stores counters
/// and identifiers, never floats, so there is no precision footgun.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the manifest never needs floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with deterministic two-space indentation and a trailing
    /// newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the first syntax
/// error (the manifest is machine-written, so errors indicate corruption).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
                return Err(format!(
                    "float at byte {start}: manifest values are integers"
                ));
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer at byte {start}: {e}"))
        }
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so slicing
                // on char boundaries is safe via the chars iterator).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = Value::Obj(vec![
            ("id".into(), Value::Str("bfs/conv \"x\"\n".into())),
            ("n".into(), Value::Int(-42)),
            (
                "arr".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null, Value::Int(7)]),
            ),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn serialization_is_stable() {
        let v = Value::Obj(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.to_json(), v.to_json());
        assert_eq!(v.to_json(), "{\n  \"a\": 1\n}\n");
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn getters() {
        let v = parse("{\"s\": \"x\", \"i\": 3, \"a\": [1]}").unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("i").and_then(Value::as_int), Some(3));
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }
}
