//! CPI (cycles-per-instruction) stack accounting.
//!
//! A CPI stack attributes every simulated cycle to the microarchitectural
//! reason the pipeline could not retire faster: base issue, frontend
//! misprediction recovery, wrong-path fetch interference, the memory level
//! that bounded a dependence chain, or a full window resource. Because
//! attribution telescopes over retire gaps, the components sum *exactly*
//! to the simulated cycle count — an invariant the test suite asserts —
//! so IPC differences between wrong-path techniques can be decomposed into
//! which stall class moved.
//!
//! Cycles are accounted separately per path lane (correct vs. wrong), so
//! wrong-path fetch pollution is visible as its own slice.

use crate::json::Value;

/// The stall class a cycle is attributed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallClass {
    /// Useful issue/retire bandwidth (the "base" CPI component).
    Base,
    /// Recovery after a branch misprediction (redirect + refill).
    FrontendMispredict,
    /// Fetch bandwidth and cache pressure consumed by wrong-path fetch.
    WrongPathFetch,
    /// Dependence chain bounded by an L1 data access.
    L1Bound,
    /// Dependence chain bounded by an L2 access.
    L2Bound,
    /// Dependence chain bounded by a last-level-cache access.
    LlcBound,
    /// Dependence chain bounded by a DRAM access.
    DramBound,
    /// Reorder buffer full.
    RobFull,
    /// Issue queue full.
    IqFull,
    /// Load/store queue full.
    LsqFull,
}

/// All stall classes, in the canonical reporting order.
pub const ALL_CLASSES: [StallClass; 10] = [
    StallClass::Base,
    StallClass::FrontendMispredict,
    StallClass::WrongPathFetch,
    StallClass::L1Bound,
    StallClass::L2Bound,
    StallClass::LlcBound,
    StallClass::DramBound,
    StallClass::RobFull,
    StallClass::IqFull,
    StallClass::LsqFull,
];

impl StallClass {
    /// Stable snake_case label used in JSON exports and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallClass::Base => "base",
            StallClass::FrontendMispredict => "frontend_mispredict",
            StallClass::WrongPathFetch => "wrong_path_fetch",
            StallClass::L1Bound => "l1_bound",
            StallClass::L2Bound => "l2_bound",
            StallClass::LlcBound => "llc_bound",
            StallClass::DramBound => "dram_bound",
            StallClass::RobFull => "rob_full",
            StallClass::IqFull => "iq_full",
            StallClass::LsqFull => "lsq_full",
        }
    }

    fn index(self) -> usize {
        match self {
            StallClass::Base => 0,
            StallClass::FrontendMispredict => 1,
            StallClass::WrongPathFetch => 2,
            StallClass::L1Bound => 3,
            StallClass::L2Bound => 4,
            StallClass::LlcBound => 5,
            StallClass::DramBound => 6,
            StallClass::RobFull => 7,
            StallClass::IqFull => 8,
            StallClass::LsqFull => 9,
        }
    }

    /// Parses the stable snake_case label back into a class (the inverse
    /// of [`StallClass::label`]); `None` for unknown labels.
    #[must_use]
    pub fn from_label(label: &str) -> Option<StallClass> {
        ALL_CLASSES.iter().copied().find(|c| c.label() == label)
    }

    /// Whether this class attributes cycles to a memory level.
    #[must_use]
    pub fn is_memory_bound(self) -> bool {
        matches!(
            self,
            StallClass::L1Bound
                | StallClass::L2Bound
                | StallClass::LlcBound
                | StallClass::DramBound
        )
    }
}

/// Per-class, per-lane cycle accumulator. Lane 0 is the correct path,
/// lane 1 the wrong path (cycles the wrong path stole from fetch).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CpiStack {
    cycles: [[u64; 2]; 10],
}

impl CpiStack {
    /// An empty stack.
    #[must_use]
    pub fn new() -> CpiStack {
        CpiStack::default()
    }

    /// Adds `n` cycles to `class` on the given lane.
    #[inline]
    pub fn add(&mut self, class: StallClass, wrong_path: bool, n: u64) {
        self.cycles[class.index()][usize::from(wrong_path)] += n;
    }

    /// Cycles attributed to `class`, both lanes combined.
    #[must_use]
    pub fn get(&self, class: StallClass) -> u64 {
        let [c, w] = self.cycles[class.index()];
        c + w
    }

    /// Cycles attributed to `class` on one lane.
    #[must_use]
    pub fn get_lane(&self, class: StallClass, wrong_path: bool) -> u64 {
        self.cycles[class.index()][usize::from(wrong_path)]
    }

    /// Total cycles across all classes and lanes. When attribution is
    /// complete this equals the simulated cycle count.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cycles.iter().map(|[c, w]| c + w).sum()
    }

    /// Total cycles on the wrong-path lane.
    #[must_use]
    pub fn total_wrong(&self) -> u64 {
        self.cycles.iter().map(|[_, w]| w).sum()
    }

    /// Resets the stack to empty.
    pub fn reset(&mut self) {
        *self = CpiStack::default();
    }

    /// Folds another stack into this one (campaign-level aggregation).
    pub fn merge(&mut self, other: &CpiStack) {
        for (mine, theirs) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            mine[0] += theirs[0];
            mine[1] += theirs[1];
        }
    }

    /// Non-zero components as `(class, correct_cycles, wrong_cycles)`, in
    /// canonical order.
    pub fn components(&self) -> impl Iterator<Item = (StallClass, u64, u64)> + '_ {
        ALL_CLASSES
            .iter()
            .map(|&class| {
                let [c, w] = self.cycles[class.index()];
                (class, c, w)
            })
            .filter(|&(_, c, w)| c > 0 || w > 0)
    }

    /// Deterministic JSON form: `{"total": N, "components": {label:
    /// [correct, wrong], ...}}`, non-zero components only.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        Value::Obj(vec![
            ("total".into(), int(self.total())),
            (
                "components".into(),
                Value::Obj(
                    self.components()
                        .map(|(class, c, w)| {
                            (class.label().to_string(), Value::Arr(vec![int(c), int(w)]))
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the [`CpiStack::to_value`] JSON form back into a stack.
    /// Unknown component labels and malformed lane arrays are ignored;
    /// the stored `total` is recomputed from the parsed components.
    #[must_use]
    pub fn from_value(v: &Value) -> Option<CpiStack> {
        let components = v.get("components")?;
        let Value::Obj(entries) = components else {
            return None;
        };
        let mut stack = CpiStack::new();
        for (label, lanes) in entries {
            let Some(class) = StallClass::from_label(label) else {
                continue;
            };
            let Some(arr) = lanes.as_arr() else { continue };
            let lane = |i: usize| arr.get(i).and_then(Value::as_int).unwrap_or(0).max(0) as u64;
            stack.add(class, false, lane(0));
            stack.add(class, true, lane(1));
        }
        Some(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_indices_are_distinct() {
        let mut labels = std::collections::BTreeSet::new();
        let mut stack = CpiStack::new();
        for (i, &class) in ALL_CLASSES.iter().enumerate() {
            assert!(labels.insert(class.label()));
            stack.add(class, false, (i as u64 + 1) * 10);
        }
        for (i, &class) in ALL_CLASSES.iter().enumerate() {
            assert_eq!(stack.get(class), (i as u64 + 1) * 10);
        }
    }

    #[test]
    fn lanes_and_totals() {
        let mut stack = CpiStack::new();
        stack.add(StallClass::Base, false, 100);
        stack.add(StallClass::WrongPathFetch, true, 30);
        stack.add(StallClass::DramBound, false, 70);
        assert_eq!(stack.total(), 200);
        assert_eq!(stack.total_wrong(), 30);
        assert_eq!(stack.get_lane(StallClass::WrongPathFetch, true), 30);
        assert_eq!(stack.get_lane(StallClass::WrongPathFetch, false), 0);
        assert!(StallClass::DramBound.is_memory_bound());
        assert!(!StallClass::RobFull.is_memory_bound());
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = CpiStack::new();
        a.add(StallClass::Base, false, 5);
        a.add(StallClass::L2Bound, false, 7);
        let mut b = CpiStack::new();
        b.add(StallClass::Base, false, 3);
        b.add(StallClass::WrongPathFetch, true, 2);
        a.merge(&b);
        assert_eq!(a.get(StallClass::Base), 8);
        assert_eq!(a.get(StallClass::L2Bound), 7);
        assert_eq!(a.get_lane(StallClass::WrongPathFetch, true), 2);
        assert_eq!(a.total(), 17);
        a.reset();
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn labels_roundtrip_through_from_label() {
        for &class in &ALL_CLASSES {
            assert_eq!(StallClass::from_label(class.label()), Some(class));
        }
        assert_eq!(StallClass::from_label("no_such_class"), None);
    }

    #[test]
    fn json_roundtrips_through_from_value() {
        let mut stack = CpiStack::new();
        stack.add(StallClass::Base, false, 90);
        stack.add(StallClass::WrongPathFetch, true, 12);
        stack.add(StallClass::DramBound, false, 7);
        let text = stack.to_value().to_json();
        let doc = crate::json::parse(&text).unwrap();
        let back = CpiStack::from_value(&doc).unwrap();
        assert_eq!(back, stack);
        assert!(CpiStack::from_value(&Value::Int(3)).is_none());
    }

    #[test]
    fn json_export_has_total_and_nonzero_components() {
        let mut stack = CpiStack::new();
        stack.add(StallClass::Base, false, 90);
        stack.add(StallClass::FrontendMispredict, false, 10);
        let text = stack.to_value().to_json();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(doc.get("total").and_then(Value::as_int), Some(100));
        let components = doc.get("components").unwrap();
        assert!(components.get("base").is_some());
        assert!(components.get("frontend_mispredict").is_some());
        assert!(
            components.get("dram_bound").is_none(),
            "zero components omitted"
        );
    }
}
