//! Typed pipeline/emulator event tracing.
//!
//! [`EventRing`] is a bounded ring buffer of [`TraceEvent`]s behind a
//! runtime-disabled fast path: when disabled (the default), recording is a
//! single predictable branch and the event constructor closure is never
//! called — zero events are allocated, zero formatting happens. The
//! enabled ring keeps the most recent `capacity` events and counts what it
//! dropped, so tracing a multi-million-instruction run is O(capacity)
//! memory.
//!
//! [`chrome_trace`] exports events in the Chrome `trace_event` JSON format
//! (load the file in `chrome://tracing` or <https://ui.perfetto.dev>).
//! Timing-model events use simulated cycles as timestamps. Frontend
//! (functional emulator) events are *recorded* with the emulated
//! instruction ordinal of their triggering branch, and the simulator
//! rebases them onto that branch's fetch cycle when it assembles the final
//! report — so the two tracks (`tid` 0 and 1) share one cycle axis in the
//! export.

use crate::json::Value;
use std::collections::VecDeque;

/// Which half of the decoupled simulator emitted an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceSource {
    /// The performance (timing) model; timestamps are simulated cycles.
    Timing,
    /// The functional frontend; timestamps are recorded as
    /// emulated-instruction ordinals (sequence numbers) and rebased onto
    /// the triggering branch's fetch cycle in the simulator's final
    /// report.
    Frontend,
}

impl TraceSource {
    /// The Chrome trace thread id used for this source's track.
    #[must_use]
    pub fn tid(self) -> i64 {
        match self {
            TraceSource::Timing => 0,
            TraceSource::Frontend => 1,
        }
    }
}

/// One typed simulator event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEventKind {
    /// A branch misprediction was detected at execution.
    MispredictDetect {
        /// The mispredicted branch's pc.
        pc: u64,
    },
    /// The mispredicted branch resolved (squash point).
    MispredictResolve {
        /// The mispredicted branch's pc.
        pc: u64,
    },
    /// Fetch was redirected to the correct path.
    FetchRedirect {
        /// The cycle fetch resumes at.
        resume_cycle: u64,
    },
    /// Wrong-path fetch/emulation began.
    WrongPathEnter {
        /// First wrong-path pc.
        pc: u64,
    },
    /// Wrong-path fetch/emulation ended.
    WrongPathExit {
        /// Wrong-path instructions produced this episode.
        instructions: u64,
    },
    /// The convergence scan found the wrong path rejoining the correct
    /// path (paper §III-C).
    ConvergenceHit {
        /// Instructions scanned before convergence.
        distance: u64,
    },
    /// Speculative work was squashed.
    Squash {
        /// Instructions squashed.
        instructions: u64,
    },
    /// The wrong-path watchdog cut off a runaway speculative path.
    WatchdogTrip {
        /// The pc at which the watchdog fired.
        pc: u64,
        /// The configured instruction limit.
        limit: u64,
    },
}

impl TraceEventKind {
    /// Short stable event name (Chrome trace `name` field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::MispredictDetect { .. } => "mispredict-detect",
            TraceEventKind::MispredictResolve { .. } => "mispredict-resolve",
            TraceEventKind::FetchRedirect { .. } => "fetch-redirect",
            TraceEventKind::WrongPathEnter { .. } => "wrong-path",
            TraceEventKind::WrongPathExit { .. } => "wrong-path",
            TraceEventKind::ConvergenceHit { .. } => "convergence-hit",
            TraceEventKind::Squash { .. } => "squash",
            TraceEventKind::WatchdogTrip { .. } => "watchdog-trip",
        }
    }

    /// Chrome trace phase: wrong-path entry/exit render as a `B`/`E`
    /// duration pair, everything else as an instant event (`i`).
    #[must_use]
    pub fn phase(self) -> &'static str {
        match self {
            TraceEventKind::WrongPathEnter { .. } => "B",
            TraceEventKind::WrongPathExit { .. } => "E",
            _ => "i",
        }
    }

    fn args(self) -> Vec<(String, Value)> {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        match self {
            TraceEventKind::MispredictDetect { pc } | TraceEventKind::MispredictResolve { pc } => {
                vec![("pc".into(), int(pc))]
            }
            TraceEventKind::FetchRedirect { resume_cycle } => {
                vec![("resume_cycle".into(), int(resume_cycle))]
            }
            TraceEventKind::WrongPathEnter { pc } => vec![("pc".into(), int(pc))],
            TraceEventKind::WrongPathExit { instructions }
            | TraceEventKind::Squash { instructions } => {
                vec![("instructions".into(), int(instructions))]
            }
            TraceEventKind::ConvergenceHit { distance } => {
                vec![("distance".into(), int(distance))]
            }
            TraceEventKind::WatchdogTrip { pc, limit } => {
                vec![("pc".into(), int(pc)), ("limit".into(), int(limit))]
            }
        }
    }
}

/// A timestamped event from one half of the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Timestamp in the source's timebase (cycles for
    /// [`TraceSource::Timing`]; for [`TraceSource::Frontend`] the
    /// instruction ordinal at recording time, rebased to the triggering
    /// branch's fetch cycle in the simulator's final report).
    pub ts: u64,
    /// Which simulator half emitted it.
    pub source: TraceSource,
    /// The typed payload.
    pub kind: TraceEventKind,
}

/// A bounded ring buffer of events with a disabled fast path.
#[derive(Clone, Debug, Default)]
pub struct EventRing {
    enabled: bool,
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl EventRing {
    /// A disabled ring: [`EventRing::record`] is a single branch, no
    /// allocation ever happens. This is the `Default`.
    #[must_use]
    pub fn disabled() -> EventRing {
        EventRing::default()
    }

    /// An enabled ring keeping the most recent `capacity` events
    /// (`capacity` 0 is coerced to 1).
    #[must_use]
    pub fn enabled(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            enabled: true,
            capacity,
            buf: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Whether events are being collected.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records the event built by `make` — but only when enabled; the
    /// closure is never called on the disabled path, so argument
    /// construction costs nothing when tracing is off.
    #[inline]
    pub fn record(&mut self, make: impl FnOnce() -> TraceEvent) {
        if !self.enabled {
            return;
        }
        self.push(make());
    }

    #[cold]
    fn push(&mut self, event: TraceEvent) {
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently buffered (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring into a `Vec` (oldest first), leaving it empty but
    /// still enabled.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

/// Exports events as a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and Perfetto.
///
/// Events keep their recorded order; the two [`TraceSource`] timebases map
/// to separate thread tracks. All values are integers, so the export is
/// byte-deterministic.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let entries = events
        .iter()
        .map(|e| {
            Value::Obj(vec![
                ("name".into(), Value::Str(e.kind.name().into())),
                ("ph".into(), Value::Str(e.kind.phase().into())),
                (
                    "ts".into(),
                    Value::Int(i64::try_from(e.ts).unwrap_or(i64::MAX)),
                ),
                ("pid".into(), Value::Int(0)),
                ("tid".into(), Value::Int(e.source.tid())),
                ("args".into(), Value::Obj(e.kind.args())),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(entries)),
        ("displayTimeUnit".into(), Value::Str("ns".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts,
            source: TraceSource::Timing,
            kind: TraceEventKind::Squash { instructions: ts },
        }
    }

    #[test]
    fn disabled_ring_never_calls_the_constructor() {
        let mut ring = EventRing::disabled();
        let mut called = false;
        ring.record(|| {
            called = true;
            ev(1)
        });
        assert!(!called, "disabled ring must not build events");
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let mut ring = EventRing::enabled(3);
        for i in 0..10u64 {
            ring.record(|| ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let ts: Vec<u64> = ring.events().map(|e| e.ts).collect();
        assert_eq!(ts, vec![7, 8, 9]);
        let taken = ring.take();
        assert_eq!(taken.len(), 3);
        assert!(ring.is_empty());
        assert!(ring.is_enabled(), "take() keeps the ring recording");
    }

    #[test]
    fn chrome_export_parses_back_with_expected_shape() {
        let events = vec![
            TraceEvent {
                ts: 100,
                source: TraceSource::Timing,
                kind: TraceEventKind::MispredictDetect { pc: 0x1008 },
            },
            TraceEvent {
                ts: 100,
                source: TraceSource::Timing,
                kind: TraceEventKind::WrongPathEnter { pc: 0x2000 },
            },
            TraceEvent {
                ts: 130,
                source: TraceSource::Timing,
                kind: TraceEventKind::WrongPathExit { instructions: 12 },
            },
            TraceEvent {
                ts: 7,
                source: TraceSource::Frontend,
                kind: TraceEventKind::WatchdogTrip {
                    pc: 0x3000,
                    limit: 64,
                },
            },
        ];
        let text = chrome_trace(&events).to_json();
        let doc = crate::json::parse(&text).unwrap();
        let entries = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert_eq!(entries.len(), 4);
        for entry in entries {
            assert!(entry.get("name").and_then(Value::as_str).is_some());
            assert!(entry.get("ph").and_then(Value::as_str).is_some());
            assert!(entry.get("ts").and_then(Value::as_int).is_some());
            assert_eq!(entry.get("pid").and_then(Value::as_int), Some(0));
            assert!(entry.get("tid").and_then(Value::as_int).is_some());
        }
        // The wrong-path episode renders as a B/E duration pair.
        assert_eq!(entries[1].get("ph").and_then(Value::as_str), Some("B"));
        assert_eq!(entries[2].get("ph").and_then(Value::as_str), Some("E"));
        // The frontend event sits on its own track.
        assert_eq!(entries[3].get("tid").and_then(Value::as_int), Some(1));
        assert_eq!(
            entries[3]
                .get("args")
                .and_then(|a| a.get("limit"))
                .and_then(Value::as_int),
            Some(64)
        );
    }
}
