//! Scoped host-side phase profiler with a fixed phase taxonomy.
//!
//! [`PhaseProfiler`] attributes monotonic host nanoseconds to simulator
//! phases so the attribution table can answer "where does the slowdown
//! go". Scopes nest: time spent in a child scope is charged to the child
//! only (self-time accounting), so summing every phase's total never
//! double-counts and the **telescoping invariant** holds — the sum of
//! attributed phase time must cover at least 95% of the run's wall time
//! (the remainder is loop glue outside any scope).
//!
//! The observer-effect discipline matches
//! [`EventRing`](crate::trace::EventRing): a disabled profiler costs one
//! predictable branch per scope boundary and never reads the clock, so a
//! `FFSIM_OBS`-off run is indistinguishable from an uninstrumented one.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Log2Hist;
use crate::json::Value;

/// Attributed phase time must cover at least this per-mille share of the
/// run's wall time (the telescoping invariant).
pub const TELESCOPE_FLOOR_PERMILLE: u64 = 950;

/// The fixed phase taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Functional emulator stepping (correct and wrong path) inside the
    /// frontend refill.
    EmuExec,
    /// Emulator→timing handoff: queue refill bookkeeping around the raw
    /// emulator steps (buffering, policy hooks, stream assembly).
    EmuHandoff,
    /// Basic-block decode on a block-cache miss during wrong-path
    /// emulation (nested inside [`Phase::EmuExec`]; a hot cache makes
    /// this phase vanish).
    BlockDecode,
    /// The timing pipeline proper, measured as the run loop's self time:
    /// retire accounting, predictor update, redirects, and the loop's own
    /// per-instruction bookkeeping (everything not nested in a fetch,
    /// emulator, or technique-hook scope).
    TimingPipeline,
    /// Wrong-path technique hooks (`on_instruction` / `on_mispredict` /
    /// `on_resolve`); rendered as `technique_hook:<label>` once a label
    /// is set.
    TechniqueHook,
    /// Frontend fetch: delivering the next entry to the timing loop
    /// (self time excludes the nested emulator phases).
    FrontendFetch,
    /// Driver result-cache lookups, verification and stores.
    CacheIo,
    /// Driver manifest / shard commit IO.
    ManifestIo,
    /// Driver queue journal appends, lease bookkeeping and compaction.
    QueueJournal,
    /// Campaign-server request handling: frame decode, queue mapping,
    /// and response encode for one wire request.
    ServeRequest,
}

/// Number of phases in the taxonomy.
pub const PHASE_COUNT: usize = 10;

impl Phase {
    /// Every phase, in rendering order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::EmuExec,
        Phase::EmuHandoff,
        Phase::BlockDecode,
        Phase::TimingPipeline,
        Phase::TechniqueHook,
        Phase::FrontendFetch,
        Phase::CacheIo,
        Phase::ManifestIo,
        Phase::QueueJournal,
        Phase::ServeRequest,
    ];

    /// Stable snake_case name (the `technique_hook` base name; see
    /// [`PhaseProfiler::phase_label`] for the labelled form).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::EmuExec => "emu_exec",
            Phase::EmuHandoff => "emu_handoff",
            Phase::BlockDecode => "block_decode",
            Phase::TimingPipeline => "timing_pipeline",
            Phase::TechniqueHook => "technique_hook",
            Phase::FrontendFetch => "frontend_fetch",
            Phase::CacheIo => "cache_io",
            Phase::ManifestIo => "manifest_io",
            Phase::QueueJournal => "queue_journal",
            Phase::ServeRequest => "serve_request",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Per-phase aggregate: scope count, total self-time, and a duration
/// histogram of per-scope self-times.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PhaseAgg {
    /// Completed scopes.
    pub count: u64,
    /// Total attributed self-time, ns.
    pub total_ns: u64,
    /// Per-scope self-time distribution, ns.
    pub hist: Log2Hist,
}

#[derive(Clone, Debug)]
struct OpenScope {
    phase: usize,
    last: Instant,
    self_ns: u64,
}

/// A scoped phase profiler with self-time attribution.
///
/// `enter`/`exit` pairs bracket phases; nesting charges inner time to the
/// inner phase only. Call [`start`](PhaseProfiler::start) /
/// [`finish`](PhaseProfiler::finish) around the measured region to
/// capture total wall time for the telescoping check.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfiler {
    enabled: bool,
    phases: [PhaseAgg; PHASE_COUNT],
    stack: Vec<OpenScope>,
    run_started: Option<Instant>,
    wall_ns: u64,
    hook_label: Option<String>,
}

impl PartialEq for PhaseProfiler {
    fn eq(&self, other: &PhaseProfiler) -> bool {
        self.enabled == other.enabled
            && self.phases == other.phases
            && self.wall_ns == other.wall_ns
            && self.hook_label == other.hook_label
    }
}

impl PhaseProfiler {
    /// A disabled profiler: every operation is a no-op behind one branch
    /// and the clock is never read.
    #[must_use]
    pub fn disabled() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// An enabled profiler.
    #[must_use]
    pub fn enabled() -> PhaseProfiler {
        PhaseProfiler {
            enabled: true,
            ..PhaseProfiler::default()
        }
    }

    /// Whether scopes are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Names the technique for `technique_hook:<label>` rendering.
    pub fn set_hook_label(&mut self, label: &str) {
        if self.enabled {
            self.hook_label = Some(label.to_string());
        }
    }

    /// The rendered name of a phase: `technique_hook:<label>` when a
    /// label is set, the plain taxonomy name otherwise.
    #[must_use]
    pub fn phase_label(&self, phase: Phase) -> String {
        match (phase, &self.hook_label) {
            (Phase::TechniqueHook, Some(label)) => format!("technique_hook:{label}"),
            _ => phase.name().to_string(),
        }
    }

    /// Marks the start of the measured region (for wall-time capture).
    pub fn start(&mut self) {
        if !self.enabled {
            return;
        }
        self.run_started = Some(Instant::now());
    }

    /// Marks the end of the measured region, folding the elapsed wall
    /// time into [`wall_ns`](PhaseProfiler::wall_ns). Open scopes are
    /// force-closed first so their time is not lost.
    pub fn finish(&mut self) {
        if !self.enabled {
            return;
        }
        while !self.stack.is_empty() {
            self.exit();
        }
        if let Some(started) = self.run_started.take() {
            self.wall_ns = self
                .wall_ns
                .saturating_add(ns_u64(started.elapsed().as_nanos()));
        }
    }

    /// Opens a scope for `phase`. One branch when disabled.
    #[inline]
    pub fn enter(&mut self, phase: Phase) {
        if !self.enabled {
            return;
        }
        self.push(phase);
    }

    #[cold]
    fn push(&mut self, phase: Phase) {
        let now = Instant::now();
        if let Some(top) = self.stack.last_mut() {
            top.self_ns = top
                .self_ns
                .saturating_add(ns_u64(now.duration_since(top.last).as_nanos()));
        }
        self.stack.push(OpenScope {
            phase: phase.index(),
            last: now,
            self_ns: 0,
        });
    }

    /// Closes the innermost open scope. One branch when disabled; a
    /// no-op when no scope is open.
    #[inline]
    pub fn exit(&mut self) {
        if !self.enabled {
            return;
        }
        self.pop();
    }

    #[cold]
    fn pop(&mut self) {
        let now = Instant::now();
        let Some(top) = self.stack.pop() else {
            return;
        };
        let self_ns = top
            .self_ns
            .saturating_add(ns_u64(now.duration_since(top.last).as_nanos()));
        let agg = &mut self.phases[top.phase];
        agg.count += 1;
        agg.total_ns = agg.total_ns.saturating_add(self_ns);
        agg.hist.record(self_ns);
        if let Some(parent) = self.stack.last_mut() {
            // The child's span must not also count as parent self time.
            parent.last = now;
        }
    }

    /// Runs `f` inside a `phase` scope.
    pub fn scope<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        self.enter(phase);
        let out = f();
        self.exit();
        out
    }

    /// Folds an externally measured scope into a phase (used when a
    /// duration is captured by other means, and by tests needing
    /// deterministic input).
    pub fn record_scope_ns(&mut self, phase: Phase, ns: u64) {
        if !self.enabled {
            return;
        }
        let agg = &mut self.phases[phase.index()];
        agg.count += 1;
        agg.total_ns = agg.total_ns.saturating_add(ns);
        agg.hist.record(ns);
    }

    /// Adds externally measured wall time (for merged profiles).
    pub fn add_wall_ns(&mut self, ns: u64) {
        if !self.enabled {
            return;
        }
        self.wall_ns = self.wall_ns.saturating_add(ns);
    }

    /// The aggregate for one phase.
    #[must_use]
    pub fn phase_agg(&self, phase: Phase) -> &PhaseAgg {
        &self.phases[phase.index()]
    }

    /// Total wall time captured by `start`/`finish`, ns.
    #[must_use]
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Sum of all phases' attributed self-time, ns.
    #[must_use]
    pub fn attributed_ns(&self) -> u64 {
        self.phases
            .iter()
            .fold(0u64, |acc, a| acc.saturating_add(a.total_ns))
    }

    /// Attributed share of wall time, in per-mille (1000 when no wall
    /// time was captured — nothing to telescope against).
    #[must_use]
    pub fn coverage_permille(&self) -> u64 {
        if self.wall_ns == 0 {
            return 1000;
        }
        self.attributed_ns()
            .saturating_mul(1000)
            .checked_div(self.wall_ns)
            .unwrap_or(1000)
    }

    /// Whether the telescoping invariant holds (attributed time ≥95% of
    /// wall time).
    #[must_use]
    pub fn telescopes(&self) -> bool {
        self.coverage_permille() >= TELESCOPE_FLOOR_PERMILLE
    }

    /// The phase with the largest attributed time, with its total
    /// (`None` when nothing was attributed).
    #[must_use]
    pub fn dominant_phase(&self) -> Option<(Phase, u64)> {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.phases[p.index()].total_ns))
            .max_by_key(|&(_, ns)| ns)
            .filter(|&(_, ns)| ns > 0)
    }

    /// Merges another profiler's aggregates and wall time into this one
    /// (per-worker profiles into a campaign-wide one).
    pub fn merge(&mut self, other: &PhaseProfiler) {
        if !self.enabled {
            return;
        }
        for (mine, theirs) in self.phases.iter_mut().zip(other.phases.iter()) {
            mine.count += theirs.count;
            mine.total_ns = mine.total_ns.saturating_add(theirs.total_ns);
            mine.hist.merge(&theirs.hist);
        }
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        if self.hook_label.is_none() {
            self.hook_label.clone_from(&other.hook_label);
        }
    }

    /// Absorbs a profiler whose whole measured region ran *inside* one of
    /// this profiler's `parent` scopes (e.g. the frontend's internal
    /// profile inside the `frontend_fetch` scope): the child's aggregates
    /// merge in, and its attributed total is subtracted from the parent
    /// phase so the telescoped sum stays double-count-free. The child's
    /// own wall time is not added.
    pub fn absorb_nested(&mut self, child: &PhaseProfiler, parent: Phase) {
        if !self.enabled {
            return;
        }
        let child_total = child.attributed_ns();
        for (mine, theirs) in self.phases.iter_mut().zip(child.phases.iter()) {
            mine.count += theirs.count;
            mine.total_ns = mine.total_ns.saturating_add(theirs.total_ns);
            mine.hist.merge(&theirs.hist);
        }
        let agg = &mut self.phases[parent.index()];
        agg.total_ns = agg.total_ns.saturating_sub(child_total);
    }

    /// Deterministic JSON form: per-phase `{count, total_ns, hist}` plus
    /// wall time and coverage (in per-mille, keeping the integer-only
    /// dialect).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        let phases = Phase::ALL
            .iter()
            .map(|&p| {
                let agg = &self.phases[p.index()];
                (
                    self.phase_label(p),
                    Value::Obj(vec![
                        ("count".into(), int(agg.count)),
                        ("total_ns".into(), int(agg.total_ns)),
                        ("hist".into(), agg.hist.to_value()),
                    ]),
                )
            })
            .collect();
        Value::Obj(vec![
            ("phases".into(), Value::Obj(phases)),
            ("wall_ns".into(), int(self.wall_ns)),
            ("attributed_ns".into(), int(self.attributed_ns())),
            ("coverage_permille".into(), int(self.coverage_permille())),
        ])
    }
}

#[inline]
fn ns_u64(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

#[cold]
fn enter_slow(inner: &Mutex<PhaseProfiler>, phase: Phase) {
    inner.lock().expect("profiler lock poisoned").enter(phase);
}

#[cold]
fn exit_slow(inner: &Mutex<PhaseProfiler>) {
    inner.lock().expect("profiler lock poisoned").exit();
}

/// A shareable handle to one [`PhaseProfiler`], so producer and consumer
/// sides of a seam (the simulator run loop and the functional frontend it
/// drives) attribute into a single nesting stack: emulator scopes opened
/// while a technique hook peeks the frontend nest under the hook's scope,
/// exactly as they ran.
///
/// A disabled handle holds no allocation and every call is one branch; an
/// enabled handle locks a mutex per scope boundary — the profiler is
/// attribution tooling, not a free-running production counter.
#[derive(Clone, Debug, Default)]
pub struct ProfHandle {
    inner: Option<Arc<Mutex<PhaseProfiler>>>,
}

impl ProfHandle {
    /// A disabled handle (no-op, no allocation).
    #[must_use]
    pub fn disabled() -> ProfHandle {
        ProfHandle::default()
    }

    /// An enabled handle around a fresh profiler.
    #[must_use]
    pub fn enabled() -> ProfHandle {
        ProfHandle {
            inner: Some(Arc::new(Mutex::new(PhaseProfiler::enabled()))),
        }
    }

    /// Whether scopes are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with(&self, f: impl FnOnce(&mut PhaseProfiler)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.lock().expect("profiler lock poisoned"));
        }
    }

    /// See [`PhaseProfiler::enter`]. The disabled fast path is one
    /// predictable branch; the lock-and-record slow path is outlined so
    /// it never bloats the caller's hot loop.
    #[inline]
    pub fn enter(&self, phase: Phase) {
        if let Some(inner) = &self.inner {
            enter_slow(inner, phase);
        }
    }

    /// See [`PhaseProfiler::exit`]. Same fast/slow split as
    /// [`enter`](ProfHandle::enter).
    #[inline]
    pub fn exit(&self) {
        if let Some(inner) = &self.inner {
            exit_slow(inner);
        }
    }

    /// See [`PhaseProfiler::start`].
    pub fn start(&self) {
        self.with(PhaseProfiler::start);
    }

    /// See [`PhaseProfiler::finish`].
    pub fn finish(&self) {
        self.with(PhaseProfiler::finish);
    }

    /// See [`PhaseProfiler::set_hook_label`].
    pub fn set_hook_label(&self, label: &str) {
        self.with(|p| p.set_hook_label(label));
    }

    /// A snapshot of the profiler's current state (a disabled
    /// [`PhaseProfiler`] for a disabled handle).
    #[must_use]
    pub fn snapshot(&self) -> PhaseProfiler {
        match &self.inner {
            Some(inner) => inner.lock().expect("profiler lock poisoned").clone(),
            None => PhaseProfiler::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let mut p = PhaseProfiler::disabled();
        p.start();
        p.enter(Phase::EmuExec);
        p.exit();
        p.record_scope_ns(Phase::EmuExec, 100);
        p.finish();
        assert_eq!(p.attributed_ns(), 0);
        assert_eq!(p.wall_ns(), 0);
        assert_eq!(p.phase_agg(Phase::EmuExec).count, 0);
        assert!(p.telescopes(), "vacuously: no wall time captured");
    }

    #[test]
    fn nesting_attributes_self_time_only() {
        let mut p = PhaseProfiler::enabled();
        p.start();
        p.enter(Phase::FrontendFetch);
        spin_for_at_least_us(50);
        p.enter(Phase::EmuExec);
        spin_for_at_least_us(50);
        p.exit();
        spin_for_at_least_us(50);
        p.exit();
        p.finish();
        let fetch = p.phase_agg(Phase::FrontendFetch);
        let exec = p.phase_agg(Phase::EmuExec);
        assert_eq!(fetch.count, 1);
        assert_eq!(exec.count, 1);
        assert!(fetch.total_ns > 0 && exec.total_ns > 0);
        // Self times sum to at most the wall time (no double counting).
        assert!(p.attributed_ns() <= p.wall_ns());
        // A near-fully-scoped region telescopes.
        assert!(p.telescopes(), "coverage {}", p.coverage_permille());
    }

    #[test]
    fn deterministic_injection_and_telescoping_math() {
        let mut p = PhaseProfiler::enabled();
        p.record_scope_ns(Phase::EmuExec, 600);
        p.record_scope_ns(Phase::TimingPipeline, 350);
        p.add_wall_ns(1000);
        assert_eq!(p.attributed_ns(), 950);
        assert_eq!(p.coverage_permille(), 950);
        assert!(p.telescopes());
        p.add_wall_ns(100);
        assert!(!p.telescopes());
        assert_eq!(p.dominant_phase(), Some((Phase::EmuExec, 600)));
    }

    #[test]
    fn hook_label_renders_into_phase_name() {
        let mut p = PhaseProfiler::enabled();
        assert_eq!(p.phase_label(Phase::TechniqueHook), "technique_hook");
        p.set_hook_label("conv");
        assert_eq!(p.phase_label(Phase::TechniqueHook), "technique_hook:conv");
        assert_eq!(p.phase_label(Phase::EmuExec), "emu_exec");
    }

    #[test]
    fn merge_and_absorb_nested() {
        let mut parent = PhaseProfiler::enabled();
        parent.record_scope_ns(Phase::FrontendFetch, 1000);
        let mut child = PhaseProfiler::enabled();
        child.record_scope_ns(Phase::EmuExec, 700);
        child.record_scope_ns(Phase::EmuHandoff, 200);
        // The child ran inside the frontend_fetch scope: its 900ns move
        // out of frontend_fetch and into their own phases.
        parent.absorb_nested(&child, Phase::FrontendFetch);
        assert_eq!(parent.phase_agg(Phase::FrontendFetch).total_ns, 100);
        assert_eq!(parent.phase_agg(Phase::EmuExec).total_ns, 700);
        assert_eq!(parent.phase_agg(Phase::EmuHandoff).total_ns, 200);
        assert_eq!(parent.attributed_ns(), 1000);

        let mut other = PhaseProfiler::enabled();
        other.record_scope_ns(Phase::EmuExec, 50);
        other.add_wall_ns(60);
        parent.add_wall_ns(1000);
        parent.merge(&other);
        assert_eq!(parent.phase_agg(Phase::EmuExec).total_ns, 750);
        assert_eq!(parent.wall_ns(), 1060);
    }

    #[test]
    fn finish_force_closes_open_scopes() {
        let mut p = PhaseProfiler::enabled();
        p.start();
        p.enter(Phase::QueueJournal);
        p.enter(Phase::CacheIo);
        p.finish();
        assert_eq!(p.phase_agg(Phase::QueueJournal).count, 1);
        assert_eq!(p.phase_agg(Phase::CacheIo).count, 1);
        assert!(p.stack.is_empty());
    }

    #[test]
    fn json_snapshot_has_all_phases() {
        let mut p = PhaseProfiler::enabled();
        p.set_hook_label("wpemul");
        p.record_scope_ns(Phase::TechniqueHook, 5);
        let doc = crate::json::parse(&p.to_value().to_json()).unwrap();
        let phases = doc.get("phases").unwrap();
        for phase in Phase::ALL {
            let label = p.phase_label(phase);
            assert!(phases.get(&label).is_some(), "missing {label}");
        }
        assert_eq!(
            phases
                .get("technique_hook:wpemul")
                .and_then(|v| v.get("total_ns"))
                .and_then(Value::as_int),
            Some(5)
        );
    }

    fn spin_for_at_least_us(us: u64) {
        let start = std::time::Instant::now();
        while start.elapsed().as_micros() < u128::from(us) {
            std::hint::spin_loop();
        }
    }
}
