//! Observability primitives for the decoupled functional-first simulator.
//!
//! This crate is the shared, dependency-free substrate that the timing
//! model, the functional frontend, and the campaign driver build their
//! instrumentation on:
//!
//! - [`cpi`] — per-cycle stall attribution ([`CpiStack`]) whose components
//!   sum exactly to the simulated cycle count, split by correct/wrong
//!   path lane.
//! - [`trace`] — typed pipeline/emulator events in a bounded ring
//!   ([`EventRing`]) with a disabled fast path, plus a Chrome
//!   `trace_event` JSON exporter ([`chrome_trace`]).
//! - [`hist`] — mergeable log2 histograms ([`Log2Hist`]) for long-tailed
//!   quantities such as wrong-path episode lengths and convergence
//!   distances.
//! - [`json`] — the deterministic, integer-only JSON reader/writer all
//!   exports (and the campaign manifest) are built on.
//! - [`metrics`] — a unified registry of named counters, gauges and
//!   histograms ([`MetricsRegistry`]) with Prometheus-text and JSON
//!   snapshots.
//! - [`prof`] — a scoped host-phase profiler ([`PhaseProfiler`]) that
//!   attributes wall time to a fixed phase taxonomy with a telescoping
//!   invariant.
//!
//! Everything here is designed for a hard observer-effect invariant: with
//! observability disabled (the default), simulation results are bit-for-
//! bit identical to an uninstrumented build, and the hot-loop overhead is
//! a single predictable branch per potential event.

#![warn(missing_docs)]

pub mod cpi;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod trace;

pub use cpi::{CpiStack, StallClass, ALL_CLASSES};
pub use hist::{Log2Hist, NUM_BUCKETS};
pub use metrics::{CounterId, GaugeId, HistId, MetricKind, MetricsError, MetricsRegistry};
pub use prof::{Phase, PhaseAgg, PhaseProfiler, ProfHandle, PHASE_COUNT, TELESCOPE_FLOOR_PERMILLE};
pub use trace::{chrome_trace, EventRing, TraceEvent, TraceEventKind, TraceSource};

/// Environment variable that switches observability on (`1`, `true`,
/// `on`, `yes`; anything else — or unset — leaves it off).
pub const ENV_VAR: &str = "FFSIM_OBS";

/// Default event-ring capacity when tracing is enabled.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Whether the [`ENV_VAR`] opt-in is set in the process environment.
#[must_use]
pub fn env_enabled() -> bool {
    std::env::var(ENV_VAR)
        .map(|v| matches!(v.trim(), "1" | "true" | "on" | "yes"))
        .unwrap_or(false)
}

/// Observability configuration carried by simulator and driver configs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ObsConfig {
    /// Master switch: when false (the default), no events are recorded,
    /// no histograms filled, and outputs are byte-identical to an
    /// uninstrumented run.
    pub enabled: bool,
    /// Event-ring capacity (most recent events kept).
    pub trace_capacity: usize,
    /// Host-phase profiling switch: when true, the simulator attributes
    /// wall time to the [`prof::Phase`] taxonomy. Independent of
    /// `enabled` so attribution runs don't pay for event tracing, but
    /// [`from_env`](ObsConfig::from_env) switches both together.
    pub profile: bool,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            enabled: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            profile: false,
        }
    }
}

impl ObsConfig {
    /// Disabled configuration (the default).
    #[must_use]
    pub fn disabled() -> ObsConfig {
        ObsConfig::default()
    }

    /// Enabled configuration with the default ring capacity (profiling
    /// included).
    #[must_use]
    pub fn enabled() -> ObsConfig {
        ObsConfig {
            enabled: true,
            profile: true,
            ..ObsConfig::default()
        }
    }

    /// Profiling-only configuration: phase attribution without event
    /// tracing (what `perf_attrib` runs under).
    #[must_use]
    pub fn profiled() -> ObsConfig {
        ObsConfig {
            profile: true,
            ..ObsConfig::default()
        }
    }

    /// Whether any observability output is requested (tracing or
    /// profiling).
    #[must_use]
    pub fn any(&self) -> bool {
        self.enabled || self.profile
    }

    /// Reads the [`ENV_VAR`] opt-in: enabled iff `FFSIM_OBS` is set to a
    /// truthy value.
    #[must_use]
    pub fn from_env() -> ObsConfig {
        if env_enabled() {
            ObsConfig::enabled()
        } else {
            ObsConfig::disabled()
        }
    }

    /// Builds the event ring this configuration calls for.
    #[must_use]
    pub fn ring(&self) -> EventRing {
        if self.enabled {
            EventRing::enabled(self.trace_capacity)
        } else {
            EventRing::disabled()
        }
    }

    /// Builds the phase profiler this configuration calls for.
    #[must_use]
    pub fn profiler(&self) -> PhaseProfiler {
        if self.profile {
            PhaseProfiler::enabled()
        } else {
            PhaseProfiler::disabled()
        }
    }

    /// Builds the shareable profiler handle this configuration calls for.
    #[must_use]
    pub fn prof_handle(&self) -> ProfHandle {
        if self.profile {
            ProfHandle::enabled()
        } else {
            ProfHandle::disabled()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_ring_matches_config() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled);
        assert!(!cfg.ring().is_enabled());
        let on = ObsConfig::enabled();
        assert!(on.enabled);
        assert!(on.ring().is_enabled());
        assert_eq!(on.trace_capacity, DEFAULT_TRACE_CAPACITY);
    }
}
