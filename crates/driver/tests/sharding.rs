//! End-to-end tests for sharded crash-consistent campaigns and the
//! content-addressed result cache: interrupted campaigns resume to
//! byte-identical reports, a corrupt or missing shard costs only that
//! shard's jobs, injected persistence faults never lose a committed
//! result, and identical campaign re-runs are served entirely from the
//! cache.

use ffsim_core::{SimError, WrongPathMode};
use ffsim_driver::{
    manifest::ManifestIo, report, Campaign, CampaignConfig, Job, RetryPolicy, ShardLayout,
    SharedIo, WorkloadFn, MAX_SHARDS, MAX_WORKERS,
};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Program, Reg};
use ffsim_uarch::CoreConfig;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Long enough that a mid-campaign cancel lands while jobs are in flight,
/// short enough for fast tests.
const TRIPS: i64 = 2_000;

const SHARDS: usize = 4;

fn countdown(trips: i64) -> Result<Program, ffsim_core::SimError> {
    let i = Reg::new(1);
    let mut a = Asm::new();
    a.li(i, trips);
    a.label("loop");
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn workload(trips: i64) -> WorkloadFn {
    Arc::new(move || Ok((countdown(trips)?, Memory::new())))
}

/// Eight deterministic jobs spread across modes and two workloads, so a
/// 4-way shard layout gets a meaningful spread of ids.
fn jobs() -> Vec<Job> {
    let core = CoreConfig::tiny_for_tests();
    let mut jobs = Vec::new();
    for mode in WrongPathMode::ALL {
        jobs.push(
            Job::new(format!("countdown-a/{mode}"), mode, workload(TRIPS)).with_core(core.clone()),
        );
        jobs.push(
            Job::new(format!("countdown-b/{mode}"), mode, workload(TRIPS / 2))
                .with_core(core.clone()),
        );
    }
    jobs
}

fn fast_config(dir: &Path) -> CampaignConfig {
    CampaignConfig {
        workers: 2,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        default_timeout: Some(Duration::from_secs(60)),
        manifest_path: Some(dir.join("manifest.json")),
        shards: Some(SHARDS),
        telemetry: ffsim_driver::TelemetryConfig::default(),
        ..CampaignConfig::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn layout(cfg: &CampaignConfig) -> ShardLayout {
    ShardLayout::new(
        cfg.manifest_path.clone().expect("manifest path"),
        cfg.shards.expect("shards"),
    )
    .expect("valid layout")
}

/// Runs the campaign until every job has a record, tolerating
/// cancellation; returns the final outcome.
fn run_to_completion(cfg: &CampaignConfig) -> ffsim_driver::CampaignOutcome {
    for _ in 0..20 {
        let outcome = Campaign::new(cfg.clone())
            .run(jobs())
            .expect("campaign runs");
        if outcome.records.len() == jobs().len() {
            return outcome;
        }
    }
    panic!("campaign failed to finish in 20 resumes");
}

#[test]
fn config_validation_boundaries() {
    let base = CampaignConfig::default();
    assert!(base.validate().is_ok());

    let zero_shards = CampaignConfig {
        shards: Some(0),
        manifest_path: Some(PathBuf::from("/tmp/m.json")),
        ..base.clone()
    };
    assert!(matches!(
        zero_shards.validate(),
        Err(SimError::InvalidConfig(_))
    ));

    let absurd_shards = CampaignConfig {
        shards: Some(MAX_SHARDS + 1),
        manifest_path: Some(PathBuf::from("/tmp/m.json")),
        ..base.clone()
    };
    assert!(matches!(
        absurd_shards.validate(),
        Err(SimError::InvalidConfig(_))
    ));

    let max_shards = CampaignConfig {
        shards: Some(MAX_SHARDS),
        manifest_path: Some(PathBuf::from("/tmp/m.json")),
        ..base.clone()
    };
    assert!(max_shards.validate().is_ok());

    let absurd_workers = CampaignConfig {
        workers: MAX_WORKERS + 1,
        ..base.clone()
    };
    assert!(matches!(
        absurd_workers.validate(),
        Err(SimError::InvalidConfig(_))
    ));

    let shards_without_manifest = CampaignConfig {
        shards: Some(2),
        manifest_path: None,
        ..base
    };
    assert!(matches!(
        shards_without_manifest.validate(),
        Err(SimError::InvalidConfig(_))
    ));

    // run() fails fast on the same validation, before any job executes.
    let err = Campaign::new(CampaignConfig {
        shards: Some(0),
        manifest_path: Some(PathBuf::from("/tmp/m.json")),
        ..CampaignConfig::default()
    })
    .run(jobs())
    .expect_err("invalid config rejected");
    assert!(err.contains("shard count"), "{err}");
}

/// The stress test: whatever the worker count and wherever a cancel
/// lands mid-campaign, resuming always converges to a merged report
/// byte-identical to an uninterrupted run's.
#[test]
fn interrupted_sharded_campaigns_resume_to_identical_reports() {
    let clean_dir = tmp_dir("shard-stress-clean");
    let clean_cfg = fast_config(&clean_dir);
    let clean = run_to_completion(&clean_cfg);
    assert!(clean.quarantines.is_empty());
    let golden = report::render(&clean.records);

    for workers in [1, 4] {
        for delay_ms in [0u64, 5, 25] {
            let dir = tmp_dir(&format!("shard-stress-{workers}w-{delay_ms}ms"));
            let cfg = CampaignConfig {
                workers,
                ..fast_config(&dir)
            };

            // Interrupt the first run: fire the campaign token from a
            // second thread, like a SIGTERM handler would.
            let campaign = Campaign::new(cfg.clone());
            let token = campaign.cancel_token();
            let canceller = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                token.cancel();
            });
            let interrupted = campaign.run(jobs()).expect("interrupted run returns");
            canceller.join().expect("canceller joins");
            assert!(interrupted.records.len() <= jobs().len());

            let resumed = run_to_completion(&cfg);
            assert!(resumed.quarantines.is_empty());
            assert_eq!(
                report::render(&resumed.records),
                golden,
                "workers={workers} delay={delay_ms}ms"
            );
        }
    }
}

#[test]
fn corrupt_shard_quarantines_and_reruns_only_its_jobs() {
    let dir = tmp_dir("shard-corrupt");
    let cfg = fast_config(&dir);
    let clean = run_to_completion(&cfg);
    let golden = report::render(&clean.records);

    // Cut shard 1 mid-body, as a torn write would.
    let layout = layout(&cfg);
    let victims: Vec<String> = jobs()
        .iter()
        .filter(|j| layout.shard_of(&j.id) == 1)
        .map(|j| j.id.clone())
        .collect();
    assert!(!victims.is_empty(), "shard 1 must hold at least one job");
    let shard_path = layout.path(1);
    let healthy = std::fs::read_to_string(&shard_path).expect("shard written");
    std::fs::write(&shard_path, &healthy[..healthy.len() / 2]).expect("truncate shard");

    let recovered = Campaign::new(cfg.clone())
        .run(jobs())
        .expect("recovery runs");
    let [quarantine] = &recovered.quarantines[..] else {
        panic!(
            "expected exactly one quarantine: {:?}",
            recovered.quarantines
        );
    };
    assert!(quarantine.quarantined_to.exists(), "evidence preserved");
    assert_eq!(
        recovered.executed,
        victims.len(),
        "only the damaged shard's jobs re-run"
    );
    assert_eq!(recovered.resumed, jobs().len() - victims.len());
    // The merged report is byte-identical; the banner is a separate,
    // appended section.
    assert_eq!(report::render(&recovered.records), golden);
    assert!(!report::render_quarantines(&recovered.quarantines).is_empty());

    // A further run is clean again: the damaged shard was rewritten.
    let clean_again = Campaign::new(cfg).run(jobs()).expect("clean run");
    assert!(clean_again.quarantines.is_empty());
    assert_eq!(clean_again.resumed, jobs().len());
    assert_eq!(report::render(&clean_again.records), golden);
}

#[test]
fn missing_shard_degrades_to_rerunning_only_its_jobs() {
    let dir = tmp_dir("shard-missing");
    let cfg = fast_config(&dir);
    let clean = run_to_completion(&cfg);
    let golden = report::render(&clean.records);

    let layout = layout(&cfg);
    let victims = jobs()
        .iter()
        .filter(|j| layout.shard_of(&j.id) == 2)
        .count();
    assert!(victims > 0, "shard 2 must hold at least one job");
    std::fs::remove_file(layout.path(2)).expect("delete shard");

    let recovered = Campaign::new(cfg).run(jobs()).expect("recovery runs");
    // A missing file is indistinguishable from a shard that never had
    // committed jobs: no quarantine, its jobs simply re-run.
    assert!(recovered.quarantines.is_empty());
    assert_eq!(recovered.executed, victims);
    assert_eq!(recovered.resumed, jobs().len() - victims);
    assert_eq!(report::render(&recovered.records), golden);
}

/// Fails every write after the first `allow` successful ones — a disk
/// going bad partway through a campaign.
#[derive(Debug)]
struct FailAfter {
    allow: usize,
}

impl ManifestIo for FailAfter {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        if self.allow == 0 {
            return Err(std::io::Error::other("disk failed (injected)"));
        }
        self.allow -= 1;
        std::fs::write(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
}

#[test]
fn mid_campaign_persistence_fault_loses_no_committed_result() {
    let dir = tmp_dir("shard-io-fault");
    let faulty_cfg = CampaignConfig {
        workers: 1, // deterministic commit order for the fault schedule
        io: SharedIo::new(FailAfter { allow: 3 }),
        ..fast_config(&dir)
    };

    // The campaign stops at the first persist failure rather than running
    // on with silently lost resume coverage.
    let err = Campaign::new(faulty_cfg)
        .run(jobs())
        .expect_err("persist failure surfaces");
    assert!(err.contains("injected"), "{err}");

    // Every result committed before the fault survives; the resumed
    // campaign re-runs only the rest and converges to the clean report.
    let cfg = fast_config(&dir);
    let resumed = Campaign::new(cfg.clone()).run(jobs()).expect("resume runs");
    assert!(resumed.quarantines.is_empty(), "no shard was torn");
    assert_eq!(resumed.resumed, 3, "all three committed results survive");

    let final_outcome = run_to_completion(&cfg);
    let clean_dir = tmp_dir("shard-io-fault-clean");
    let clean = run_to_completion(&fast_config(&clean_dir));
    assert_eq!(
        report::render(&final_outcome.records),
        report::render(&clean.records)
    );
}

#[test]
fn identical_campaign_reruns_entirely_from_cache() {
    let dir = tmp_dir("cache-rerun");
    let cache_dir = dir.join("cache");
    let first_cfg = CampaignConfig {
        manifest_path: Some(dir.join("m1.json")),
        cache_dir: Some(cache_dir.clone()),
        ..fast_config(&dir)
    };
    let first = Campaign::new(first_cfg).run(jobs()).expect("first run");
    assert_eq!(first.records.len(), jobs().len());
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.cache_misses, jobs().len());
    assert!(first.records.values().all(|r| !r.cached));

    // Same campaign, fresh manifest: every job is served from the cache
    // and the deterministic report is byte-identical.
    let second_cfg = CampaignConfig {
        manifest_path: Some(dir.join("m2.json")),
        cache_dir: Some(cache_dir.clone()),
        ..fast_config(&dir)
    };
    let second = Campaign::new(second_cfg).run(jobs()).expect("second run");
    assert_eq!(second.cache_hits, jobs().len(), "100% cache hits");
    assert_eq!(second.cache_misses, 0);
    assert!(second.records.values().all(|r| r.cached));
    assert_eq!(
        report::render(&second.records),
        report::render(&first.records),
        "cached results render byte-identically"
    );
    // Cache provenance is visible in the appendix, not the report body.
    assert!(!report::render_cache(&second.records).is_empty());
    assert!(report::render_cache(&first.records).is_empty());

    // A different workload is a different content address: nothing from
    // this cache leaks into it.
    let other_cfg = CampaignConfig {
        manifest_path: Some(dir.join("m3.json")),
        cache_dir: Some(cache_dir),
        ..fast_config(&dir)
    };
    let other_jobs: Vec<Job> = vec![Job::new(
        "countdown-a/nowp", // same id as a cached job, different program
        WrongPathMode::NoWrongPath,
        workload(TRIPS * 3),
    )
    .with_core(CoreConfig::tiny_for_tests())];
    let other = Campaign::new(other_cfg).run(other_jobs).expect("third run");
    assert_eq!(other.cache_hits, 0, "different workload digest must miss");
}

#[test]
fn corrupt_cache_entry_is_evicted_and_recomputed() {
    let dir = tmp_dir("cache-corrupt");
    let cache_dir = dir.join("cache");
    let first_cfg = CampaignConfig {
        manifest_path: Some(dir.join("m1.json")),
        cache_dir: Some(cache_dir.clone()),
        ..fast_config(&dir)
    };
    Campaign::new(first_cfg).run(jobs()).expect("first run");

    // Corrupt one cache entry by truncation.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cache_dir)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), jobs().len(), "one entry per job");
    let victim = &entries[0];
    let healthy = std::fs::read_to_string(victim).expect("entry readable");
    std::fs::write(victim, &healthy[..healthy.len() / 2]).expect("truncate entry");

    let second_cfg = CampaignConfig {
        manifest_path: Some(dir.join("m2.json")),
        cache_dir: Some(cache_dir.clone()),
        ..fast_config(&dir)
    };
    let second = Campaign::new(second_cfg).run(jobs()).expect("second run");
    assert_eq!(second.cache_hits, jobs().len() - 1);
    assert_eq!(second.cache_misses, 1, "corrupt entry evicted, not served");
    assert_eq!(second.records.len(), jobs().len());

    // The recomputed entry replaced the corrupt one: a third run is all
    // hits again.
    let third_cfg = CampaignConfig {
        manifest_path: Some(dir.join("m3.json")),
        cache_dir: Some(cache_dir),
        ..fast_config(&dir)
    };
    let third = Campaign::new(third_cfg).run(jobs()).expect("third run");
    assert_eq!(third.cache_hits, jobs().len());
}

/// Sharding and caching compose: an interrupted sharded+cached campaign
/// resumes cleanly, and every job committed before the kill is a cache
/// hit for an identical later campaign (the cache is written *before*
/// the shard commit).
#[test]
fn committed_jobs_are_always_cache_hits_after_interruption() {
    let dir = tmp_dir("cache-interrupt");
    let cache_dir = dir.join("cache");
    let cfg = CampaignConfig {
        cache_dir: Some(cache_dir.clone()),
        ..fast_config(&dir)
    };

    let campaign = Campaign::new(cfg.clone());
    let token = campaign.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        token.cancel();
    });
    let interrupted = campaign.run(jobs()).expect("interrupted run returns");
    canceller.join().expect("canceller joins");
    let committed: BTreeMap<String, bool> = interrupted
        .records
        .iter()
        .map(|(id, r)| (id.clone(), r.cached))
        .collect();

    run_to_completion(&cfg);

    // Fresh manifest, same cache: every job hits.
    let rerun_cfg = CampaignConfig {
        manifest_path: Some(dir.join("m2.json")),
        cache_dir: Some(cache_dir),
        ..fast_config(&dir)
    };
    let rerun = Campaign::new(rerun_cfg).run(jobs()).expect("rerun");
    assert_eq!(
        rerun.cache_hits,
        jobs().len(),
        "every committed job (incl. pre-kill: {committed:?}) must hit"
    );
}
