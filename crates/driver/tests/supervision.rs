//! End-to-end supervision tests: panic isolation, watchdog deadlines,
//! retry, the degradation ladder, determinism, and crash-safe resume.

use ffsim_core::WrongPathMode;
use ffsim_driver::{
    AttemptOutcome, Campaign, CampaignConfig, Job, JobStatus, RetryPolicy, WorkloadFn,
};
use ffsim_emu::{FaultPolicy, Memory};
use ffsim_isa::{Asm, Program, Reg};
use ffsim_uarch::CoreConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Loop trips: enough to train the predictor so the loop exit mispredicts
/// and a wrong path runs.
const TRIPS: i64 = 2_000;

/// Count-down loop with a division. The correct path divides by
/// `TRIPS..=1`; the wrong path at loop exit re-enters the body with the
/// counter at zero, so `trap_div_zero` faults *only* wrong-path execution.
fn countdown_div() -> Result<Program, ffsim_core::SimError> {
    let (i, c, q) = (Reg::new(1), Reg::new(2), Reg::new(3));
    let mut a = Asm::new();
    a.li(i, TRIPS);
    a.li(c, 1_000_003);
    a.label("loop");
    a.div(q, c, i);
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    Ok(a.assemble()?)
}

/// A plain count-down loop that halts.
fn countdown(trips: i64) -> Result<Program, ffsim_core::SimError> {
    let i = Reg::new(1);
    let mut a = Asm::new();
    a.li(i, trips);
    a.label("loop");
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    Ok(a.assemble()?)
}

/// A loop that never halts: `x1` stays 1 forever.
fn infinite_loop() -> Result<Program, ffsim_core::SimError> {
    let x = Reg::new(1);
    let mut a = Asm::new();
    a.li(x, 1);
    a.label("loop");
    a.bnez(x, "loop");
    a.halt(); // unreachable
    Ok(a.assemble()?)
}

fn workload(program: fn() -> Result<Program, ffsim_core::SimError>) -> WorkloadFn {
    Arc::new(move || Ok((program()?, Memory::new())))
}

fn tiny_job(
    id: &str,
    mode: WrongPathMode,
    program: fn() -> Result<Program, ffsim_core::SimError>,
) -> Job {
    Job::new(id, mode, workload(program)).with_core(CoreConfig::tiny_for_tests())
}

fn fast_config() -> CampaignConfig {
    CampaignConfig {
        workers: 2,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO, // no sleeping in tests
            max_backoff: Duration::ZERO,
        },
        default_timeout: Some(Duration::from_secs(60)),
        manifest_path: None,
        telemetry: ffsim_driver::TelemetryConfig::default(),
        ..CampaignConfig::default()
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir.join("manifest.json")
}

#[test]
fn hung_job_is_cancelled_without_losing_siblings() {
    let mut jobs = vec![tiny_job("hang", WrongPathMode::NoWrongPath, infinite_loop)
        .with_timeout(Duration::from_millis(100))
        .with_max_attempts(1)
        .no_degradation()];
    for mode in WrongPathMode::ALL {
        jobs.push(
            tiny_job(&format!("ok/{mode}"), mode, countdown_div).with_max_instructions(50_000),
        );
    }

    let outcome = Campaign::new(fast_config())
        .run(jobs)
        .expect("campaign runs");
    assert_eq!(outcome.records.len(), 5, "no sibling jobs lost");
    assert!(!outcome.cancelled);

    let hang = &outcome.records["hang"];
    assert_eq!(hang.status, JobStatus::Failed);
    assert_eq!(hang.attempts.len(), 1);
    assert_eq!(hang.attempts[0].outcome, AttemptOutcome::DeadlineExceeded);

    for mode in WrongPathMode::ALL {
        let record = &outcome.records[&format!("ok/{mode}")];
        assert_eq!(
            record.status,
            JobStatus::Completed,
            "sibling {mode} completed"
        );
        assert!(record.summary.is_some());
    }
}

#[test]
fn panicking_attempt_is_isolated_and_retried() {
    let calls = Arc::new(AtomicU32::new(0));
    let calls_in_builder = Arc::clone(&calls);
    let flaky: WorkloadFn = Arc::new(move || {
        if calls_in_builder.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("injected workload panic");
        }
        Ok((countdown(TRIPS)?, Memory::new()))
    });

    let jobs = vec![
        Job::new("flaky", WrongPathMode::ConvergenceExploitation, flaky)
            .with_core(CoreConfig::tiny_for_tests()),
        tiny_job(
            "steady",
            WrongPathMode::ConvergenceExploitation,
            countdown_div,
        )
        .with_max_instructions(50_000),
    ];

    let outcome = Campaign::new(fast_config())
        .run(jobs)
        .expect("campaign runs");
    let flaky = &outcome.records["flaky"];
    assert_eq!(
        flaky.status,
        JobStatus::Completed,
        "retry recovered the job"
    );
    assert_eq!(flaky.attempts.len(), 2);
    assert!(
        matches!(&flaky.attempts[0].outcome, AttemptOutcome::Panic(msg) if msg.contains("injected")),
        "first attempt recorded the panic: {:?}",
        flaky.attempts[0].outcome
    );
    assert_eq!(flaky.attempts[1].outcome, AttemptOutcome::Success);
    assert_eq!(outcome.records["steady"].status, JobStatus::Completed);
    assert_eq!(calls.load(Ordering::SeqCst), 2);
}

#[test]
fn persistent_wrong_path_fault_degrades_down_the_ladder() {
    // trap_div_zero + AbortRun faults only under full wrong-path emulation:
    // the other techniques never functionally execute the wrong-path
    // division. The job must degrade wpemul -> conv and then succeed.
    let job = tiny_job("divzero", WrongPathMode::WrongPathEmulation, countdown_div).with_tweak(
        Arc::new(|cfg| {
            cfg.fault_model.trap_div_zero = true;
            cfg.fault_policy = FaultPolicy::AbortRun;
        }),
    );

    let outcome = Campaign::new(fast_config())
        .run(vec![job])
        .expect("campaign runs");
    let record = &outcome.records["divzero"];
    assert_eq!(record.status, JobStatus::Degraded);
    assert_eq!(record.requested_mode, WrongPathMode::WrongPathEmulation);
    assert_eq!(record.final_mode, WrongPathMode::ConvergenceExploitation);
    assert_eq!(record.attempts.len(), 3, "2 faulting attempts + 1 success");
    for attempt in &record.attempts[..2] {
        assert_eq!(attempt.mode, WrongPathMode::WrongPathEmulation);
        assert!(
            matches!(&attempt.outcome, AttemptOutcome::Fault(msg) if msg.contains("wrong-path")),
            "expected a wrong-path fault, got {:?}",
            attempt.outcome
        );
    }
    assert_eq!(
        record.attempts[2].mode,
        WrongPathMode::ConvergenceExploitation
    );
    assert_eq!(record.attempts[2].outcome, AttemptOutcome::Success);
    assert!(record.summary.is_some());
}

#[test]
fn fault_in_every_mode_fails_cleanly_instead_of_hanging() {
    // An address limit below the data the *correct path* loads faults in
    // all four modes: the ladder runs dry and the job fails, recording
    // every rung.
    // The workload loads from far above the injected address limit on the
    // correct path.
    let oob: WorkloadFn = Arc::new(|| {
        let (v, base) = (Reg::new(1), Reg::new(2));
        let mut a = Asm::new();
        a.li(base, 0x1000_0000);
        a.ld(v, 0, base);
        a.halt();
        Ok((a.assemble()?, Memory::new()))
    });
    let job = Job::new("doomed", WrongPathMode::WrongPathEmulation, oob)
        .with_core(CoreConfig::tiny_for_tests())
        .with_tweak(Arc::new(|cfg| {
            cfg.fault_model.addr_limit = Some(0x100);
        }));

    let outcome = Campaign::new(fast_config())
        .run(vec![job])
        .expect("campaign runs");
    let record = &outcome.records["doomed"];
    assert_eq!(record.status, JobStatus::Failed);
    assert_eq!(record.final_mode, WrongPathMode::NoWrongPath);
    assert_eq!(record.attempts.len(), 8, "2 attempts on each of 4 rungs");
    let modes: Vec<_> = record.attempts.iter().map(|a| a.mode).collect();
    assert_eq!(
        modes,
        vec![
            WrongPathMode::WrongPathEmulation,
            WrongPathMode::WrongPathEmulation,
            WrongPathMode::ConvergenceExploitation,
            WrongPathMode::ConvergenceExploitation,
            WrongPathMode::InstructionReconstruction,
            WrongPathMode::InstructionReconstruction,
            WrongPathMode::NoWrongPath,
            WrongPathMode::NoWrongPath,
        ]
    );
    assert!(record.summary.is_none());
}

fn determinism_jobs() -> Vec<Job> {
    let mut jobs = Vec::new();
    for mode in WrongPathMode::ALL {
        jobs.push(
            tiny_job(&format!("countdown/{mode}"), mode, countdown_div)
                .with_max_instructions(20_000),
        );
    }
    // One degrading job so attempt histories are exercised too.
    jobs.push(
        tiny_job("degrade", WrongPathMode::WrongPathEmulation, countdown_div).with_tweak(Arc::new(
            |cfg| {
                cfg.fault_model.trap_div_zero = true;
                cfg.fault_policy = FaultPolicy::AbortRun;
            },
        )),
    );
    jobs
}

#[test]
fn manifest_and_report_are_identical_across_worker_counts() {
    let mut outputs = Vec::new();
    for workers in [1usize, 8] {
        let path = tmp_path(&format!("determinism-w{workers}"));
        std::fs::remove_file(&path).ok();
        let cfg = CampaignConfig {
            workers,
            manifest_path: Some(path.clone()),
            ..fast_config()
        };
        let outcome = Campaign::new(cfg)
            .run(determinism_jobs())
            .expect("campaign runs");
        let manifest = std::fs::read_to_string(&path).expect("manifest written");
        let report = ffsim_driver::report::render(&outcome.records);
        outputs.push((manifest, report));
    }
    assert_eq!(
        outputs[0].0, outputs[1].0,
        "manifests differ across worker counts"
    );
    assert_eq!(
        outputs[0].1, outputs[1].1,
        "reports differ across worker counts"
    );
}

#[test]
fn resume_skips_recorded_jobs_and_runs_only_the_rest() {
    let path = tmp_path("resume");
    std::fs::remove_file(&path).ok();
    let cfg = CampaignConfig {
        manifest_path: Some(path.clone()),
        ..fast_config()
    };

    let first_calls = Arc::new(AtomicU32::new(0));
    let make_jobs = |n: usize, calls: &Arc<AtomicU32>| -> Vec<Job> {
        (0..n)
            .map(|i| {
                let calls = Arc::clone(calls);
                Job::new(
                    format!("job-{i}"),
                    WrongPathMode::ConvergenceExploitation,
                    Arc::new(move || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        Ok((countdown(TRIPS)?, Memory::new()))
                    }),
                )
                .with_core(CoreConfig::tiny_for_tests())
            })
            .collect()
    };

    let first = Campaign::new(cfg.clone())
        .run(make_jobs(4, &first_calls))
        .expect("first campaign runs");
    assert_eq!(first.executed, 4);
    assert_eq!(first.resumed, 0);
    assert_eq!(first_calls.load(Ordering::SeqCst), 4);

    let second_calls = Arc::new(AtomicU32::new(0));
    let second = Campaign::new(cfg)
        .run(make_jobs(8, &second_calls))
        .expect("second campaign runs");
    assert_eq!(second.resumed, 4, "recorded jobs skipped");
    assert_eq!(second.executed, 4, "only unfinished jobs ran");
    assert_eq!(
        second_calls.load(Ordering::SeqCst),
        4,
        "resumed jobs' workload builders never invoked"
    );
    assert_eq!(second.records.len(), 8);
}

#[test]
fn corrupt_manifest_is_quarantined_and_the_campaign_completes() {
    let path = tmp_path("corrupt-recovery");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("corrupt")).ok();
    let cfg = CampaignConfig {
        manifest_path: Some(path.clone()),
        ..fast_config()
    };

    // First run populates a healthy manifest; then damage it by cutting
    // the file mid-body, as a torn write would.
    let first = Campaign::new(cfg.clone())
        .run(vec![tiny_job(
            "a",
            WrongPathMode::ConvergenceExploitation,
            countdown_div,
        )])
        .expect("first campaign runs");
    assert_eq!(first.executed, 1);
    assert!(first.quarantines.is_empty());
    let healthy = std::fs::read_to_string(&path).expect("manifest written");
    std::fs::write(&path, &healthy[..healthy.len() / 2]).expect("truncate manifest");

    // The resumed campaign must not panic and must not trust the torn
    // file: it quarantines, re-runs everything, and completes.
    let second = Campaign::new(cfg.clone())
        .run(vec![
            tiny_job("a", WrongPathMode::ConvergenceExploitation, countdown_div),
            tiny_job("b", WrongPathMode::NoWrongPath, countdown_div),
        ])
        .expect("corrupt manifest must not abort the campaign");
    assert_eq!(second.resumed, 0, "torn records must not be trusted");
    assert_eq!(second.executed, 2);
    let [quarantine] = &second.quarantines[..] else {
        panic!(
            "expected exactly one quarantine notice: {:?}",
            second.quarantines
        );
    };
    assert!(
        matches!(quarantine.error, ffsim_driver::ManifestError::Truncated(_)),
        "{:?}",
        quarantine.error
    );
    assert!(quarantine.quarantined_to.exists(), "evidence preserved");

    // Third run resumes from the rewritten manifest as if nothing
    // happened.
    let third = Campaign::new(cfg)
        .run(vec![
            tiny_job("a", WrongPathMode::ConvergenceExploitation, countdown_div),
            tiny_job("b", WrongPathMode::NoWrongPath, countdown_div),
        ])
        .expect("third campaign runs");
    assert_eq!(third.resumed, 2);
    assert_eq!(third.executed, 0);
    assert!(third.quarantines.is_empty());
}

#[test]
fn cancelling_the_campaign_stops_promptly_and_leaves_work_unrecorded() {
    let campaign = Campaign::new(CampaignConfig {
        default_timeout: None, // only campaign cancellation can stop the hang
        ..fast_config()
    });
    let token = campaign.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
    });

    let jobs = vec![tiny_job(
        "endless",
        WrongPathMode::NoWrongPath,
        infinite_loop,
    )];
    let start = std::time::Instant::now();
    let outcome = campaign.run(jobs).expect("campaign returns");
    canceller.join().expect("canceller joins");

    assert!(outcome.cancelled);
    assert!(
        !outcome.records.contains_key("endless"),
        "cancelled job stays unrecorded so a resume re-runs it"
    );
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "cancellation was prompt"
    );
}

#[test]
fn telemetry_records_timing_without_touching_the_report() {
    let jobs = || {
        WrongPathMode::ALL
            .into_iter()
            .map(|mode| tiny_job(&format!("countdown/{mode}"), mode, || countdown(200)))
            .collect::<Vec<_>>()
    };

    let quiet = Campaign::new(fast_config()).run(jobs()).expect("quiet run");
    let observed = Campaign::new(CampaignConfig {
        telemetry: ffsim_driver::TelemetryConfig {
            enabled: true,
            heartbeat: Duration::from_millis(5),
        },
        ..fast_config()
    })
    .run(jobs())
    .expect("telemetry run");

    for record in observed.records.values() {
        let timing = record.timing.expect("telemetry run records timing");
        assert!(timing.run_ms >= timing.sim_wall_ms);
        assert_eq!(record.status, JobStatus::Completed);
        let cpi = record.cpi.expect("telemetry run records a CPI stack");
        let summary = record.summary.as_ref().expect("completed job has summary");
        assert_eq!(
            cpi.total(),
            summary.cycles,
            "CPI attribution telescopes to the cycle count"
        );
    }
    for record in quiet.records.values() {
        assert!(record.timing.is_none(), "telemetry off records no timing");
        assert!(record.cpi.is_none(), "telemetry off records no CPI stack");
    }
    // The deterministic report is identical either way: timing, CPI
    // stacks, and heartbeats ride stderr and the manifest only.
    assert_eq!(
        ffsim_driver::report::render(&quiet.records),
        ffsim_driver::report::render(&observed.records)
    );
    assert!(!ffsim_driver::report::render_timing(&observed.records).is_empty());
    assert!(!ffsim_driver::report::render_cpi(&observed.records).is_empty());
}
