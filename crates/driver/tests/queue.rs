//! End-to-end tests for the durable campaign job queue: journaled
//! crash-consistent ingest, lease edges (deadline zero, expiry racing
//! commit, dangling-lease reclaim), poison-job quarantine, weighted fair
//! scheduling, priority preemption, saturation backpressure, and
//! byte-identical reports across kill/resume and journal damage.

use ffsim_core::{CancelToken, WrongPathMode};
use ffsim_driver::{
    report, CampaignSpec, Enqueued, Job, JobQueue, JobRecord, JobRunner, QueueConfig, QueueError,
    RetryPolicy, RunContext, TelemetryConfig, WorkloadFn,
};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Program, Reg};
use ffsim_uarch::CoreConfig;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const TRIPS: i64 = 500;

fn countdown(trips: i64) -> Result<Program, ffsim_core::SimError> {
    let i = Reg::new(1);
    let mut a = Asm::new();
    a.li(i, trips);
    a.label("loop");
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn workload(trips: i64) -> WorkloadFn {
    Arc::new(move || Ok((countdown(trips)?, Memory::new())))
}

fn job(id: &str, trips: i64) -> Job {
    Job::new(id, WrongPathMode::WrongPathEmulation, workload(trips))
        .with_core(CoreConfig::tiny_for_tests())
}

/// Two campaigns × two jobs each: the standard fixture most tests use.
fn standard_jobs() -> Vec<(&'static str, Job)> {
    vec![
        ("alpha", job("alpha/fast", TRIPS / 2)),
        ("alpha", job("alpha/slow", TRIPS)),
        ("beta", job("beta/fast", TRIPS / 2)),
        ("beta", job("beta/slow", TRIPS)),
    ]
}

fn qcfg(dir: &Path) -> QueueConfig {
    QueueConfig {
        workers: 1,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        default_timeout: Some(Duration::from_secs(60)),
        telemetry: TelemetryConfig::default(),
        ..QueueConfig::new(dir)
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn open_with_standard_jobs(cfg: QueueConfig) -> JobQueue {
    let queue = JobQueue::open(cfg).expect("queue opens");
    queue
        .register(&CampaignSpec::new("alpha"))
        .expect("register");
    queue
        .register(&CampaignSpec::new("beta"))
        .expect("register");
    for (campaign, j) in standard_jobs() {
        assert_eq!(
            queue.enqueue(campaign, j).expect("enqueue"),
            Enqueued::Accepted
        );
    }
    queue
}

/// The reference report: the same four jobs drained with no
/// interruptions, crashes, or preemption.
fn reference_report(name: &str) -> String {
    let dir = tmp_dir(name);
    let queue = open_with_standard_jobs(qcfg(&dir));
    let outcome = queue.drain().expect("drain");
    assert_eq!(outcome.records.len(), 4);
    report::render(&outcome.records)
}

// ---------------------------------------------------------------------
// Plumbing and validation.
// ---------------------------------------------------------------------

#[test]
fn unknown_campaign_and_duplicates_are_typed_errors() {
    let dir = tmp_dir("queue_validation");
    let queue = JobQueue::open(qcfg(&dir)).expect("open");
    assert!(matches!(
        queue.enqueue("nope", job("nope/x", 10)),
        Err(QueueError::UnknownCampaign(_))
    ));
    queue.register(&CampaignSpec::new("a")).expect("register");
    queue.enqueue("a", job("a/x", 10)).expect("first enqueue");
    assert!(matches!(
        queue.enqueue("a", job("a/x", 10)),
        Err(QueueError::DuplicateJob(_))
    ));
    assert!(matches!(
        queue.register(&CampaignSpec::new("w").with_weight(0)),
        Err(QueueError::InvalidConfig(_))
    ));
}

#[test]
fn saturation_is_backpressure_not_corruption() {
    let dir = tmp_dir("queue_saturated");
    let cfg = QueueConfig {
        capacity: 2,
        ..qcfg(&dir)
    };
    let queue = JobQueue::open(cfg).expect("open");
    queue.register(&CampaignSpec::new("a")).expect("register");
    queue.enqueue("a", job("a/1", 10)).expect("fits");
    queue.enqueue("a", job("a/2", 10)).expect("fits");
    assert_eq!(
        queue.enqueue("a", job("a/3", 10)),
        Err(QueueError::Saturated {
            depth: 2,
            capacity: 2
        })
    );
    // Draining frees capacity.
    queue.drain().expect("drain");
    assert_eq!(
        queue.enqueue("a", job("a/3", 10)).expect("fits now"),
        Enqueued::Accepted
    );
}

// ---------------------------------------------------------------------
// Lease edges.
// ---------------------------------------------------------------------

/// A zero lease deadline means every lease is immediately reclaimable —
/// but with a single worker nothing reaps mid-run, so every job still
/// completes exactly once.
#[test]
fn lease_deadline_zero_completes_with_a_single_worker() {
    let dir = tmp_dir("queue_lease_zero");
    let cfg = QueueConfig {
        lease: Duration::ZERO,
        ..qcfg(&dir)
    };
    let queue = open_with_standard_jobs(cfg);
    let outcome = queue.drain().expect("drain");
    assert_eq!(outcome.records.len(), 4);
    assert_eq!(outcome.executed, 4);
    assert!(outcome.poison.is_empty());
}

/// Counts executions and forces the lease to expire at the exact moment
/// the record is ready: commit must win and the job must not re-run.
struct ExpireAtCommit<'q> {
    queue: &'q JobQueue,
    runs: AtomicUsize,
}

impl JobRunner for ExpireAtCommit<'_> {
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        let record = ctx.execute(job, takeback);
        // The lease deadline is zero, so this marks *this* job's lease
        // as expired (and fires its take-back token) just before the
        // worker commits the finished record.
        self.queue.reap_expired();
        record
    }
}

#[test]
fn commit_wins_over_a_lease_expiring_at_commit_time() {
    let dir = tmp_dir("queue_commit_wins");
    let cfg = QueueConfig {
        lease: Duration::ZERO,
        ..qcfg(&dir)
    };
    let queue = open_with_standard_jobs(cfg);
    let runner = ExpireAtCommit {
        queue: &queue,
        runs: AtomicUsize::new(0),
    };
    let outcome = queue.drain_with(&runner).expect("drain");
    assert_eq!(outcome.records.len(), 4);
    assert_eq!(
        runner.runs.load(Ordering::SeqCst),
        4,
        "no job may execute twice when its commit races the expiry"
    );
    assert_eq!(outcome.executed, 4);
    assert_eq!(outcome.cache_hits, 0);
    assert_eq!(
        outcome.lease_expiries, 0,
        "an expiry that lost to the commit is not an expiry"
    );
    assert!(outcome.poison.is_empty());
}

/// Panics identically on one job until the queue quarantines it.
struct PoisonPill;

impl JobRunner for PoisonPill {
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        assert!(job.id != "beta/slow", "boom");
        ctx.execute(job, takeback)
    }
}

#[test]
fn repeated_identical_panics_quarantine_the_job_as_poison() {
    let dir = tmp_dir("queue_poison");
    let cfg = QueueConfig {
        max_lease_failures: 2,
        ..qcfg(&dir)
    };
    let queue = open_with_standard_jobs(cfg);
    let outcome = queue.drain_with(&PoisonPill).expect("drain");
    assert_eq!(outcome.records.len(), 3, "the poison job never commits");
    assert_eq!(outcome.poison.len(), 1);
    let poison = &outcome.poison[0];
    assert_eq!(poison.id, "beta/slow");
    assert_eq!(poison.campaign, "beta");
    assert_eq!(poison.failures, 2);
    assert_eq!(poison.error, "panic: boom");

    let appendix = report::render_poison(&outcome.poison);
    assert!(appendix.contains("beta/slow [beta]: 2 identical failures, last: panic: boom"));

    // The quarantine is durable: a fresh open refuses to re-run it.
    drop(queue);
    let queue = JobQueue::open(QueueConfig {
        max_lease_failures: 2,
        ..qcfg(&dir)
    })
    .expect("reopen");
    queue
        .register(&CampaignSpec::new("beta"))
        .expect("register");
    assert_eq!(
        queue
            .enqueue("beta", job("beta/slow", TRIPS))
            .expect("enqueue"),
        Enqueued::Poisoned
    );
}

// ---------------------------------------------------------------------
// Crash, damage, and resume.
// ---------------------------------------------------------------------

/// Simulates kill -9 mid-drain: when the trigger job starts, the service
/// stop token fires and the runner abandons the job, leaving its lease
/// journaled and dangling.
struct KillAt<'q> {
    queue: &'q JobQueue,
    trigger: &'static str,
}

impl JobRunner for KillAt<'_> {
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        if job.id == self.trigger {
            self.queue.cancel_token().cancel();
            return None;
        }
        ctx.execute(job, takeback)
    }
}

#[test]
fn killed_and_resumed_drain_yields_a_byte_identical_report() {
    let reference = reference_report("queue_reference");
    let dir = tmp_dir("queue_kill_resume");
    let queue = open_with_standard_jobs(qcfg(&dir));
    let runner = KillAt {
        queue: &queue,
        trigger: "beta/fast",
    };
    let outcome = queue.drain_with(&runner).expect("interrupted drain");
    assert!(outcome.cancelled);
    assert!(outcome.records.len() < 4, "the kill landed mid-drain");
    drop(queue);

    // A new process: reopen, re-register, re-enqueue the same sequence.
    let queue = JobQueue::open(qcfg(&dir)).expect("reopen");
    assert_eq!(
        queue.recovery().re_leased,
        1,
        "the dangling lease is reclaimed with its budget intact"
    );
    queue
        .register(&CampaignSpec::new("alpha"))
        .expect("register");
    queue
        .register(&CampaignSpec::new("beta"))
        .expect("register");
    let mut accepted = 0;
    for (campaign, j) in standard_jobs() {
        match queue.enqueue(campaign, j).expect("enqueue") {
            Enqueued::Accepted => accepted += 1,
            Enqueued::AlreadyComplete => {}
            Enqueued::Poisoned => panic!("nothing was poisoned"),
        }
    }
    assert!(accepted >= 1, "the killed job must re-run");
    let outcome = queue.drain().expect("resumed drain");
    assert_eq!(outcome.records.len(), 4);
    assert_eq!(report::render(&outcome.records), reference);
}

#[test]
fn torn_journal_tail_is_dropped_and_resume_is_byte_identical() {
    let reference = reference_report("queue_reference_torn");
    let dir = tmp_dir("queue_torn_tail");
    let queue = open_with_standard_jobs(qcfg(&dir));
    let outcome = queue.drain().expect("drain");
    let report_before = report::render(&outcome.records);
    assert_eq!(report_before, reference);
    drop(queue);

    // A crash mid-append leaves a half-written record at the tail.
    let journal = dir.join("queue.journal");
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    bytes.extend_from_slice(b"{\n  \"record\": \"leased\",\n  \"job\": \"al");
    std::fs::write(&journal, &bytes).expect("tear the tail");

    let queue = JobQueue::open(qcfg(&dir)).expect("reopen");
    assert!(queue.recovery().torn_tail_dropped);
    assert!(queue.recovery().quarantines.is_empty());
    queue
        .register(&CampaignSpec::new("alpha"))
        .expect("register");
    queue
        .register(&CampaignSpec::new("beta"))
        .expect("register");
    for (campaign, j) in standard_jobs() {
        assert_eq!(
            queue.enqueue(campaign, j).expect("enqueue"),
            Enqueued::AlreadyComplete,
            "every result is still durable"
        );
    }
    let outcome = queue.drain().expect("no-op drain");
    assert_eq!(outcome.executed, 0);
    assert_eq!(report::render(&outcome.records), reference);
}

#[test]
fn mid_journal_corruption_quarantines_but_results_survive() {
    let reference = reference_report("queue_reference_corrupt");
    let dir = tmp_dir("queue_corrupt");
    let queue = open_with_standard_jobs(qcfg(&dir));
    queue.drain().expect("drain");
    drop(queue);

    // Flip bytes inside the FIRST record: damage before the tail is
    // corruption, not a torn append.
    let journal = dir.join("queue.journal");
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    let damaged = text.replacen("alpha", "XXXXX", 1);
    assert_ne!(damaged, text);
    std::fs::write(&journal, &damaged).expect("damage the journal");

    let queue = JobQueue::open(qcfg(&dir)).expect("reopen");
    assert_eq!(
        queue.recovery().quarantines.len(),
        1,
        "the journal is quarantined as evidence"
    );
    assert!(dir.join("queue.corrupt").exists());
    queue
        .register(&CampaignSpec::new("alpha"))
        .expect("register");
    queue
        .register(&CampaignSpec::new("beta"))
        .expect("register");
    for (campaign, j) in standard_jobs() {
        assert_eq!(
            queue.enqueue(campaign, j).expect("enqueue"),
            Enqueued::AlreadyComplete,
            "results live in the shards, not the journal"
        );
    }
    let outcome = queue.drain().expect("drain");
    assert_eq!(outcome.executed, 0);
    assert_eq!(report::render(&outcome.records), reference);
}

#[test]
fn compaction_snapshots_fold_the_journal_and_preserve_resume() {
    let reference = reference_report("queue_reference_compact");
    let dir = tmp_dir("queue_compact");
    let cfg = QueueConfig {
        compact_every: 3,
        ..qcfg(&dir)
    };
    let queue = open_with_standard_jobs(cfg.clone());
    queue.drain().expect("drain");
    assert!(
        dir.join("queue.snapshot").exists(),
        "4 jobs × 3 records crosses the compaction threshold"
    );
    drop(queue);

    let queue = JobQueue::open(cfg).expect("reopen replays snapshot + tail");
    queue
        .register(&CampaignSpec::new("alpha"))
        .expect("register");
    queue
        .register(&CampaignSpec::new("beta"))
        .expect("register");
    for (campaign, j) in standard_jobs() {
        assert_eq!(
            queue.enqueue(campaign, j).expect("enqueue"),
            Enqueued::AlreadyComplete
        );
    }
    let outcome = queue.drain().expect("drain");
    assert_eq!(outcome.executed, 0);
    assert_eq!(report::render(&outcome.records), reference);
}

#[test]
fn identical_points_resume_from_the_cache_across_queue_lives() {
    let dir_a = tmp_dir("queue_cache_a");
    let dir_b = tmp_dir("queue_cache_b");
    let cache = tmp_dir("queue_cache_store");
    let cfg = |dir: &Path| QueueConfig {
        cache_dir: Some(cache.clone()),
        ..qcfg(dir)
    };
    let first = open_with_standard_jobs(cfg(&dir_a)).drain().expect("drain");
    // alpha/fast and beta/fast (and the two slow jobs) are identical
    // campaign points, so the content-addressed cache dedups them even
    // within the first run: 2 misses simulate, 2 hits are re-keyed.
    assert_eq!(first.cache_hits, 2);
    assert_eq!(first.cache_misses, 2);

    // A brand-new queue directory, same campaign points: everything is
    // served from the content-addressed cache without simulating.
    let second = open_with_standard_jobs(cfg(&dir_b)).drain().expect("drain");
    assert_eq!(second.cache_hits, 4);
    assert_eq!(second.executed, 4);
    // The summary table ignores the `cached` provenance flag, so the
    // cache-served run renders byte-identically.
    assert_eq!(
        report::render(&first.records),
        report::render(&second.records)
    );
}

// ---------------------------------------------------------------------
// Scheduling: fairness and preemption.
// ---------------------------------------------------------------------

/// Logs the execution order, then delegates to the real engine.
struct OrderLog {
    order: Mutex<Vec<String>>,
}

impl JobRunner for OrderLog {
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        self.order.lock().expect("order log").push(job.id.clone());
        ctx.execute(job, takeback)
    }
}

#[test]
fn deficit_round_robin_shares_workers_by_weight_deterministically() {
    let dir = tmp_dir("queue_drr");
    let queue = JobQueue::open(qcfg(&dir)).expect("open");
    queue
        .register(&CampaignSpec::new("a").with_weight(2))
        .expect("register");
    queue
        .register(&CampaignSpec::new("b").with_weight(1))
        .expect("register");
    for i in 1..=4 {
        queue
            .enqueue("a", job(&format!("a/{i}"), 10))
            .expect("enqueue");
        queue
            .enqueue("b", job(&format!("b/{i}"), 10))
            .expect("enqueue");
    }
    let runner = OrderLog {
        order: Mutex::new(Vec::new()),
    };
    let outcome = queue.drain_with(&runner).expect("drain");
    assert_eq!(outcome.records.len(), 8);
    let order = runner.order.into_inner().expect("order log");
    assert_eq!(
        order,
        ["a/1", "a/2", "b/1", "a/3", "a/4", "b/2", "b/3", "b/4"],
        "weight 2:1 serves two of `a` per one of `b`, ties by campaign id"
    );
}

/// While the first low-priority job runs, enqueues a high-priority job
/// and waits for its own take-back: the preemption path end to end.
struct PreemptProbe<'q> {
    queue: &'q JobQueue,
    fired: AtomicBool,
    order: Mutex<Vec<String>>,
}

impl JobRunner for PreemptProbe<'_> {
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        self.order.lock().expect("order log").push(job.id.clone());
        if job.id.starts_with("low/") && !self.fired.swap(true, Ordering::SeqCst) {
            self.queue
                .enqueue("high", super_job())
                .expect("priority enqueue");
            // The enqueue outranks this running job with no idle worker:
            // the queue must take this lease back via the token.
            while !takeback.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            return None;
        }
        ctx.execute(job, takeback)
    }
}

fn super_job() -> Job {
    job("high/urgent", 10)
}

#[test]
fn a_high_priority_enqueue_preempts_without_failing_the_victim() {
    let dir = tmp_dir("queue_preempt");
    let queue = JobQueue::open(qcfg(&dir)).expect("open");
    queue.register(&CampaignSpec::new("low")).expect("register");
    queue
        .register(&CampaignSpec::new("high").with_priority(5))
        .expect("register");
    queue.enqueue("low", job("low/1", 10)).expect("enqueue");
    queue.enqueue("low", job("low/2", 10)).expect("enqueue");
    let runner = PreemptProbe {
        queue: &queue,
        fired: AtomicBool::new(false),
        order: Mutex::new(Vec::new()),
    };
    let outcome = queue.drain_with(&runner).expect("drain");
    assert_eq!(outcome.records.len(), 3);
    assert_eq!(outcome.preempted, 1);
    assert!(
        outcome.poison.is_empty(),
        "preemption never burns the victim's budget"
    );
    let order = runner.order.into_inner().expect("order log");
    assert_eq!(
        order,
        ["low/1", "high/urgent", "low/1", "low/2"],
        "the victim re-runs right after the preemptor, front of its FIFO"
    );
}
