//! Property test for the durable queue's headline invariant: for an
//! identical enqueue sequence, the merged report is byte-identical
//! whatever the campaign mix, priorities, weights, and wherever a
//! kill -9 lands mid-drain — resumed runs re-execute only
//! leased-but-uncommitted jobs and converge on the same bytes.

use ffsim_core::{CancelToken, WrongPathMode};
use ffsim_driver::{
    report, CampaignSpec, Enqueued, Job, JobQueue, JobRecord, JobRunner, QueueConfig, RetryPolicy,
    RunContext, TelemetryConfig, WorkloadFn,
};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Program, Reg};
use ffsim_uarch::CoreConfig;
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn countdown(trips: i64) -> Result<Program, ffsim_core::SimError> {
    let i = Reg::new(1);
    let mut a = Asm::new();
    a.li(i, trips);
    a.label("loop");
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn workload(trips: i64) -> WorkloadFn {
    Arc::new(move || Ok((countdown(trips)?, Memory::new())))
}

/// One randomly drawn campaign: (priority, weight, per-job trip counts).
type CampaignDraw = (i32, u32, Vec<i64>);

fn campaign_jobs(index: usize, draw: &CampaignDraw) -> (String, CampaignSpec, Vec<Job>) {
    let id = format!("c{index}");
    let (priority, weight, trips) = draw;
    let spec = CampaignSpec::new(&id)
        .with_priority(*priority)
        .with_weight(*weight);
    let jobs = trips
        .iter()
        .enumerate()
        .map(|(j, &t)| {
            Job::new(
                format!("{id}/j{j}"),
                WrongPathMode::WrongPathEmulation,
                workload(t),
            )
            .with_core(CoreConfig::tiny_for_tests())
            .with_priority(i32::try_from(j % 2).expect("small"))
        })
        .collect();
    (id, spec, jobs)
}

fn qcfg(dir: &Path, workers: usize) -> QueueConfig {
    QueueConfig {
        workers,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        default_timeout: Some(Duration::from_secs(60)),
        compact_every: 5, // small, so compaction interleaves with kills
        telemetry: TelemetryConfig::default(),
        ..QueueConfig::new(dir)
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn open_and_fill(dir: &Path, workers: usize, campaigns: &[CampaignDraw]) -> JobQueue {
    let queue = JobQueue::open(qcfg(dir, workers)).expect("queue opens");
    for (index, draw) in campaigns.iter().enumerate() {
        let (id, spec, jobs) = campaign_jobs(index, draw);
        queue.register(&spec).expect("register");
        for job in jobs {
            match queue.enqueue(&id, job).expect("enqueue") {
                Enqueued::Accepted | Enqueued::AlreadyComplete => {}
                Enqueued::Poisoned => panic!("no job may poison in this property"),
            }
        }
    }
    queue
}

/// Cancels the service token (the in-process stand-in for kill -9: the
/// journaled lease dangles exactly as a SIGKILL would leave it) when the
/// n-th execution starts, abandoning that job.
struct KillAtNth<'q> {
    queue: &'q JobQueue,
    countdown: AtomicU64,
}

impl JobRunner for KillAtNth<'_> {
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.queue.cancel_token().cancel();
            return None;
        }
        ctx.execute(job, takeback)
    }
}

proptest! {
    #[test]
    fn killed_resumed_drains_match_uninterrupted_bytes(
        campaigns in vec((-2i32..3, 1u32..4, vec(10i64..60, 2..4)), 2..5),
        kill_at in 1u64..12,
        workers in 1usize..3,
    ) {
        let total: usize = campaigns.iter().map(|(_, _, t)| t.len()).sum();

        // Reference: the same enqueue sequence, drained uninterrupted.
        let dir_ref = tmp_dir("qprop_ref");
        let reference = {
            let queue = open_and_fill(&dir_ref, workers, &campaigns);
            let outcome = queue.drain().expect("reference drain");
            prop_assert_eq!(outcome.records.len(), total);
            report::render(&outcome.records)
        };

        // Interrupted: kill when the kill_at-th execution starts (a
        // kill_at past the job count means the drain finishes first —
        // resume must then be a byte-identical no-op).
        let dir = tmp_dir("qprop_killed");
        {
            let queue = open_and_fill(&dir, workers, &campaigns);
            let killer = KillAtNth { queue: &queue, countdown: AtomicU64::new(kill_at) };
            queue.drain_with(&killer).expect("interrupted drain");
        }

        // Resume in a "new process": reopen, re-register, re-enqueue the
        // identical sequence, drain to completion.
        let queue = open_and_fill(&dir, workers, &campaigns);
        let outcome = queue.drain().expect("resumed drain");
        prop_assert_eq!(outcome.records.len(), total);
        prop_assert!(outcome.poison.is_empty());
        prop_assert_eq!(report::render(&outcome.records), reference.clone());
    }
}

#[test]
fn property_harness_smoke() {
    // One fixed case outside the proptest loop, so a failure here gives
    // a readable panic rather than a shrunk counterexample.
    let campaigns = vec![(1, 2, vec![20, 30]), (-1, 1, vec![25, 35, 15])];
    let dir_ref = tmp_dir("qprop_smoke_ref");
    let reference = {
        let queue = open_and_fill(&dir_ref, 2, &campaigns);
        report::render(&queue.drain().expect("drain").records)
    };
    let dir = tmp_dir("qprop_smoke");
    {
        let queue = open_and_fill(&dir, 2, &campaigns);
        let killer = KillAtNth {
            queue: &queue,
            countdown: AtomicU64::new(2),
        };
        queue.drain_with(&killer).expect("interrupted drain");
    }
    let queue = open_and_fill(&dir, 2, &campaigns);
    let outcome = queue.drain().expect("resumed drain");
    assert_eq!(outcome.records.len(), 5);
    assert_eq!(report::render(&outcome.records), reference);
}
