//! Campaign jobs and their per-attempt records.

use crate::json::Value;
use ffsim_core::{CpiStack, SimConfig, SimError, SimResult, WrongPathMode};
use ffsim_emu::Memory;
use ffsim_isa::Program;
use ffsim_uarch::CoreConfig;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Builds a job's workload. Jobs carry a *builder* rather than a built
/// `(Program, Memory)` pair so each attempt starts from pristine state —
/// a retry after a panic or fault must not observe memory mutated by the
/// failed attempt.
pub type WorkloadFn = Arc<dyn Fn() -> Result<(Program, Memory), SimError> + Send + Sync>;

/// Adjusts the [`SimConfig`] of each attempt (fault injection, watchdog
/// overrides, convergence tunables, …). Runs before the driver installs the
/// per-attempt cancellation token, so a tweak cannot detach an attempt from
/// supervision.
pub type ConfigTweak = Arc<dyn Fn(&mut SimConfig) + Send + Sync>;

/// One unit of campaign work: a workload simulated in one wrong-path mode
/// on one core configuration.
#[derive(Clone)]
pub struct Job {
    /// Unique id; the manifest, report and resume logic key on it.
    pub id: String,
    /// The wrong-path mode requested. With degradation enabled, persistent
    /// failures retry down the ladder from here.
    pub mode: WrongPathMode,
    /// The simulated core.
    pub core: CoreConfig,
    /// Measured-instruction budget per run (`None` = run to `halt`).
    pub max_instructions: Option<u64>,
    /// Wall-clock deadline per attempt; `None` falls back to the campaign
    /// default, and `Some(None)` cannot be expressed — campaigns always
    /// have *some* deadline unless the campaign default is also `None`.
    pub timeout: Option<Duration>,
    /// Attempts per rung; `None` uses the campaign retry policy's count.
    pub max_attempts: Option<u32>,
    /// Whether persistent failures walk down the degradation ladder
    /// (`true` by default). When `false`, exhausting the requested mode's
    /// attempts fails the job outright.
    pub degrade: bool,
    /// Builds the workload for each attempt.
    pub workload: WorkloadFn,
    /// Optional per-attempt configuration adjustment.
    pub tweak: Option<ConfigTweak>,
    /// Scheduling priority used by the durable job queue (higher runs
    /// first and may preempt running lower-priority jobs; `0` by
    /// default). Plain campaigns ignore it, and it is deliberately not
    /// part of the job record: priority shapes *when* a job runs, never
    /// what it produces.
    pub priority: i32,
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("max_instructions", &self.max_instructions)
            .field("timeout", &self.timeout)
            .field("max_attempts", &self.max_attempts)
            .field("degrade", &self.degrade)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

impl Job {
    /// A job with campaign-default supervision (default timeout and retry
    /// policy, degradation enabled).
    #[must_use]
    pub fn new(id: impl Into<String>, mode: WrongPathMode, workload: WorkloadFn) -> Job {
        Job {
            id: id.into(),
            mode,
            core: CoreConfig::golden_cove_like(),
            max_instructions: None,
            timeout: None,
            max_attempts: None,
            degrade: true,
            workload,
            tweak: None,
            priority: 0,
        }
    }

    /// Sets the simulated core.
    #[must_use]
    pub fn with_core(mut self, core: CoreConfig) -> Job {
        self.core = core;
        self
    }

    /// Caps measured instructions per run.
    #[must_use]
    pub fn with_max_instructions(mut self, max: u64) -> Job {
        self.max_instructions = Some(max);
        self
    }

    /// Overrides the campaign's per-attempt wall-clock deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Job {
        self.timeout = Some(timeout);
        self
    }

    /// Overrides the campaign's attempts-per-rung count.
    #[must_use]
    pub fn with_max_attempts(mut self, attempts: u32) -> Job {
        self.max_attempts = Some(attempts.max(1));
        self
    }

    /// Disables the degradation ladder for this job: failure at the
    /// requested mode is final.
    #[must_use]
    pub fn no_degradation(mut self) -> Job {
        self.degrade = false;
        self
    }

    /// Installs a per-attempt configuration tweak.
    #[must_use]
    pub fn with_tweak(mut self, tweak: ConfigTweak) -> Job {
        self.tweak = Some(tweak);
        self
    }

    /// Sets the queue scheduling priority (higher runs first).
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> Job {
        self.priority = priority;
        self
    }
}

/// The next rung down the degradation ladder, or `None` at the bottom.
///
/// The ladder walks from the most capable wrong-path technique to the most
/// robust: `wpemul → conv → instrec → nowp`. Each step removes the
/// machinery most likely to be implicated in the failure (frontend
/// emulation first, then address recovery, then reconstruction).
#[must_use]
pub fn ladder_next(mode: WrongPathMode) -> Option<WrongPathMode> {
    // `WrongPathMode::ALL` is ordered from most robust to most capable,
    // so the ladder is a walk backwards through it.
    let rung = WrongPathMode::ALL.iter().position(|&m| m == mode)?;
    rung.checked_sub(1).map(|down| WrongPathMode::ALL[down])
}

/// Parses a mode from its figure label (`nowp`, `instrec`, `conv`,
/// `wpemul`), as stored in the manifest.
#[must_use]
pub fn mode_from_label(label: &str) -> Option<WrongPathMode> {
    WrongPathMode::ALL.into_iter().find(|m| m.label() == label)
}

/// Terminal status of a job within a campaign.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobStatus {
    /// Succeeded in the requested mode.
    Completed,
    /// Succeeded, but only after degrading to a lower-fidelity mode.
    Degraded,
    /// Every rung (or the only rung) exhausted its attempts.
    Failed,
}

impl JobStatus {
    /// Manifest label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Degraded => "degraded",
            JobStatus::Failed => "failed",
        }
    }

    /// Inverse of [`JobStatus::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<JobStatus> {
        match label {
            "completed" => Some(JobStatus::Completed),
            "degraded" => Some(JobStatus::Degraded),
            "failed" => Some(JobStatus::Failed),
            _ => None,
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What one attempt of one job produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AttemptOutcome {
    /// The simulation ran to completion.
    Success,
    /// A typed simulation error (fatal fault, invalid config, …).
    Fault(String),
    /// The watchdog expired the attempt's wall-clock deadline.
    DeadlineExceeded,
    /// The campaign was cancelled while the attempt ran.
    Cancelled,
    /// The attempt panicked; the payload is the panic message.
    Panic(String),
}

impl AttemptOutcome {
    fn to_value(&self) -> Value {
        let (kind, detail) = match self {
            AttemptOutcome::Success => ("success", None),
            AttemptOutcome::Fault(msg) => ("fault", Some(msg.clone())),
            AttemptOutcome::DeadlineExceeded => ("deadline_exceeded", None),
            AttemptOutcome::Cancelled => ("cancelled", None),
            AttemptOutcome::Panic(msg) => ("panic", Some(msg.clone())),
        };
        let mut members = vec![("kind".to_string(), Value::Str(kind.into()))];
        if let Some(detail) = detail {
            members.push(("detail".to_string(), Value::Str(detail)));
        }
        Value::Obj(members)
    }

    fn from_value(value: &Value) -> Option<AttemptOutcome> {
        let detail = || {
            value
                .get("detail")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string()
        };
        match value.get("kind")?.as_str()? {
            "success" => Some(AttemptOutcome::Success),
            "fault" => Some(AttemptOutcome::Fault(detail())),
            "deadline_exceeded" => Some(AttemptOutcome::DeadlineExceeded),
            "cancelled" => Some(AttemptOutcome::Cancelled),
            "panic" => Some(AttemptOutcome::Panic(detail())),
            _ => None,
        }
    }
}

/// One attempt in a job's history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttemptRecord {
    /// 1-based attempt number within the job (across all rungs).
    pub attempt: u32,
    /// The mode this attempt ran in.
    pub mode: WrongPathMode,
    /// What happened.
    pub outcome: AttemptOutcome,
    /// Backoff slept after this attempt, in milliseconds (deterministic —
    /// see [`RetryPolicy::backoff`](crate::RetryPolicy::backoff)).
    pub backoff_ms: u64,
}

impl AttemptRecord {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("attempt".into(), Value::Int(i64::from(self.attempt))),
            ("mode".into(), Value::Str(self.mode.label().into())),
            ("outcome".into(), self.outcome.to_value()),
            (
                "backoff_ms".into(),
                Value::Int(i64::try_from(self.backoff_ms).unwrap_or(i64::MAX)),
            ),
        ])
    }

    fn from_value(value: &Value) -> Option<AttemptRecord> {
        Some(AttemptRecord {
            attempt: u32::try_from(value.get("attempt")?.as_int()?).ok()?,
            mode: mode_from_label(value.get("mode")?.as_str()?)?,
            outcome: AttemptOutcome::from_value(value.get("outcome")?)?,
            backoff_ms: u64::try_from(value.get("backoff_ms")?.as_int()?).ok()?,
        })
    }
}

/// The deterministic slice of a [`SimResult`] persisted in the manifest.
///
/// Wall-clock time is deliberately excluded: manifests must be
/// byte-identical across runs and worker counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobSummary {
    /// Correct-path instructions retired.
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Wrong-path instructions injected into the pipeline.
    pub wrong_path_instructions: u64,
    /// Final architectural state digest.
    pub state_digest: u64,
}

impl JobSummary {
    /// Extracts the deterministic slice of a full result.
    #[must_use]
    pub fn of(result: &SimResult) -> JobSummary {
        JobSummary {
            instructions: result.instructions,
            cycles: result.cycles,
            wrong_path_instructions: result.wrong_path_instructions,
            state_digest: result.state_digest,
        }
    }

    /// Projected performance, instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    fn to_value(self) -> Value {
        Value::Obj(vec![
            ("instructions".into(), int_value(self.instructions)),
            ("cycles".into(), int_value(self.cycles)),
            (
                "wrong_path_instructions".into(),
                int_value(self.wrong_path_instructions),
            ),
            (
                "state_digest".into(),
                Value::Str(format!("{:#018x}", self.state_digest)),
            ),
        ])
    }

    fn from_value(value: &Value) -> Option<JobSummary> {
        let digest = value.get("state_digest")?.as_str()?;
        Some(JobSummary {
            instructions: u64::try_from(value.get("instructions")?.as_int()?).ok()?,
            cycles: u64::try_from(value.get("cycles")?.as_int()?).ok()?,
            wrong_path_instructions: u64::try_from(value.get("wrong_path_instructions")?.as_int()?)
                .ok()?,
            state_digest: u64::from_str_radix(digest.strip_prefix("0x")?, 16).ok()?,
        })
    }
}

fn int_value(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Host-side timing breakdown of one job, recorded only when campaign
/// telemetry is enabled ([`TelemetryConfig`](crate::TelemetryConfig)).
///
/// Wall-clock values vary run to run, so the `timing` key is written to
/// the manifest only when present — with telemetry off (the default) the
/// manifest stays byte-identical to one written before this field existed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobTiming {
    /// From worker-pool start to this job's dequeue, in milliseconds.
    pub queue_wait_ms: u64,
    /// Total job wall time across all attempts, rungs, and backoff sleeps.
    pub run_ms: u64,
    /// Wall time of the successful simulation run alone (`0` for failed
    /// jobs).
    pub sim_wall_ms: u64,
}

impl JobTiming {
    fn to_value(self) -> Value {
        Value::Obj(vec![
            ("queue_wait_ms".into(), int_value(self.queue_wait_ms)),
            ("run_ms".into(), int_value(self.run_ms)),
            ("sim_wall_ms".into(), int_value(self.sim_wall_ms)),
        ])
    }

    fn from_value(value: &Value) -> Option<JobTiming> {
        Some(JobTiming {
            queue_wait_ms: u64::try_from(value.get("queue_wait_ms")?.as_int()?).ok()?,
            run_ms: u64::try_from(value.get("run_ms")?.as_int()?).ok()?,
            sim_wall_ms: u64::try_from(value.get("sim_wall_ms")?.as_int()?).ok()?,
        })
    }
}

/// Everything the campaign recorded about one job: final status, the full
/// attempt history, and (on success) the result summary.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The job id.
    pub id: String,
    /// The mode the job asked for.
    pub requested_mode: WrongPathMode,
    /// The mode it last ran in (differs from `requested_mode` iff the job
    /// degraded).
    pub final_mode: WrongPathMode,
    /// Terminal status.
    pub status: JobStatus,
    /// Every attempt, in order, across all degradation rungs.
    pub attempts: Vec<AttemptRecord>,
    /// Deterministic result summary (successful jobs only).
    pub summary: Option<JobSummary>,
    /// Host-side timing breakdown; `Some` only when the campaign ran with
    /// telemetry enabled.
    pub timing: Option<JobTiming>,
    /// Per-job CPI stack of the successful run; `Some` only when the
    /// campaign ran with telemetry enabled (`FFSIM_OBS`). Deterministic
    /// (simulated cycles), but opt-in like `timing` so default manifests
    /// keep their pre-CPI shape.
    pub cpi: Option<CpiStack>,
    /// Whether this record was served from the content-addressed result
    /// cache instead of a fresh simulation. Serialized (as
    /// `"cached": true`) only when set, so campaigns without a cache
    /// keep their pre-cache manifest shape. The deterministic report
    /// ignores it; the cache appendix lists it.
    pub cached: bool,
    /// The full in-memory result of the successful run. Not serialized —
    /// a resumed campaign has only the [`JobSummary`].
    pub sim: Option<SimResult>,
}

impl JobRecord {
    /// Serializes the persistent slice (everything but [`JobRecord::sim`]).
    /// The `timing` and `cpi` keys are emitted only when present, so
    /// manifests written without telemetry are byte-identical to ones
    /// written before those fields existed.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            (
                "requested_mode".into(),
                Value::Str(self.requested_mode.label().into()),
            ),
            (
                "final_mode".into(),
                Value::Str(self.final_mode.label().into()),
            ),
            ("status".into(), Value::Str(self.status.label().into())),
            (
                "attempts".into(),
                Value::Arr(self.attempts.iter().map(AttemptRecord::to_value).collect()),
            ),
            (
                "summary".into(),
                self.summary.map_or(Value::Null, JobSummary::to_value),
            ),
        ];
        if let Some(timing) = self.timing {
            members.push(("timing".into(), timing.to_value()));
        }
        if let Some(cpi) = self.cpi {
            members.push(("cpi".into(), cpi.to_value()));
        }
        if self.cached {
            members.push(("cached".into(), Value::Bool(true)));
        }
        Value::Obj(members)
    }

    /// Deserializes a record written by [`JobRecord::to_value`].
    #[must_use]
    pub fn from_value(value: &Value) -> Option<JobRecord> {
        let summary = match value.get("summary")? {
            Value::Null => None,
            v => Some(JobSummary::from_value(v)?),
        };
        let timing = match value.get("timing") {
            None | Some(Value::Null) => None,
            Some(v) => Some(JobTiming::from_value(v)?),
        };
        let cpi = match value.get("cpi") {
            None | Some(Value::Null) => None,
            Some(v) => Some(CpiStack::from_value(v)?),
        };
        let cached = matches!(value.get("cached"), Some(Value::Bool(true)));
        Some(JobRecord {
            id: value.get("id")?.as_str()?.to_string(),
            requested_mode: mode_from_label(value.get("requested_mode")?.as_str()?)?,
            final_mode: mode_from_label(value.get("final_mode")?.as_str()?)?,
            status: JobStatus::from_label(value.get("status")?.as_str()?)?,
            attempts: value
                .get("attempts")?
                .as_arr()?
                .iter()
                .map(AttemptRecord::from_value)
                .collect::<Option<Vec<_>>>()?,
            summary,
            timing,
            cpi,
            cached,
            sim: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_walks_to_the_bottom() {
        let mut mode = WrongPathMode::WrongPathEmulation;
        let mut rungs = vec![mode];
        while let Some(next) = ladder_next(mode) {
            mode = next;
            rungs.push(mode);
        }
        assert_eq!(
            rungs,
            vec![
                WrongPathMode::WrongPathEmulation,
                WrongPathMode::ConvergenceExploitation,
                WrongPathMode::InstructionReconstruction,
                WrongPathMode::NoWrongPath,
            ]
        );
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in WrongPathMode::ALL {
            assert_eq!(mode_from_label(mode.label()), Some(mode));
        }
        assert_eq!(mode_from_label("bogus"), None);
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = JobRecord {
            id: "bfs/wpemul".into(),
            requested_mode: WrongPathMode::WrongPathEmulation,
            final_mode: WrongPathMode::ConvergenceExploitation,
            status: JobStatus::Degraded,
            attempts: vec![
                AttemptRecord {
                    attempt: 1,
                    mode: WrongPathMode::WrongPathEmulation,
                    outcome: AttemptOutcome::Fault("wrong-path fault: misaligned".into()),
                    backoff_ms: 25,
                },
                AttemptRecord {
                    attempt: 2,
                    mode: WrongPathMode::ConvergenceExploitation,
                    outcome: AttemptOutcome::Success,
                    backoff_ms: 0,
                },
            ],
            summary: Some(JobSummary {
                instructions: 1000,
                cycles: 2500,
                wrong_path_instructions: 123,
                state_digest: 0xdead_beef_0123_4567,
            }),
            timing: Some(JobTiming {
                queue_wait_ms: 12,
                run_ms: 345,
                sim_wall_ms: 330,
            }),
            cpi: Some({
                let mut stack = CpiStack::new();
                stack.add(ffsim_core::StallClass::Base, false, 2000);
                stack.add(ffsim_core::StallClass::WrongPathFetch, true, 500);
                stack
            }),
            cached: false,
            sim: None,
        };
        let json = record.to_value().to_json();
        let parsed = JobRecord::from_value(&crate::json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed.id, record.id);
        assert_eq!(parsed.requested_mode, record.requested_mode);
        assert_eq!(parsed.final_mode, record.final_mode);
        assert_eq!(parsed.status, record.status);
        assert_eq!(parsed.attempts, record.attempts);
        assert_eq!(parsed.summary, record.summary);
        assert_eq!(parsed.timing, record.timing);
        assert_eq!(parsed.cpi, record.cpi);
    }

    #[test]
    fn timing_key_is_absent_without_telemetry() {
        let record = JobRecord {
            id: "quiet".into(),
            requested_mode: WrongPathMode::NoWrongPath,
            final_mode: WrongPathMode::NoWrongPath,
            status: JobStatus::Completed,
            attempts: vec![],
            summary: None,
            timing: None,
            cpi: None,
            cached: false,
            sim: None,
        };
        let json = record.to_value().to_json();
        assert!(
            !json.contains("timing"),
            "manifests without telemetry must not change shape"
        );
        assert!(
            !json.contains("cpi"),
            "manifests without telemetry must not change shape"
        );
        let parsed = JobRecord::from_value(&crate::json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed.timing, None);
        assert_eq!(parsed.cpi, None);
    }

    #[test]
    fn failed_record_has_null_summary() {
        let record = JobRecord {
            id: "x".into(),
            requested_mode: WrongPathMode::NoWrongPath,
            final_mode: WrongPathMode::NoWrongPath,
            status: JobStatus::Failed,
            attempts: vec![],
            summary: None,
            timing: None,
            cpi: None,
            cached: false,
            sim: None,
        };
        let json = record.to_value().to_json();
        let parsed = JobRecord::from_value(&crate::json::parse(&json).unwrap()).unwrap();
        assert!(parsed.summary.is_none());
        assert_eq!(parsed.status, JobStatus::Failed);
    }
}
