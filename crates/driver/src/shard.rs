//! Sharded campaign manifests: one crash-consistent file per shard.
//!
//! A single-manifest campaign serializes every checkpoint through one
//! JSON file under one lock — a single point of both contention and
//! corruption. Sharding splits the manifest into `n` independent files,
//! each with its own lock, its own checksum trailer, and its own
//! quarantine path. Jobs are assigned to shards by a stable FNV-1a hash
//! of the job id, so the assignment is a property of the campaign, not of
//! which worker happened to execute the job: a resumed campaign looks for
//! a job's record in exactly the shard where an earlier run would have
//! committed it.
//!
//! # The shard-loss degradation ladder
//!
//! Loading a sharded manifest degrades per shard, mirroring the
//! `wpemul → conv → instrec → nowp` ladder at the simulation layer:
//!
//! 1. **healthy** — the shard verifies its checksum trailer and loads;
//! 2. **corrupt** (truncated, checksum mismatch, malformed) — *only that
//!    shard* is quarantined to a `.corrupt` sibling and its jobs re-run;
//!    every other shard's records survive untouched;
//! 3. **missing** — the shard contributes nothing and its jobs re-run.
//!
//! A campaign therefore never loses more than one shard's uncommitted
//! jobs to any single-file failure.
//!
//! # Merge
//!
//! The merged view is deterministic: records are unioned shard by shard
//! in ascending shard order into an id-sorted map. Job ids are unique
//! within a campaign and hash to exactly one shard, so collisions can
//! only come from hand-edited files; the lowest shard index wins,
//! deterministically.
//!
//! Shard files embed both their index and the campaign's shard count
//! (`<stem>.shard-<k>-of-<n>.<ext>`): resuming with a different shard
//! count reads none of the old shards (jobs re-run, nothing is
//! mis-assigned), and each shard quarantines to its own distinct
//! `.corrupt` path.

use crate::job::JobRecord;
use crate::manifest::{self, ManifestError, ManifestIo, Quarantine};
use ffsim_core::SimError;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// Upper bound on the shard count. One shard per worker is the intended
/// shape; anything past this is a configuration typo, not a plan.
pub const MAX_SHARDS: usize = 4096;

/// Upper bound on the worker count (`0` still means one per CPU).
pub const MAX_WORKERS: usize = 4096;

/// Validates a campaign shard count at configuration time.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for `0` (a manifest with no shards can
/// record nothing) and for counts above [`MAX_SHARDS`].
pub fn validate_shard_count(shards: usize) -> Result<(), SimError> {
    if shards == 0 {
        return Err(SimError::InvalidConfig(
            "shard count must be at least 1".into(),
        ));
    }
    if shards > MAX_SHARDS {
        return Err(SimError::InvalidConfig(format!(
            "shard count {shards} exceeds the maximum of {MAX_SHARDS}"
        )));
    }
    Ok(())
}

/// Validates a campaign worker count at configuration time (`0` is the
/// documented "one per CPU" default and stays valid).
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for counts above [`MAX_WORKERS`].
pub fn validate_worker_count(workers: usize) -> Result<(), SimError> {
    if workers > MAX_WORKERS {
        return Err(SimError::InvalidConfig(format!(
            "worker count {workers} exceeds the maximum of {MAX_WORKERS}"
        )));
    }
    Ok(())
}

/// Where a sharded campaign's manifest files live: a base path plus a
/// validated shard count. See the [module docs](self) for the naming
/// scheme and assignment function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    base: PathBuf,
    shards: usize,
}

impl ShardLayout {
    /// A layout of `shards` files derived from `base` (the path a
    /// single-manifest campaign would have used).
    ///
    /// # Errors
    ///
    /// See [`validate_shard_count`].
    pub fn new(base: PathBuf, shards: usize) -> Result<ShardLayout, SimError> {
        validate_shard_count(shards)?;
        Ok(ShardLayout { base, shards })
    }

    /// The shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a job commits to: a stable hash of the id, independent
    /// of worker assignment, scheduling, and resume history.
    #[must_use]
    pub fn shard_of(&self, job_id: &str) -> usize {
        (crate::fnv::fnv1a(job_id.as_bytes()) % self.shards as u64) as usize
    }

    /// The on-disk path of shard `index`. The `shard-<k>-of-<n>` tag is
    /// inserted *before* the extension so each shard's quarantine file
    /// (`.corrupt`, derived via `with_extension`) is distinct.
    ///
    /// # Panics
    ///
    /// `index` must be below the shard count.
    #[must_use]
    pub fn path(&self, index: usize) -> PathBuf {
        assert!(index < self.shards, "shard {index} of {}", self.shards);
        let stem = self
            .base
            .file_stem()
            .map_or_else(|| "manifest".into(), |s| s.to_string_lossy().into_owned());
        let ext = self
            .base
            .extension()
            .map_or_else(|| "json".into(), |e| e.to_string_lossy().into_owned());
        self.base
            .with_file_name(format!("{stem}.shard-{index}-of-{}.{ext}", self.shards))
    }
}

/// One shard's in-memory records plus its backing file (absent for
/// in-memory campaigns).
#[derive(Debug)]
struct Slot {
    path: Option<PathBuf>,
    records: Mutex<BTreeMap<String, JobRecord>>,
}

impl Slot {
    fn new(path: Option<PathBuf>) -> Slot {
        Slot {
            path,
            records: Mutex::new(BTreeMap::new()),
        }
    }
}

/// The campaign's record store: in-memory, a single legacy manifest, or a
/// sharded layout — one interface over all three, so the campaign runner
/// is agnostic to how (and whether) records persist.
#[derive(Debug)]
pub struct ManifestStore {
    slots: Vec<Slot>,
    layout: Option<ShardLayout>,
}

impl ManifestStore {
    /// A store that never touches disk (campaigns without a manifest).
    #[must_use]
    pub fn in_memory() -> ManifestStore {
        ManifestStore {
            slots: vec![Slot::new(None)],
            layout: None,
        }
    }

    /// The legacy single-file store: every record in one manifest at
    /// `path`, byte-identical to pre-sharding campaigns.
    #[must_use]
    pub fn single(path: PathBuf) -> ManifestStore {
        ManifestStore {
            slots: vec![Slot::new(Some(path))],
            layout: None,
        }
    }

    /// A sharded store over `layout`.
    #[must_use]
    pub fn sharded(layout: ShardLayout) -> ManifestStore {
        ManifestStore {
            slots: (0..layout.shards())
                .map(|k| Slot::new(Some(layout.path(k))))
                .collect(),
            layout: Some(layout),
        }
    }

    /// The slot a job id commits to.
    fn slot_of(&self, job_id: &str) -> &Slot {
        let index = self
            .layout
            .as_ref()
            .map_or(0, |layout| layout.shard_of(job_id));
        &self.slots[index]
    }

    /// Loads every shard from disk, walking the shard-loss degradation
    /// ladder per shard (healthy → quarantined → missing; see the
    /// [module docs](self)). Returns one [`Quarantine`] notice per
    /// damaged shard, in shard order.
    ///
    /// # Errors
    ///
    /// Filesystem-level failures only (unreadable file, failed
    /// quarantine rename); damaged *contents* degrade instead of
    /// failing.
    pub fn load(&mut self) -> Result<Vec<Quarantine>, ManifestError> {
        let mut quarantines = Vec::new();
        for slot in &mut self.slots {
            let Some(path) = &slot.path else { continue };
            let (records, quarantine) = manifest::load_or_quarantine(path)?;
            *lock(&slot.records) = records;
            quarantines.extend(quarantine);
        }
        Ok(quarantines)
    }

    /// Whether a record for `job_id` is already committed.
    #[must_use]
    pub fn contains(&self, job_id: &str) -> bool {
        lock(&self.slot_of(job_id).records).contains_key(job_id)
    }

    /// Commits one record: inserts it into its shard and atomically
    /// rewrites that shard's file through `io`. Only the owning shard is
    /// locked and only its file is rewritten, so commits to different
    /// shards scale independently and a torn write can damage at most
    /// one shard's latest generation — which the loader then quarantines
    /// without touching the others.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] from the shard save; the in-memory insert
    /// is rolled back so a failed commit leaves memory and disk agreed.
    pub fn commit(&self, io: &mut dyn ManifestIo, record: JobRecord) -> Result<(), ManifestError> {
        crate::hostobs::inc("manifest_commits_total");
        crate::hostobs::scope(ffsim_obs::Phase::ManifestIo, || {
            let slot = self.slot_of(&record.id);
            let id = record.id.clone();
            let mut records = lock(&slot.records);
            let previous = records.insert(id.clone(), record);
            if let Some(path) = &slot.path {
                if let Err(e) = manifest::save_with(io, path, &records) {
                    // Roll back: the record is not durable, so a resumed
                    // campaign must re-run it; memory must agree.
                    match previous {
                        Some(old) => records.insert(id, old),
                        None => records.remove(&id),
                    };
                    return Err(e);
                }
            }
            Ok(())
        })
    }

    /// The deterministic merged view: shards unioned in ascending shard
    /// order into an id-sorted map (first shard wins on the impossible
    /// duplicate).
    #[must_use]
    pub fn merged(&self) -> BTreeMap<String, JobRecord> {
        let mut merged = BTreeMap::new();
        for slot in &self.slots {
            for (id, record) in lock(&slot.records).iter() {
                merged.entry(id.clone()).or_insert_with(|| record.clone());
            }
        }
        merged
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobStatus, JobSummary};
    use crate::manifest::{FaultyIo, RealIo};
    use ffsim_core::WrongPathMode;

    fn record(id: &str) -> JobRecord {
        JobRecord {
            id: id.into(),
            requested_mode: WrongPathMode::NoWrongPath,
            final_mode: WrongPathMode::NoWrongPath,
            status: JobStatus::Completed,
            attempts: vec![],
            summary: Some(JobSummary {
                instructions: 1,
                cycles: 2,
                wrong_path_instructions: 0,
                state_digest: 7,
            }),
            timing: None,
            cpi: None,
            cached: false,
            sim: None,
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffsim-driver-shard-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shard_count_boundaries_are_invalid_config() {
        // Zero shards: nothing could ever be recorded.
        assert!(matches!(
            validate_shard_count(0),
            Err(SimError::InvalidConfig(_))
        ));
        // One shard is the degenerate-but-legal case.
        assert!(validate_shard_count(1).is_ok());
        // The maximum is inclusive...
        assert!(validate_shard_count(MAX_SHARDS).is_ok());
        // ...and one past it is a typo, not a plan.
        assert!(matches!(
            validate_shard_count(MAX_SHARDS + 1),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn worker_count_boundaries_are_invalid_config() {
        assert!(validate_worker_count(0).is_ok(), "0 means one per CPU");
        assert!(validate_worker_count(MAX_WORKERS).is_ok());
        assert!(matches!(
            validate_worker_count(MAX_WORKERS + 1),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn layout_paths_are_distinct_and_quarantine_safely() {
        let layout = ShardLayout::new(PathBuf::from("/tmp/c/m.json"), 3).unwrap();
        let paths: Vec<PathBuf> = (0..3).map(|k| layout.path(k)).collect();
        assert_eq!(paths[0], PathBuf::from("/tmp/c/m.shard-0-of-3.json"));
        // Quarantine paths (`.corrupt` via with_extension) must not
        // collide across shards.
        let corrupt: std::collections::HashSet<PathBuf> =
            paths.iter().map(|p| p.with_extension("corrupt")).collect();
        assert_eq!(corrupt.len(), 3, "quarantine paths collide: {corrupt:?}");
    }

    #[test]
    fn assignment_is_stable_and_in_range() {
        let layout = ShardLayout::new(PathBuf::from("m.json"), 5).unwrap();
        for id in ["a", "bfs/wpemul", "countdown-div/conv", ""] {
            let shard = layout.shard_of(id);
            assert!(shard < 5);
            assert_eq!(shard, layout.shard_of(id), "assignment must be stable");
        }
    }

    #[test]
    fn sharded_store_round_trips_and_merges_deterministically() {
        let dir = temp_dir("roundtrip");
        let layout = ShardLayout::new(dir.join("m.json"), 4).unwrap();
        let store = ManifestStore::sharded(layout.clone());
        let ids = ["a", "b", "c", "d", "e", "f", "g", "h"];
        for id in ids {
            store.commit(&mut RealIo, record(id)).unwrap();
        }
        let merged = store.merged();
        assert_eq!(merged.len(), ids.len());

        // A fresh store over the same layout loads the same merged view.
        let mut resumed = ManifestStore::sharded(layout.clone());
        assert!(resumed.load().unwrap().is_empty());
        let remerged = resumed.merged();
        assert_eq!(remerged.len(), ids.len());
        for id in ids {
            assert!(resumed.contains(id), "{id} lost across resume");
            // And the record lives in exactly the shard the hash names.
            let shard_path = layout.path(layout.shard_of(id));
            let text = std::fs::read_to_string(&shard_path).unwrap();
            assert!(text.contains(&format!("\"{id}\"")), "{id} not in its shard");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_quarantines_alone() {
        let dir = temp_dir("one-corrupt");
        let layout = ShardLayout::new(dir.join("m.json"), 4).unwrap();
        let store = ManifestStore::sharded(layout.clone());
        let ids = ["a", "b", "c", "d", "e", "f", "g", "h"];
        for id in ids {
            store.commit(&mut RealIo, record(id)).unwrap();
        }
        // Truncate exactly one shard mid-body.
        let victim = layout.path(1);
        let text = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, &text[..text.len() / 2]).unwrap();

        let mut resumed = ManifestStore::sharded(layout.clone());
        let quarantines = resumed.load().unwrap();
        assert_eq!(quarantines.len(), 1, "only the damaged shard degrades");
        assert!(matches!(quarantines[0].error, ManifestError::Truncated(_)));
        assert!(quarantines[0].quarantined_to.exists());
        assert!(!victim.exists(), "damaged shard moved aside");

        // Exactly the victim shard's records are gone; every other
        // record survived.
        let lost: Vec<&str> = ids
            .iter()
            .copied()
            .filter(|id| layout.shard_of(id) == 1)
            .collect();
        assert!(!lost.is_empty(), "test needs at least one id in shard 1");
        for id in ids {
            assert_eq!(
                resumed.contains(id),
                !lost.contains(&id),
                "{id}: wrong survival"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_degrades_to_empty() {
        let dir = temp_dir("missing");
        let layout = ShardLayout::new(dir.join("m.json"), 3).unwrap();
        let store = ManifestStore::sharded(layout.clone());
        for id in ["a", "b", "c", "d", "e"] {
            store.commit(&mut RealIo, record(id)).unwrap();
        }
        std::fs::remove_file(layout.path(0)).unwrap();
        let mut resumed = ManifestStore::sharded(layout);
        // A missing shard is not corruption: no quarantine, no error.
        assert!(resumed.load().unwrap().is_empty());
        assert!(resumed.merged().len() < 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_commit_rolls_back_and_previous_generation_survives() {
        let dir = temp_dir("faulty-commit");
        let layout = ShardLayout::new(dir.join("m.json"), 2).unwrap();
        let store = ManifestStore::sharded(layout.clone());
        store.commit(&mut RealIo, record("a")).unwrap();
        store.commit(&mut RealIo, record("b")).unwrap();

        let faults = [
            FaultyIo {
                short_write: Some(9),
                ..FaultyIo::default()
            },
            FaultyIo {
                enospc: true,
                ..FaultyIo::default()
            },
            FaultyIo {
                fail_rename: true,
                ..FaultyIo::default()
            },
        ];
        for mut io in faults {
            let err = store
                .commit(&mut io, record("late"))
                .expect_err("fault must surface");
            assert!(matches!(err, ManifestError::Io(_)), "{err:?}");
            // Memory rolled back: the record is not durable.
            assert!(!store.contains("late"), "{io:?}: phantom commit");
            // And every shard on disk still loads its previous
            // generation intact.
            let mut reloaded = ManifestStore::sharded(layout.clone());
            assert!(
                reloaded.load().unwrap().is_empty(),
                "{io:?} corrupted a shard"
            );
            assert!(reloaded.contains("a") && reloaded.contains("b"));
        }
        // Once the fault clears, the commit goes through.
        store.commit(&mut RealIo, record("late")).unwrap();
        assert!(store.contains("late"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
