//! Wall-clock watchdog: expires [`CancelToken`]s of attempts that outlive
//! their deadline.
//!
//! Simulations are cancelled *cooperatively* — the simulator checks its
//! token once per instruction — so a hung attempt is never killed at the
//! thread level. The watchdog is a single polling thread shared by all
//! workers: each attempt registers its token and deadline, and the guard
//! returned by [`Watchdog::guard`] deregisters on drop (normal completion)
//! before the deadline fires.

use ffsim_core::CancelToken;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct Entry {
    id: u64,
    token: CancelToken,
    deadline: Option<Instant>,
    /// An additional cancellation source scoped to this attempt: the
    /// queue's per-job preemption/lease token. When it fires, the
    /// attempt's token is cancelled just like a campaign-wide stop.
    parent: Option<CancelToken>,
}

struct Shared {
    entries: Mutex<WatchState>,
    wake: Condvar,
}

struct WatchState {
    next_id: u64,
    entries: Vec<Entry>,
    shutdown: bool,
}

/// The watchdog thread plus its registry of supervised attempts.
pub struct Watchdog {
    shared: Arc<Shared>,
    campaign_token: CancelToken,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog").finish_non_exhaustive()
    }
}

/// RAII registration of one attempt with the watchdog; dropping it
/// deregisters the attempt.
pub struct WatchGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl std::fmt::Debug for WatchGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchGuard").field("id", &self.id).finish()
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let mut state = lock_ignoring_poison(&self.shared.entries);
        state.entries.retain(|e| e.id != self.id);
    }
}

impl Watchdog {
    const POLL: Duration = Duration::from_millis(2);

    /// Spawns the watchdog thread. `campaign_token` is the campaign-wide
    /// cancellation token: once it fires, the watchdog propagates
    /// cancellation to every registered attempt so in-flight simulations
    /// stop promptly.
    #[must_use]
    pub fn spawn(campaign_token: CancelToken) -> Watchdog {
        let shared = Arc::new(Shared {
            entries: Mutex::new(WatchState {
                next_id: 0,
                entries: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_campaign = campaign_token.clone();
        let thread = std::thread::Builder::new()
            .name("campaign-watchdog".into())
            .spawn(move || watch_loop(&thread_shared, &thread_campaign))
            .expect("spawning the watchdog thread cannot fail outside resource exhaustion");
        Watchdog {
            shared,
            campaign_token,
            thread: Some(thread),
        }
    }

    /// Registers an attempt: `token` is expired if `deadline` passes first,
    /// and cancelled if the campaign token fires. Drop the guard when the
    /// attempt finishes.
    #[must_use]
    pub fn guard(&self, token: &CancelToken, deadline: Option<Instant>) -> WatchGuard {
        self.guard_linked(token, deadline, None)
    }

    /// [`Watchdog::guard`] with an extra per-job `parent` token: when the
    /// parent fires (queue preemption, lease takeback), the attempt's
    /// token is cancelled just as promptly as for a campaign-wide stop.
    #[must_use]
    pub fn guard_linked(
        &self,
        token: &CancelToken,
        deadline: Option<Instant>,
        parent: Option<&CancelToken>,
    ) -> WatchGuard {
        // A campaign (or parent) cancelled before registration must still
        // reach this attempt's token: the poll loop only sees live entries.
        if self.campaign_token.is_cancelled() || parent.is_some_and(CancelToken::is_cancelled) {
            token.cancel();
        }
        let mut state = lock_ignoring_poison(&self.shared.entries);
        let id = state.next_id;
        state.next_id += 1;
        state.entries.push(Entry {
            id,
            token: token.clone(),
            deadline,
            parent: parent.cloned(),
        });
        self.shared.wake.notify_one();
        WatchGuard {
            shared: Arc::clone(&self.shared),
            id,
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let mut state = lock_ignoring_poison(&self.shared.entries);
            state.shutdown = true;
        }
        self.shared.wake.notify_one();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn watch_loop(shared: &Shared, campaign: &CancelToken) {
    let mut state = lock_ignoring_poison(&shared.entries);
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        let campaign_fired = campaign.is_cancelled();
        for entry in &state.entries {
            if campaign_fired || entry.parent.as_ref().is_some_and(CancelToken::is_cancelled) {
                entry.token.cancel();
            }
            if entry.deadline.is_some_and(|d| now >= d) {
                entry.token.expire();
            }
        }
        // Park until the next poll tick; guard registration wakes us early
        // so short deadlines are honored even after long idle stretches.
        let (next, _) = shared
            .wake
            .wait_timeout(state, Watchdog::POLL)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state = next;
    }
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Worker panics are caught before they can poison driver state, but a
    // watchdog that stops supervising on poison would let hung jobs run
    // forever — keep going with the inner value.
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_core::CancelCause;

    #[test]
    fn expires_past_deadline() {
        let watchdog = Watchdog::spawn(CancelToken::new());
        let token = CancelToken::new();
        let _guard = watchdog.guard(&token, Some(Instant::now() + Duration::from_millis(10)));
        let start = Instant::now();
        while token.cause().is_none() && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(token.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn dropped_guard_is_not_expired() {
        let watchdog = Watchdog::spawn(CancelToken::new());
        let token = CancelToken::new();
        let guard = watchdog.guard(&token, Some(Instant::now() + Duration::from_millis(20)));
        drop(guard);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(token.cause(), None);
    }

    #[test]
    fn campaign_cancellation_reaches_registered_attempts() {
        let campaign = CancelToken::new();
        let watchdog = Watchdog::spawn(campaign.clone());
        let token = CancelToken::new();
        let _guard = watchdog.guard(&token, None);
        campaign.cancel();
        let start = Instant::now();
        while token.cause().is_none() && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(token.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn parent_token_cancellation_reaches_the_attempt() {
        let watchdog = Watchdog::spawn(CancelToken::new());
        let parent = CancelToken::new();
        let token = CancelToken::new();
        let _guard = watchdog.guard_linked(&token, None, Some(&parent));
        parent.cancel();
        let start = Instant::now();
        while token.cause().is_none() && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(token.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn pre_cancelled_parent_cancels_at_registration() {
        let watchdog = Watchdog::spawn(CancelToken::new());
        let parent = CancelToken::new();
        parent.cancel();
        let token = CancelToken::new();
        let _guard = watchdog.guard_linked(&token, None, Some(&parent));
        assert_eq!(token.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn pre_cancelled_campaign_cancels_at_registration() {
        let campaign = CancelToken::new();
        campaign.cancel();
        let watchdog = Watchdog::spawn(campaign);
        let token = CancelToken::new();
        let _guard = watchdog.guard(&token, None);
        assert_eq!(token.cause(), Some(CancelCause::Cancelled));
    }
}
