//! Campaign manifest: the on-disk record of completed jobs.
//!
//! The manifest is written incrementally — rewritten atomically
//! (temp-file + rename) after every job that finishes — so a campaign
//! killed mid-flight (SIGTERM, OOM, power) loses only its in-flight jobs.
//! Resuming a campaign against the same manifest path re-runs exactly the
//! jobs without a record.
//!
//! Serialization is deterministic: records are sorted by job id and
//! contain no wall-clock values, so the same campaign produces a
//! byte-identical manifest whatever the worker count or kill timing.

use crate::job::JobRecord;
use crate::json::{parse, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Current manifest format version; bumped on incompatible layout changes.
pub const MANIFEST_VERSION: i64 = 1;

/// Serializes `records` (keyed and therefore sorted by job id).
#[must_use]
pub fn to_json(records: &BTreeMap<String, JobRecord>) -> String {
    Value::Obj(vec![
        ("version".into(), Value::Int(MANIFEST_VERSION)),
        (
            "jobs".into(),
            Value::Arr(records.values().map(JobRecord::to_value).collect()),
        ),
    ])
    .to_json()
}

/// Parses a manifest document into records keyed by job id.
///
/// # Errors
///
/// A message describing the syntax error, version mismatch, or malformed
/// record. Callers treat any error as fatal: silently dropping records
/// would re-run completed jobs at best and mask corruption at worst.
pub fn from_json(text: &str) -> Result<BTreeMap<String, JobRecord>, String> {
    let doc = parse(text)?;
    let version = doc
        .get("version")
        .and_then(Value::as_int)
        .ok_or("manifest missing version")?;
    if version != MANIFEST_VERSION {
        return Err(format!(
            "manifest version {version} unsupported (expected {MANIFEST_VERSION})"
        ));
    }
    let jobs = doc
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or("manifest missing jobs array")?;
    let mut records = BTreeMap::new();
    for (i, job) in jobs.iter().enumerate() {
        let record = JobRecord::from_value(job).ok_or(format!("malformed job record #{i}"))?;
        if records.insert(record.id.clone(), record).is_some() {
            return Err(format!("duplicate job id in record #{i}"));
        }
    }
    Ok(records)
}

/// Loads a manifest from disk; a missing file is an empty manifest.
///
/// # Errors
///
/// I/O failures other than not-found, and any parse error from
/// [`from_json`].
pub fn load(path: &Path) -> Result<BTreeMap<String, JobRecord>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            from_json(&text).map_err(|e| format!("corrupt manifest {}: {e}", path.display()))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(BTreeMap::new()),
        Err(e) => Err(format!("reading manifest {}: {e}", path.display())),
    }
}

/// Atomically replaces the manifest at `path` (write temp file in the same
/// directory, then rename): a crash mid-save leaves the previous manifest
/// intact rather than a truncated one.
///
/// # Errors
///
/// I/O failures writing the temp file or renaming it into place.
pub fn save(path: &Path, records: &BTreeMap<String, JobRecord>) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, to_json(records))
        .map_err(|e| format!("writing manifest {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("installing manifest {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AttemptOutcome, AttemptRecord, JobStatus, JobSummary};
    use ffsim_core::WrongPathMode;

    fn record(id: &str) -> JobRecord {
        JobRecord {
            id: id.into(),
            requested_mode: WrongPathMode::ConvergenceExploitation,
            final_mode: WrongPathMode::ConvergenceExploitation,
            status: JobStatus::Completed,
            attempts: vec![AttemptRecord {
                attempt: 1,
                mode: WrongPathMode::ConvergenceExploitation,
                outcome: AttemptOutcome::Success,
                backoff_ms: 0,
            }],
            summary: Some(JobSummary {
                instructions: 10,
                cycles: 20,
                wrong_path_instructions: 1,
                state_digest: 0x42,
            }),
            timing: None,
            cpi: None,
            sim: None,
        }
    }

    #[test]
    fn round_trips_and_sorts_by_id() {
        let mut records = BTreeMap::new();
        // Insertion order here is reversed; serialization must sort.
        records.insert("z".to_string(), record("z"));
        records.insert("a".to_string(), record("a"));
        let json = to_json(&records);
        assert!(json.find("\"a\"").unwrap() < json.find("\"z\"").unwrap());
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back["a"].status, JobStatus::Completed);
    }

    #[test]
    fn missing_file_is_empty() {
        let dir = std::env::temp_dir().join("ffsim-driver-manifest-missing");
        assert!(load(&dir.join("does-not-exist.json")).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_version_and_duplicates() {
        assert!(from_json("{\"version\": 99, \"jobs\": []}").is_err());
        let one = record("a").to_value().to_json();
        let one = one.trim_end();
        let doc = format!("{{\"version\": 1, \"jobs\": [{one}, {one}]}}");
        assert!(from_json(&doc).is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("ffsim-driver-manifest-rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let mut records = BTreeMap::new();
        records.insert("a".to_string(), record("a"));
        save(&path, &records).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back["a"].summary.unwrap().state_digest, 0x42);
        std::fs::remove_dir_all(&dir).ok();
    }
}
