//! Campaign manifest: the on-disk record of completed jobs.
//!
//! The manifest is written incrementally — rewritten atomically
//! (temp-file + rename) after every job that finishes — so a campaign
//! killed mid-flight (SIGTERM, OOM, power) loses only its in-flight jobs.
//! Resuming a campaign against the same manifest path re-runs exactly the
//! jobs without a record.
//!
//! Serialization is deterministic: records are sorted by job id and
//! contain no wall-clock values, so the same campaign produces a
//! byte-identical manifest whatever the worker count or kill timing.
//!
//! # Crash consistency
//!
//! Atomic rename protects against *our* crashes, but not against
//! filesystems that reorder data and metadata, partial copies, or stray
//! editors: the file a resume reads may be torn anyway. Every manifest
//! therefore ends with a checksum trailer line
//! (`#checksum fnv1a <16 hex digits>` over everything before it), and
//! [`load`] classifies what it finds with a typed [`ManifestError`]:
//! a file cut at *any* byte offset loses trailer bytes and surfaces as
//! [`ManifestError::Truncated`]; a flipped byte as
//! [`ManifestError::ChecksumMismatch`]; intact-but-bogus JSON as
//! [`ManifestError::Malformed`]. [`load_or_quarantine`] turns any of
//! those into a fresh start: the damaged file is renamed to
//! `<name>.corrupt` (evidence preserved), the campaign re-runs from an
//! empty manifest, and the [`Quarantine`] notice is reported instead of
//! a panic or a silent loss.
//!
//! Writes go through the [`ManifestIo`] seam so tests can inject short
//! writes, failed renames, and out-of-space errors ([`FaultyIo`]) and
//! prove the previous manifest generation survives each of them.

use crate::fnv::fnv1a;
use crate::job::JobRecord;
use crate::json::{parse, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Current manifest format version; bumped on incompatible layout changes.
pub const MANIFEST_VERSION: i64 = 1;

/// Prefix of the checksum trailer line terminating every manifest (and
/// every queue-journal record, which reuses the same seal discipline).
pub(crate) const CHECKSUM_PREFIX: &str = "#checksum fnv1a ";

/// Why a manifest could not be used. Everything but [`ManifestError::Io`]
/// means the file's *contents* are damaged and quarantining applies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ManifestError {
    /// Reading, writing, or renaming failed at the filesystem level.
    Io(String),
    /// The file ends before a complete checksum trailer — a torn or
    /// short write (every truncation lands here).
    Truncated(String),
    /// The trailer is present but disagrees with the body — bit rot or a
    /// concurrent writer.
    ChecksumMismatch(String),
    /// Checksum intact but the JSON body is not a valid manifest.
    Malformed(String),
}

impl ManifestError {
    /// Whether the error describes damaged contents (quarantinable), as
    /// opposed to an environment failure worth retrying or surfacing.
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        !matches!(self, ManifestError::Io(_))
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(m) => write!(f, "manifest i/o error: {m}"),
            ManifestError::Truncated(m) => write!(f, "manifest truncated: {m}"),
            ManifestError::ChecksumMismatch(m) => write!(f, "manifest checksum mismatch: {m}"),
            ManifestError::Malformed(m) => write!(f, "manifest malformed: {m}"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// What [`load_or_quarantine`] did with a damaged manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quarantine {
    /// The typed diagnosis of the damage.
    pub error: ManifestError,
    /// Where the damaged file was moved (sibling `.corrupt` path).
    pub quarantined_to: PathBuf,
}

impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; quarantined to {} and restarted from an empty manifest",
            self.error,
            self.quarantined_to.display()
        )
    }
}

/// Appends the checksum trailer to a serialized document body. The body
/// must end with a newline (every serializer here emits one); [`unseal`]
/// verifies and strips the trailer again. This is the crash-consistency
/// primitive shared by the campaign manifest, its shards, and the result
/// cache: any file that does not round-trip through `seal`/`unseal` is
/// treated as damaged, never trusted.
#[must_use]
pub fn seal(body: &str) -> String {
    format!("{body}{CHECKSUM_PREFIX}{:016x}\n", fnv1a(body.as_bytes()))
}

/// Verifies the checksum trailer of a sealed document and returns the
/// body.
///
/// # Errors
///
/// [`ManifestError::Truncated`] when the trailer is absent or incomplete
/// (any proper prefix of a sealed document lands here) and
/// [`ManifestError::ChecksumMismatch`] when the body hash disagrees.
pub fn unseal(text: &str) -> Result<&str, ManifestError> {
    let Some(without_final_newline) = text.strip_suffix('\n') else {
        return Err(ManifestError::Truncated(
            "file does not end with a newline".into(),
        ));
    };
    let Some(body_len) = without_final_newline.rfind('\n').map(|p| p + 1) else {
        return Err(ManifestError::Truncated("single-line file".into()));
    };
    let trailer = &without_final_newline[body_len..];
    let Some(hex) = trailer.strip_prefix(CHECKSUM_PREFIX) else {
        return Err(ManifestError::Truncated(
            "final line is not a checksum trailer".into(),
        ));
    };
    let expected = u64::from_str_radix(hex, 16)
        .map_err(|_| ManifestError::Truncated(format!("unparseable checksum `{hex}`")))?;
    let body = &text[..body_len];
    let actual = fnv1a(body.as_bytes());
    if actual != expected {
        return Err(ManifestError::ChecksumMismatch(format!(
            "trailer says {expected:016x}, body hashes to {actual:016x}"
        )));
    }
    Ok(body)
}

/// Serializes `records` (keyed and therefore sorted by job id) as the
/// JSON body, without the checksum trailer.
#[must_use]
pub fn to_json(records: &BTreeMap<String, JobRecord>) -> String {
    Value::Obj(vec![
        ("version".into(), Value::Int(MANIFEST_VERSION)),
        (
            "jobs".into(),
            Value::Arr(records.values().map(JobRecord::to_value).collect()),
        ),
    ])
    .to_json()
}

/// Serializes `records` as the full on-disk document: JSON body plus the
/// checksum trailer line.
#[must_use]
pub fn to_text(records: &BTreeMap<String, JobRecord>) -> String {
    seal(&to_json(records))
}

/// Parses a manifest JSON body into records keyed by job id.
///
/// # Errors
///
/// A message describing the syntax error, version mismatch, or malformed
/// record. Callers treat any error as fatal: silently dropping records
/// would re-run completed jobs at best and mask corruption at worst.
pub fn from_json(text: &str) -> Result<BTreeMap<String, JobRecord>, String> {
    let doc = parse(text)?;
    let version = doc
        .get("version")
        .and_then(Value::as_int)
        .ok_or("manifest missing version")?;
    if version != MANIFEST_VERSION {
        return Err(format!(
            "manifest version {version} unsupported (expected {MANIFEST_VERSION})"
        ));
    }
    let jobs = doc
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or("manifest missing jobs array")?;
    let mut records = BTreeMap::new();
    for (i, job) in jobs.iter().enumerate() {
        let record = JobRecord::from_value(job).ok_or(format!("malformed job record #{i}"))?;
        if records.insert(record.id.clone(), record).is_some() {
            return Err(format!("duplicate job id in record #{i}"));
        }
    }
    Ok(records)
}

/// Verifies the checksum trailer and parses the full on-disk document.
///
/// # Errors
///
/// [`ManifestError::Truncated`] when the trailer is absent or incomplete
/// (any proper prefix of a valid document lands here),
/// [`ManifestError::ChecksumMismatch`] when the body hash disagrees, and
/// [`ManifestError::Malformed`] when the verified body is not a valid
/// manifest.
pub fn from_text(text: &str) -> Result<BTreeMap<String, JobRecord>, ManifestError> {
    from_json(unseal(text)?).map_err(ManifestError::Malformed)
}

/// Loads a manifest from disk; a missing file is an empty manifest.
///
/// # Errors
///
/// I/O failures other than not-found, and any verification or parse
/// error from [`from_text`].
pub fn load(path: &Path) -> Result<BTreeMap<String, JobRecord>, ManifestError> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            from_text(&text).map_err(|e| e.with_context(&format!("manifest {}", path.display())))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(BTreeMap::new()),
        Err(e) => Err(ManifestError::Io(format!(
            "reading manifest {}: {e}",
            path.display()
        ))),
    }
}

impl ManifestError {
    /// Prefixes the error message with `context`, keeping the variant.
    pub(crate) fn with_context(self, context: &str) -> ManifestError {
        match self {
            ManifestError::Io(m) => ManifestError::Io(format!("{context}: {m}")),
            ManifestError::Truncated(m) => ManifestError::Truncated(format!("{context}: {m}")),
            ManifestError::ChecksumMismatch(m) => {
                ManifestError::ChecksumMismatch(format!("{context}: {m}"))
            }
            ManifestError::Malformed(m) => ManifestError::Malformed(format!("{context}: {m}")),
        }
    }
}

/// Loads a manifest, quarantining a damaged file instead of failing.
///
/// A corrupt manifest (truncated, checksum mismatch, malformed) is
/// renamed to a sibling `<name>.corrupt` file and the campaign starts
/// from an empty manifest, with the diagnosis returned as a
/// [`Quarantine`] notice for the report.
///
/// # Errors
///
/// Filesystem-level failures only: unreadable file, or the quarantine
/// rename itself failing (then the damaged file is left in place).
pub fn load_or_quarantine(
    path: &Path,
) -> Result<(BTreeMap<String, JobRecord>, Option<Quarantine>), ManifestError> {
    match load(path) {
        Ok(records) => Ok((records, None)),
        Err(error) if error.is_corruption() => {
            Ok((BTreeMap::new(), Some(quarantine_file(path, error)?)))
        }
        Err(io) => Err(io),
    }
}

/// Moves a damaged file to its sibling `<name>.corrupt` path, preserving
/// the evidence, and returns the [`Quarantine`] notice. Shared by the
/// campaign manifest, its shards, and the queue journal/snapshot — every
/// durable artifact quarantines the same way.
///
/// # Errors
///
/// [`ManifestError::Io`] when the rename itself fails (the damaged file is
/// then left in place).
pub(crate) fn quarantine_file(
    path: &Path,
    error: ManifestError,
) -> Result<Quarantine, ManifestError> {
    let quarantined_to = path.with_extension("corrupt");
    std::fs::rename(path, &quarantined_to).map_err(|e| {
        ManifestError::Io(format!(
            "quarantining {} to {}: {e}",
            path.display(),
            quarantined_to.display()
        ))
    })?;
    Ok(Quarantine {
        error,
        quarantined_to,
    })
}

/// Reads a checksum-sealed document and returns its verified body, or
/// `None` for a missing file (an empty artifact, not an error).
///
/// # Errors
///
/// [`ManifestError::Io`] for filesystem failures other than not-found, and
/// the [`unseal`] verification errors for damaged contents.
pub(crate) fn read_sealed(path: &Path) -> Result<Option<String>, ManifestError> {
    match std::fs::read_to_string(path) {
        Ok(text) => unseal(&text)
            .map(|body| Some(body.to_string()))
            .map_err(|e| e.with_context(&format!("sealed file {}", path.display()))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(ManifestError::Io(format!(
            "reading {}: {e}",
            path.display()
        ))),
    }
}

/// Atomically installs a checksum-sealed document at `path` through `io`
/// (temp file + rename, like [`save_with`]): the previous generation stays
/// intact whatever `io` does. `body` must end with a newline.
///
/// # Errors
///
/// [`ManifestError::Io`] for failures writing the temp file or renaming it
/// into place.
pub(crate) fn save_sealed_with(
    io: &mut dyn ManifestIo,
    path: &Path,
    body: &str,
) -> Result<(), ManifestError> {
    let tmp = path.with_extension("tmp");
    io.write(&tmp, seal(body).as_bytes())
        .map_err(|e| ManifestError::Io(format!("writing {}: {e}", tmp.display())))?;
    io.rename(&tmp, path)
        .map_err(|e| ManifestError::Io(format!("installing {}: {e}", path.display())))
}

/// The filesystem operations [`save_with`] performs, as a seam for fault
/// injection. Production code uses [`RealIo`].
pub trait ManifestIo {
    /// Writes `bytes` to `path`, creating or replacing it.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem failure.
    fn write(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;

    /// Atomically renames `from` onto `to`.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem failure.
    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Appends `bytes` to `path`, creating the file if absent. Used by the
    /// queue journal; unlike [`ManifestIo::write`] this is *not* atomic —
    /// a crash mid-append leaves a torn tail, which journal replay is
    /// designed to drop.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem failure.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }
}

/// The real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealIo;

impl ManifestIo for RealIo {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }
}

/// Fault-injecting [`ManifestIo`]: simulates the failure modes a manifest
/// save meets in the wild. Each knob fires on every matching call.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultyIo {
    /// Write only this many bytes, then fail — a crash or disk error
    /// mid-write leaving a torn temp file behind.
    pub short_write: Option<usize>,
    /// Report out-of-space without writing anything.
    pub enospc: bool,
    /// Fail the install rename (e.g. permissions yanked mid-campaign).
    pub fail_rename: bool,
}

impl ManifestIo for FaultyIo {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        if self.enospc {
            return Err(std::io::Error::other("no space left on device (injected)"));
        }
        if let Some(n) = self.short_write {
            std::fs::write(path, &bytes[..n.min(bytes.len())])?;
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                format!("short write: {n} of {} bytes (injected)", bytes.len()),
            ));
        }
        std::fs::write(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        if self.fail_rename {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "rename refused (injected)",
            ));
        }
        std::fs::rename(from, to)
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        if self.enospc {
            return Err(std::io::Error::other("no space left on device (injected)"));
        }
        if let Some(n) = self.short_write {
            // A torn append: only a prefix of the record reaches the disk.
            RealIo.append(path, &bytes[..n.min(bytes.len())])?;
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                format!("short append: {n} of {} bytes (injected)", bytes.len()),
            ));
        }
        RealIo.append(path, bytes)
    }
}

/// Atomically replaces the manifest at `path` through `io` (write temp
/// file in the same directory, then rename): whatever `io` does — crash
/// mid-write, refuse the rename — the previous manifest generation stays
/// intact and loadable.
///
/// # Errors
///
/// [`ManifestError::Io`] for failures writing the temp file or renaming
/// it into place.
pub fn save_with(
    io: &mut dyn ManifestIo,
    path: &Path,
    records: &BTreeMap<String, JobRecord>,
) -> Result<(), ManifestError> {
    save_sealed_with(io, path, &to_json(records))
}

/// [`save_with`] on the real filesystem.
///
/// # Errors
///
/// See [`save_with`].
pub fn save(path: &Path, records: &BTreeMap<String, JobRecord>) -> Result<(), ManifestError> {
    save_with(&mut RealIo, path, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AttemptOutcome, AttemptRecord, JobStatus, JobSummary};
    use ffsim_core::WrongPathMode;

    fn record(id: &str) -> JobRecord {
        JobRecord {
            id: id.into(),
            requested_mode: WrongPathMode::ConvergenceExploitation,
            final_mode: WrongPathMode::ConvergenceExploitation,
            status: JobStatus::Completed,
            attempts: vec![AttemptRecord {
                attempt: 1,
                mode: WrongPathMode::ConvergenceExploitation,
                outcome: AttemptOutcome::Success,
                backoff_ms: 0,
            }],
            summary: Some(JobSummary {
                instructions: 10,
                cycles: 20,
                wrong_path_instructions: 1,
                state_digest: 0x42,
            }),
            timing: None,
            cpi: None,
            cached: false,
            sim: None,
        }
    }

    fn one_record() -> BTreeMap<String, JobRecord> {
        let mut records = BTreeMap::new();
        records.insert("a".to_string(), record("a"));
        records
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ffsim-driver-manifest-{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_and_sorts_by_id() {
        let mut records = BTreeMap::new();
        // Insertion order here is reversed; serialization must sort.
        records.insert("z".to_string(), record("z"));
        records.insert("a".to_string(), record("a"));
        let text = to_text(&records);
        assert!(text.find("\"a\"").unwrap() < text.find("\"z\"").unwrap());
        let back = from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back["a"].status, JobStatus::Completed);
    }

    #[test]
    fn missing_file_is_empty() {
        let dir = std::env::temp_dir().join("ffsim-driver-manifest-missing");
        assert!(load(&dir.join("does-not-exist.json")).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_version_and_duplicates() {
        assert!(from_json("{\"version\": 99, \"jobs\": []}").is_err());
        let one = record("a").to_value().to_json();
        let one = one.trim_end();
        let doc = format!("{{\"version\": 1, \"jobs\": [{one}, {one}]}}");
        assert!(from_json(&doc).is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = temp_dir("rt");
        let path = dir.join("manifest.json");
        save(&path, &one_record()).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back["a"].summary.unwrap().state_digest, 0x42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_byte_offset_is_a_typed_error() {
        // A half-written (or worse) manifest must never panic and never
        // parse: any proper prefix loses trailer bytes.
        let full = to_text(&one_record());
        for cut in 0..full.len() {
            let err = from_text(&full[..cut]).expect_err("proper prefix must not parse");
            assert!(
                matches!(err, ManifestError::Truncated(_)),
                "cut at {cut}: expected Truncated, got {err:?}"
            );
        }
        assert!(from_text(&full).is_ok());
    }

    #[test]
    fn half_written_file_loads_as_typed_error_not_panic() {
        let dir = temp_dir("half");
        let path = dir.join("manifest.json");
        let full = to_text(&one_record());
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load(&path).expect_err("half-written manifest must not load");
        assert!(matches!(err, ManifestError::Truncated(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_is_a_checksum_mismatch() {
        let full = to_text(&one_record());
        // Flip a digit inside the body (the instruction count "10").
        let corrupted = full.replacen("10", "19", 1);
        assert_ne!(full, corrupted, "corruption must change the body");
        let err = from_text(&corrupted).expect_err("bit flip must not parse");
        assert!(matches!(err, ManifestError::ChecksumMismatch(_)), "{err:?}");
    }

    #[test]
    fn valid_checksum_over_garbage_is_malformed() {
        let body = "{\"version\": 99, \"jobs\": []}\n";
        let doc = format!("{body}{CHECKSUM_PREFIX}{:016x}\n", fnv1a(body.as_bytes()));
        let err = from_text(&doc).expect_err("bad version must not parse");
        assert!(matches!(err, ManifestError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn quarantine_moves_the_corrupt_file_and_starts_empty() {
        let dir = temp_dir("quarantine");
        let path = dir.join("manifest.json");
        std::fs::write(&path, "not a manifest at all").unwrap();
        let (records, notice) = load_or_quarantine(&path).unwrap();
        assert!(records.is_empty());
        let notice = notice.expect("corruption must be reported");
        assert!(matches!(notice.error, ManifestError::Truncated(_)));
        assert!(notice.quarantined_to.ends_with("manifest.corrupt"));
        assert!(!path.exists(), "damaged file must be moved away");
        assert!(notice.quarantined_to.exists(), "evidence must be preserved");
        // A subsequent load starts clean — the campaign can resume.
        assert!(load(&path).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn healthy_manifest_is_not_quarantined() {
        let dir = temp_dir("healthy");
        let path = dir.join("manifest.json");
        save(&path, &one_record()).unwrap();
        let (records, notice) = load_or_quarantine(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(notice.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_faults_leave_the_previous_generation_intact() {
        let dir = temp_dir("faults");
        let path = dir.join("manifest.json");
        save(&path, &one_record()).unwrap();
        let mut bigger = one_record();
        bigger.insert("b".to_string(), record("b"));

        let faults = [
            FaultyIo {
                short_write: Some(17),
                ..FaultyIo::default()
            },
            FaultyIo {
                enospc: true,
                ..FaultyIo::default()
            },
            FaultyIo {
                fail_rename: true,
                ..FaultyIo::default()
            },
        ];
        for mut io in faults {
            let err = save_with(&mut io, &path, &bigger).expect_err("fault must surface");
            assert!(matches!(err, ManifestError::Io(_)), "{err:?}");
            // The previous generation still loads: atomicity held.
            let back = load(&path).unwrap_or_else(|e| panic!("{io:?}: {e}"));
            assert_eq!(back.len(), 1, "{io:?} damaged the installed manifest");
        }
        // And once the faults clear, the save goes through.
        save(&path, &bigger).unwrap();
        assert_eq!(load(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
