//! Process-wide host-side observability for the campaign driver.
//!
//! The simulator's [`PhaseProfiler`](ffsim_obs::PhaseProfiler) rides the
//! per-run [`ObsReport`](ffsim_core) — but the driver's own work (journal
//! appends, compactions, cache verification, shard commits) happens
//! outside any single simulation. This module gives that work one global,
//! lazily created sink:
//!
//! - a [`MetricsRegistry`] of named counters/gauges/histograms
//!   (`queue_journal_appends_total`, `queue_lease_wait_ms`, …), and
//! - a *flat* [`PhaseProfiler`] fed by externally measured scope
//!   durations ([`scope`]). Driver phases do not nest, so no telescoping
//!   invariant applies here — the profile answers "how much wall time
//!   went to queue journaling vs cache io vs manifest commits".
//!
//! Everything is gated on the shared `FFSIM_OBS` switch (or
//! [`force_enable`] for bins and tests). Disabled, every entry point is a
//! single relaxed atomic load — no allocation, no locking, no clock
//! reads — preserving the observer-effect invariant for driver-level
//! artifacts too.

use ffsim_obs::json::Value;
use ffsim_obs::{MetricsRegistry, Phase, PhaseProfiler};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The global sink. Created on first recording while enabled.
static STATE: Mutex<Option<HostObs>> = Mutex::new(None);
/// Latched `FFSIM_OBS` reading (first query wins, like the heartbeat
/// switch).
static ENV: OnceLock<bool> = OnceLock::new();
/// Explicit opt-in that only ever turns observability *on* (never off),
/// so concurrently running tests cannot disable each other.
static FORCED: AtomicBool = AtomicBool::new(false);

/// Host metrics plus the flat driver-phase profile.
#[derive(Debug)]
struct HostObs {
    metrics: MetricsRegistry,
    prof: PhaseProfiler,
}

impl HostObs {
    fn new() -> HostObs {
        HostObs {
            metrics: MetricsRegistry::enabled(),
            prof: PhaseProfiler::enabled(),
        }
    }
}

/// Whether host-side observability is on (env switch or [`force_enable`]).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || *ENV.get_or_init(ffsim_obs::env_enabled)
}

/// Turns host-side observability on for this process, regardless of the
/// environment. Used by bins (`perf_attrib`) and tests; there is no way
/// to turn it back off.
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

fn with<R>(f: impl FnOnce(&mut HostObs) -> R) -> R {
    let mut guard = STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(HostObs::new))
}

/// Runs `f`, attributing its wall time to `phase` when enabled. The
/// duration is measured *outside* the global lock, so concurrent scopes
/// serialize only for the few nanoseconds of the recording itself.
#[inline]
pub fn scope<R>(phase: Phase, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    record_scope(phase, f)
}

#[cold]
fn record_scope<R>(phase: Phase, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    with(|o| o.prof.record_scope_ns(phase, ns));
    out
}

/// [`scope`] plus a named duration histogram: the measured nanoseconds
/// are also recorded into `hist` in the registry.
#[inline]
pub fn timed<R>(phase: Phase, hist: &str, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    with(|o| {
        o.prof.record_scope_ns(phase, ns);
        if let Ok(id) = o.metrics.hist(hist) {
            o.metrics.observe(id, ns);
        }
    });
    out
}

/// Bumps the named counter by 1.
#[inline]
pub fn inc(name: &str) {
    if !enabled() {
        return;
    }
    inc_by(name, 1);
}

/// Bumps the named counter by `n`.
#[inline]
pub fn inc_by(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    with(|o| {
        if let Ok(id) = o.metrics.counter(name) {
            o.metrics.inc(id, n);
        }
    });
}

/// Stores the named gauge.
#[inline]
pub fn set_gauge(name: &str, v: i64) {
    if !enabled() {
        return;
    }
    with(|o| {
        if let Ok(id) = o.metrics.gauge(name) {
            o.metrics.set(id, v);
        }
    });
}

/// Records a sample into the named histogram.
#[inline]
pub fn observe(name: &str, v: u64) {
    if !enabled() {
        return;
    }
    with(|o| {
        if let Ok(id) = o.metrics.hist(name) {
            o.metrics.observe(id, v);
        }
    });
}

/// A clone of the current registry and driver-phase profile, or `None`
/// when nothing was recorded (disabled, or enabled but never touched).
#[must_use]
pub fn snapshot() -> Option<(MetricsRegistry, PhaseProfiler)> {
    let guard = STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.as_ref().map(|o| (o.metrics.clone(), o.prof.clone()))
}

/// The Prometheus text exposition of the host registry (empty when
/// nothing was recorded).
#[must_use]
pub fn render_prometheus() -> String {
    snapshot().map_or_else(String::new, |(m, _)| m.render_prometheus())
}

/// The JSON snapshot: `{"metrics": {...}, "profile": {...}}`, or `Null`
/// when nothing was recorded.
#[must_use]
pub fn to_value() -> Value {
    snapshot().map_or(Value::Null, |(m, p)| {
        Value::Obj(vec![
            ("metrics".to_string(), m.to_value()),
            ("profile".to_string(), p.to_value()),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole module: the state is process-global,
    // so independent tests would race each other's counters.
    #[test]
    fn force_enable_then_record_everything() {
        let before_forced = FORCED.load(Ordering::Relaxed);
        if !before_forced && !enabled() {
            // Disabled entry points must not create the sink.
            inc("hostobs_test_counter");
            observe("hostobs_test_hist", 7);
            set_gauge("hostobs_test_gauge", 3);
            let r = scope(Phase::CacheIo, || 41 + 1);
            assert_eq!(r, 42);
        }
        force_enable();
        assert!(enabled());
        inc("hostobs_test_counter");
        inc_by("hostobs_test_counter", 4);
        observe("hostobs_test_hist", 7);
        set_gauge("hostobs_test_gauge", 3);
        let r = scope(Phase::CacheIo, || 41 + 1);
        assert_eq!(r, 42);
        let (metrics, prof) = snapshot().expect("recorded state exists");
        assert_eq!(metrics.counter_by_name("hostobs_test_counter"), Some(5));
        assert!(prof.phase_agg(Phase::CacheIo).count >= 1);
        let text = render_prometheus();
        assert!(text.contains("hostobs_test_counter 5"));
        assert!(text.contains("hostobs_test_gauge 3"));
        let json = to_value().to_json();
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"profile\""));
    }
}
