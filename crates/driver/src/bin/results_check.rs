//! Verifies that the committed `results_*.txt` files at the repository
//! root match what the bench binaries produce today.
//!
//! Committed results silently drift when the simulator changes; this check
//! regenerates each file by running the corresponding bench binary (found
//! next to this executable in the target directory) and diffs its stdout
//! against the committed copy. Cargo's own stderr chatter (`Finished`,
//! `Running`, …) that was captured into some committed files is stripped
//! before comparison.
//!
//! ```text
//! results_check [--only NAME] [--volatile] [--update] [--repo-root PATH]
//! ```
//!
//! `results_speed.txt` contains host wall-clock timings and is skipped
//! unless `--volatile` is given. `--update` rewrites the committed files
//! from the regenerated output instead of failing.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

/// A committed results file and the bench binary that regenerates it.
struct Target {
    /// Bench binary name (also the `--only` key).
    bin: &'static str,
    /// Results file at the repository root.
    file: &'static str,
    /// Whether the output contains host wall-clock values that change
    /// between runs (skipped unless `--volatile`).
    volatile: bool,
}

const TARGETS: &[Target] = &[
    Target {
        bin: "fig1_nowp_error",
        file: "results_fig1.txt",
        volatile: false,
    },
    Target {
        bin: "fig4_gap_techniques",
        file: "results_fig4_gap.txt",
        volatile: false,
    },
    Target {
        bin: "fig4_spec_distribution",
        file: "results_fig4_spec.txt",
        volatile: false,
    },
    Target {
        bin: "table1_config",
        file: "results_table1.txt",
        volatile: false,
    },
    Target {
        bin: "table2_wp_fraction",
        file: "results_table2.txt",
        volatile: false,
    },
    Target {
        bin: "table3_convergence",
        file: "results_table3.txt",
        volatile: false,
    },
    Target {
        bin: "ablations",
        file: "results_ablations.txt",
        volatile: false,
    },
    Target {
        bin: "fault_injection",
        file: "results_fault_injection.txt",
        volatile: false,
    },
    Target {
        bin: "robustness",
        file: "results_robustness.txt",
        volatile: false,
    },
    Target {
        bin: "speed_comparison",
        file: "results_speed.txt",
        volatile: true,
    },
];

/// Drops cargo stderr chatter that leaked into committed files when they
/// were captured with `cargo run ... &> file`.
fn normalize(text: &str) -> String {
    let mut out: String = text
        .lines()
        .filter(|line| {
            let t = line.trim_start();
            !(t.starts_with("Finished")
                || t.starts_with("Running")
                || t.starts_with("Compiling")
                || t.starts_with("warning"))
        })
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    out
}

fn first_difference(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  committed:   {e}\n  regenerated: {a}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: committed {} vs regenerated {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

struct Args {
    only: Option<String>,
    volatile: bool,
    update: bool,
    repo_root: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    // The driver crate lives at <root>/crates/driver.
    let mut args = Args {
        only: None,
        volatile: false,
        update: false,
        repo_root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--only" => args.only = Some(argv.next().ok_or("--only needs a value")?),
            "--volatile" => args.volatile = true,
            "--update" => args.update = true,
            "--repo-root" => {
                args.repo_root = PathBuf::from(argv.next().ok_or("--repo-root needs a value")?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("results_check: {e}");
            eprintln!(
                "usage: results_check [--only NAME] [--volatile] [--update] [--repo-root PATH]"
            );
            return ExitCode::FAILURE;
        }
    };

    let bin_dir = match std::env::current_exe() {
        Ok(exe) => exe.parent().map(PathBuf::from).unwrap_or_default(),
        Err(e) => {
            eprintln!("results_check: locating executable: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0u32;
    let mut checked = 0u32;
    for target in TARGETS {
        if args.only.as_deref().is_some_and(|only| only != target.bin) {
            continue;
        }
        if target.volatile && !args.volatile && args.only.is_none() {
            eprintln!(
                "results_check: skip {} (volatile; use --volatile)",
                target.file
            );
            continue;
        }

        let bin = bin_dir.join(target.bin);
        let output = match Command::new(&bin).output() {
            Ok(output) => output,
            Err(e) => {
                eprintln!(
                    "results_check: running {} ({e}); build the bench bins first: \
                     cargo build --release -p ffsim-bench",
                    bin.display()
                );
                failures += 1;
                continue;
            }
        };
        if !output.status.success() {
            eprintln!(
                "results_check: {} exited with {}",
                target.bin, output.status
            );
            failures += 1;
            continue;
        }
        let regenerated = normalize(&String::from_utf8_lossy(&output.stdout));

        let path = args.repo_root.join(target.file);
        if args.update {
            if let Err(e) = std::fs::write(&path, &regenerated) {
                eprintln!("results_check: writing {}: {e}", path.display());
                failures += 1;
                continue;
            }
            eprintln!("results_check: updated {}", target.file);
            checked += 1;
            continue;
        }

        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => normalize(&text),
            Err(e) => {
                eprintln!("results_check: reading {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        if committed == regenerated {
            eprintln!("results_check: ok {}", target.file);
            checked += 1;
        } else {
            eprintln!(
                "results_check: MISMATCH {} — {}",
                target.file,
                first_difference(&committed, &regenerated)
            );
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("results_check: {failures} failure(s), {checked} ok");
        ExitCode::FAILURE
    } else {
        eprintln!("results_check: all {checked} checked files match");
        ExitCode::SUCCESS
    }
}
