//! Verifies that the committed `results_*.txt` files at the repository
//! root match what the bench binaries produce today.
//!
//! Committed results silently drift when the simulator changes; this check
//! regenerates each file by running the corresponding bench binary (found
//! next to this executable in the target directory) and diffs its stdout
//! against the committed copy. Cargo's own stderr chatter (`Finished`,
//! `Running`, …) that was captured into some committed files is stripped
//! before comparison.
//!
//! ```text
//! results_check [--only NAME] [--volatile] [--update]
//!               [--speed-tolerance PCT] [--repo-root PATH]
//! ```
//!
//! `results_speed.txt` contains host wall-clock timings and is skipped
//! unless `--volatile` is given. `--update` rewrites the committed files
//! from the regenerated output instead of failing.
//!
//! `--only bench_speed` doubles as the **speed regression gate**: it
//! re-measures the benchmark suite and fails when any per-technique mean
//! slowdown exceeds the committed `BENCH_speed.json` value by more than
//! `--speed-tolerance` percent (default 30).
//!
//! Besides the file diffs, the check asserts the committed **perf
//! budgets**: the `base` CPI of a canonical loop on the tiny core, per
//! technique. The committed results files all use the golden-cove core,
//! so a regression in the tiny core's scheduling (the configuration every
//! unit test runs on) would otherwise drift silently.

use ffsim_core::{SimConfig, Simulator, StallClass, WrongPathMode};
use ffsim_driver::{json, mode_from_label};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Program, Reg};
use ffsim_uarch::CoreConfig;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// A committed results file and the bench binary that regenerates it.
struct Target {
    /// Bench binary name (also the `--only` key).
    bin: &'static str,
    /// Results file at the repository root.
    file: &'static str,
    /// Whether the output contains host wall-clock values that change
    /// between runs (skipped unless `--volatile`).
    volatile: bool,
}

const TARGETS: &[Target] = &[
    Target {
        bin: "fig1_nowp_error",
        file: "results_fig1.txt",
        volatile: false,
    },
    Target {
        bin: "fig4_gap_techniques",
        file: "results_fig4_gap.txt",
        volatile: false,
    },
    Target {
        bin: "fig4_spec_distribution",
        file: "results_fig4_spec.txt",
        volatile: false,
    },
    Target {
        bin: "table1_config",
        file: "results_table1.txt",
        volatile: false,
    },
    Target {
        bin: "table2_wp_fraction",
        file: "results_table2.txt",
        volatile: false,
    },
    Target {
        bin: "table3_convergence",
        file: "results_table3.txt",
        volatile: false,
    },
    Target {
        bin: "ablations",
        file: "results_ablations.txt",
        volatile: false,
    },
    Target {
        bin: "fault_injection",
        file: "results_fault_injection.txt",
        volatile: false,
    },
    Target {
        bin: "robustness",
        file: "results_robustness.txt",
        volatile: false,
    },
    Target {
        bin: "speed_comparison",
        file: "results_speed.txt",
        volatile: true,
    },
    // Phase-attribution scope counts: stdout carries only counters that
    // are a pure function of the simulated instruction stream (wall-clock
    // attribution goes to stderr), so the file is golden-checkable.
    Target {
        bin: "perf_attrib",
        file: "results_profile.txt",
        volatile: false,
    },
    // Built by `-p ffsim-driver`, not ffsim-bench: the durable queue's
    // two-campaign demo report (no arguments = throwaway queue dir).
    Target {
        bin: "queue_smoke",
        file: "results_queue_smoke.txt",
        volatile: false,
    },
    // Built by `-p ffsim-serve`: the campaign-service demo — a wire
    // client submits two campaigns to an in-process server over
    // loopback and the drained report lands on stdout.
    Target {
        bin: "serve_smoke",
        file: "results_serve_smoke.txt",
        volatile: false,
    },
];

/// Loop trips of the base-CPI budget workload: enough to drown out warmup
/// so the measured CPI is stable to well under the tolerance.
const BASE_CPI_TRIPS: i64 = 50_000;

/// Committed tiny-core `base` CPI per technique for the canonical
/// countdown-div loop (the ROADMAP "obs-driven perf targets" budget).
/// `base` excludes every stall class, so this moves only when dispatch
/// width, issue scheduling, or latency tables change — exactly the
/// regressions the golden-cove results files are too coarse to localize.
const BASE_CPI_BUDGETS: &[(WrongPathMode, f64)] = &[
    (WrongPathMode::NoWrongPath, 5.9997),
    (WrongPathMode::InstructionReconstruction, 5.9997),
    (WrongPathMode::ConvergenceExploitation, 5.9997),
    (WrongPathMode::WrongPathEmulation, 5.9997),
];

/// Absolute tolerance on each base-CPI budget. The simulator is
/// deterministic, so this only absorbs deliberate small retunings; a real
/// scheduling regression overshoots it.
const BASE_CPI_TOLERANCE: f64 = 0.02;

fn base_cpi_workload() -> Result<Program, String> {
    let (i, c, q) = (Reg::new(1), Reg::new(2), Reg::new(3));
    let mut a = Asm::new();
    a.li(i, BASE_CPI_TRIPS);
    a.li(c, 1_000_003);
    a.label("loop");
    a.div(q, c, i);
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    a.assemble().map_err(|e| e.to_string())
}

/// Runs the budget workload on the tiny core under each technique and
/// compares the measured `base` CPI against the committed budget.
/// Returns the failure messages (empty means every budget holds).
fn check_base_cpi() -> Vec<String> {
    let program = match base_cpi_workload() {
        Ok(program) => program,
        Err(e) => return vec![format!("base-cpi workload failed to assemble: {e}")],
    };
    let mut failures = Vec::new();
    for &(mode, expected) in BASE_CPI_BUDGETS {
        let cfg = SimConfig::with_core(CoreConfig::tiny_for_tests(), mode);
        let result = Simulator::new(program.clone(), Memory::new(), cfg).and_then(Simulator::run);
        let result = match result {
            Ok(result) => result,
            Err(e) => {
                failures.push(format!("base-cpi run under {mode} failed: {e}"));
                continue;
            }
        };
        let measured = result.cpi.get(StallClass::Base) as f64 / result.instructions as f64;
        if (measured - expected).abs() > BASE_CPI_TOLERANCE {
            failures.push(format!(
                "base CPI under {} is {measured:.4}, outside committed {expected:.4} \
                 ± {BASE_CPI_TOLERANCE} (tiny core, countdown-div)",
                mode.label()
            ));
        } else {
            eprintln!(
                "results_check: ok base-cpi {} ({measured:.4})",
                mode.label()
            );
        }
    }
    failures
}

/// The committed speed-benchmark JSON artifact (`--only` key
/// `bench_speed`). Its wall-clock numbers are volatile, so the default
/// check validates the committed file's *schema*; `--volatile`
/// regenerates it and also compares the structure (suites, benchmarks,
/// technique labels) against the committed copy.
const BENCH_SPEED_FILE: &str = "BENCH_speed.json";

/// One suite's shape: its name, benchmark names, and technique labels.
type SuiteShape = (String, Vec<String>, Vec<String>);

/// Schema-validates a `BENCH_speed.json` document and returns its shape:
/// per suite, the benchmark names and the technique labels measured.
fn bench_speed_shape(doc: &json::Value) -> Result<Vec<SuiteShape>, String> {
    if doc.get("version").and_then(json::Value::as_int) != Some(1) {
        return Err("version must be 1".into());
    }
    let suites = doc
        .get("suites")
        .and_then(json::Value::as_arr)
        .ok_or("missing suites array")?;
    if suites.is_empty() {
        return Err("suites must be non-empty".into());
    }
    let mut shape = Vec::new();
    for suite in suites {
        let name = suite
            .get("suite")
            .and_then(json::Value::as_str)
            .ok_or("suite missing name")?
            .to_string();
        let benchmarks = suite
            .get("benchmarks")
            .and_then(json::Value::as_arr)
            .ok_or_else(|| format!("suite {name}: missing benchmarks"))?;
        if benchmarks.is_empty() {
            return Err(format!("suite {name}: benchmarks must be non-empty"));
        }
        let mut bench_names = Vec::new();
        let mut techniques: Vec<String> = Vec::new();
        for bench in benchmarks {
            let bench_name = bench
                .get("benchmark")
                .and_then(json::Value::as_str)
                .ok_or_else(|| format!("suite {name}: benchmark missing name"))?;
            bench_names.push(bench_name.to_string());
            if bench.get("nowp_us").and_then(json::Value::as_int) <= Some(0) {
                return Err(format!("{name}/{bench_name}: nowp_us must be positive"));
            }
            let slowdowns = bench
                .get("slowdowns")
                .and_then(json::Value::as_arr)
                .ok_or_else(|| format!("{name}/{bench_name}: missing slowdowns"))?;
            if slowdowns.is_empty() {
                return Err(format!("{name}/{bench_name}: slowdowns must be non-empty"));
            }
            let mut labels = Vec::new();
            for s in slowdowns {
                let label = s
                    .get("technique")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| format!("{name}/{bench_name}: slowdown missing technique"))?;
                if mode_from_label(label).is_none() {
                    return Err(format!("{name}/{bench_name}: unknown technique `{label}`"));
                }
                labels.push(label.to_string());
                if s.get("slowdown_x100").and_then(json::Value::as_int) <= Some(0) {
                    return Err(format!(
                        "{name}/{bench_name}/{label}: slowdown_x100 must be positive"
                    ));
                }
            }
            if techniques.is_empty() {
                techniques = labels;
            } else if techniques != labels {
                return Err(format!(
                    "{name}/{bench_name}: technique columns differ within the suite"
                ));
            }
        }
        let summary = suite
            .get("summary")
            .and_then(json::Value::as_arr)
            .ok_or_else(|| format!("suite {name}: missing summary"))?;
        if summary.len() != techniques.len() {
            return Err(format!("suite {name}: summary/technique count mismatch"));
        }
        shape.push((name, bench_names, techniques));
    }
    Ok(shape)
}

/// Per-suite, per-technique mean slowdown (×100) from a
/// `BENCH_speed.json` summary.
type SpeedSummary = Vec<(String, String, i64)>;

/// Extracts the summary means a regression is judged against.
fn speed_summary(doc: &json::Value) -> Result<SpeedSummary, String> {
    let suites = doc
        .get("suites")
        .and_then(json::Value::as_arr)
        .ok_or("missing suites array")?;
    let mut out = Vec::new();
    for suite in suites {
        let name = suite
            .get("suite")
            .and_then(json::Value::as_str)
            .ok_or("suite missing name")?;
        let summary = suite
            .get("summary")
            .and_then(json::Value::as_arr)
            .ok_or_else(|| format!("suite {name}: missing summary"))?;
        for entry in summary {
            let technique = entry
                .get("technique")
                .and_then(json::Value::as_str)
                .ok_or_else(|| format!("suite {name}: summary entry missing technique"))?;
            let mean = entry
                .get("mean_slowdown_x100")
                .and_then(json::Value::as_int)
                .ok_or_else(|| format!("suite {name}/{technique}: missing mean_slowdown_x100"))?;
            out.push((name.to_string(), technique.to_string(), mean));
        }
    }
    Ok(out)
}

/// The regression gate: each regenerated per-technique mean slowdown may
/// exceed its committed value by at most `tolerance_pct` percent.
/// Improvements never fail (re-commit with `--update` to tighten the
/// baseline); only a slower-than-committed drift beyond the tolerance
/// does. Returns the failure messages.
fn speed_regressions(
    committed: &SpeedSummary,
    regenerated: &SpeedSummary,
    tolerance_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (suite, technique, old) in committed {
        let found = regenerated
            .iter()
            .find(|(s, t, _)| s == suite && t == technique);
        let Some((_, _, new)) = found else {
            failures.push(format!(
                "{suite}/{technique}: missing from regenerated summary"
            ));
            continue;
        };
        if *old <= 0 {
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        let drift_pct = (*new - *old) as f64 * 100.0 / *old as f64;
        if drift_pct > tolerance_pct {
            failures.push(format!(
                "{suite}/{technique}: mean slowdown regressed {:.2}x -> {:.2}x \
                 (+{drift_pct:.0}%, tolerance {tolerance_pct:.0}%)",
                *old as f64 / 100.0,
                *new as f64 / 100.0,
            ));
        }
    }
    failures
}

/// Checks the committed `BENCH_speed.json`. Returns failure messages.
fn check_bench_speed(args: &Args, bin_dir: &Path) -> Vec<String> {
    let path = args.repo_root.join(BENCH_SPEED_FILE);
    // `--only bench_speed` is the CI regression gate: it re-measures and
    // compares against the committed means, not just the schema. The full
    // default sweep stays schema-only unless `--volatile` opts in.
    let regenerate = args.volatile || args.update || args.only.as_deref() == Some("bench_speed");

    let regenerated = if regenerate {
        let tmp = std::env::temp_dir().join(format!("BENCH_speed.{}.json", std::process::id()));
        let status = Command::new(bin_dir.join("speed_comparison"))
            .arg("--json")
            .arg(&tmp)
            .output();
        let text = match status {
            Ok(out) if out.status.success() => match std::fs::read_to_string(&tmp) {
                Ok(text) => text,
                Err(e) => return vec![format!("{BENCH_SPEED_FILE}: reading regenerated: {e}")],
            },
            Ok(out) => return vec![format!("speed_comparison exited with {}", out.status)],
            Err(e) => {
                return vec![format!(
                    "running speed_comparison ({e}); build the bench bins first: \
                     cargo build --release -p ffsim-bench"
                )]
            }
        };
        std::fs::remove_file(&tmp).ok();
        Some(text)
    } else {
        None
    };

    if args.update {
        let text = regenerated.expect("regenerated when updating");
        return match std::fs::write(&path, text) {
            Ok(()) => {
                eprintln!("results_check: updated {BENCH_SPEED_FILE}");
                Vec::new()
            }
            Err(e) => vec![format!("writing {}: {e}", path.display())],
        };
    }

    let committed = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => return vec![format!("reading {}: {e}", path.display())],
    };
    let committed_doc = match json::parse(&committed) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("{BENCH_SPEED_FILE}: {e}")],
    };
    let committed_shape = match bench_speed_shape(&committed_doc) {
        Ok(shape) => shape,
        Err(e) => return vec![format!("{BENCH_SPEED_FILE}: {e}")],
    };
    if let Some(text) = regenerated {
        let doc = match json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => return vec![format!("{BENCH_SPEED_FILE} (regenerated): {e}")],
        };
        let shape = match bench_speed_shape(&doc) {
            Ok(shape) => shape,
            Err(e) => return vec![format!("{BENCH_SPEED_FILE} (regenerated): {e}")],
        };
        if shape != committed_shape {
            return vec![format!(
                "{BENCH_SPEED_FILE}: structure drifted — committed {committed_shape:?} \
                 vs regenerated {shape:?} (exact values are volatile; \
                 run with --update to rewrite)"
            )];
        }
        let gate = match (speed_summary(&committed_doc), speed_summary(&doc)) {
            (Ok(old), Ok(new)) => speed_regressions(&old, &new, args.speed_tolerance),
            (Err(e), _) | (_, Err(e)) => vec![format!("summary: {e}")],
        };
        if !gate.is_empty() {
            return gate;
        }
        eprintln!(
            "results_check: ok {BENCH_SPEED_FILE} (schema + structure + \
             means within {:.0}% of committed)",
            args.speed_tolerance
        );
    } else {
        eprintln!("results_check: ok {BENCH_SPEED_FILE} (schema)");
    }
    Vec::new()
}

/// Drops cargo stderr chatter that leaked into committed files when they
/// were captured with `cargo run ... &> file`.
fn normalize(text: &str) -> String {
    let mut out: String = text
        .lines()
        .filter(|line| {
            let t = line.trim_start();
            !(t.starts_with("Finished")
                || t.starts_with("Running")
                || t.starts_with("Compiling")
                || t.starts_with("warning"))
        })
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    out
}

fn first_difference(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  committed:   {e}\n  regenerated: {a}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: committed {} vs regenerated {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

/// Default `--speed-tolerance`: generous enough that shared-runner noise
/// never trips the gate (slowdown *ratios* are already host-normalized),
/// tight enough that losing the batched-handoff/block-cache savings —
/// which bought ≥25% per technique — fails the gate.
const SPEED_TOLERANCE_DEFAULT: f64 = 30.0;

struct Args {
    only: Option<String>,
    volatile: bool,
    update: bool,
    speed_tolerance: f64,
    repo_root: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    // The driver crate lives at <root>/crates/driver.
    let mut args = Args {
        only: None,
        volatile: false,
        update: false,
        speed_tolerance: SPEED_TOLERANCE_DEFAULT,
        repo_root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--only" => args.only = Some(argv.next().ok_or("--only needs a value")?),
            "--volatile" => args.volatile = true,
            "--update" => args.update = true,
            "--speed-tolerance" => {
                args.speed_tolerance = argv
                    .next()
                    .ok_or("--speed-tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("--speed-tolerance: {e}"))?;
            }
            "--repo-root" => {
                args.repo_root = PathBuf::from(argv.next().ok_or("--repo-root needs a value")?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("results_check: {e}");
            eprintln!(
                "usage: results_check [--only NAME] [--volatile] [--update] [--repo-root PATH]"
            );
            return ExitCode::FAILURE;
        }
    };

    let bin_dir = match std::env::current_exe() {
        Ok(exe) => exe.parent().map(PathBuf::from).unwrap_or_default(),
        Err(e) => {
            eprintln!("results_check: locating executable: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0u32;
    let mut checked = 0u32;
    for target in TARGETS {
        if args.only.as_deref().is_some_and(|only| only != target.bin) {
            continue;
        }
        if target.volatile && !args.volatile && args.only.is_none() {
            eprintln!(
                "results_check: skip {} (volatile; use --volatile)",
                target.file
            );
            continue;
        }

        let bin = bin_dir.join(target.bin);
        let output = match Command::new(&bin).output() {
            Ok(output) => output,
            Err(e) => {
                eprintln!(
                    "results_check: running {} ({e}); build the bench bins first: \
                     cargo build --release -p ffsim-bench",
                    bin.display()
                );
                failures += 1;
                continue;
            }
        };
        if !output.status.success() {
            eprintln!(
                "results_check: {} exited with {}",
                target.bin, output.status
            );
            failures += 1;
            continue;
        }
        let regenerated = normalize(&String::from_utf8_lossy(&output.stdout));

        let path = args.repo_root.join(target.file);
        if args.update {
            if let Err(e) = std::fs::write(&path, &regenerated) {
                eprintln!("results_check: writing {}: {e}", path.display());
                failures += 1;
                continue;
            }
            eprintln!("results_check: updated {}", target.file);
            checked += 1;
            continue;
        }

        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => normalize(&text),
            Err(e) => {
                eprintln!("results_check: reading {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        if committed == regenerated {
            eprintln!("results_check: ok {}", target.file);
            checked += 1;
        } else {
            eprintln!(
                "results_check: MISMATCH {} — {}",
                target.file,
                first_difference(&committed, &regenerated)
            );
            failures += 1;
        }
    }

    if args.only.is_none() || args.only.as_deref() == Some("bench_speed") {
        let speed_failures = check_bench_speed(&args, &bin_dir);
        if speed_failures.is_empty() {
            checked += 1;
        }
        for failure in speed_failures {
            eprintln!("results_check: BENCH {failure}");
            failures += 1;
        }
    }

    if args.only.is_none() {
        for failure in check_base_cpi() {
            eprintln!("results_check: BUDGET {failure}");
            failures += 1;
        }
        checked += 1;
    }

    if failures > 0 {
        eprintln!("results_check: {failures} failure(s), {checked} ok");
        ExitCode::FAILURE
    } else {
        eprintln!("results_check: all {checked} checked files match");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(entries: &[(&str, &str, i64)]) -> SpeedSummary {
        entries
            .iter()
            .map(|&(s, t, v)| (s.to_string(), t.to_string(), v))
            .collect()
    }

    #[test]
    fn gate_fails_when_a_mean_slowdown_regresses_beyond_tolerance() {
        // Committed wpemul mean 4.00x; the re-measured run says 9.00x —
        // a +125% drift against a 100% tolerance must fail the gate.
        let committed = summary(&[("GAP", "conv", 368), ("GAP", "wpemul", 400)]);
        let regressed = summary(&[("GAP", "conv", 380), ("GAP", "wpemul", 900)]);
        let failures = speed_regressions(&committed, &regressed, 100.0);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("GAP/wpemul") && failures[0].contains("4.00x -> 9.00x"),
            "{failures:?}"
        );
    }

    #[test]
    fn gate_passes_within_tolerance_and_on_improvements() {
        let committed = summary(&[("GAP", "conv", 368), ("SPEC-like", "wpemul", 500)]);
        // +50% drift on one, a large improvement on the other: both pass.
        let regenerated = summary(&[("GAP", "conv", 552), ("SPEC-like", "wpemul", 120)]);
        assert!(speed_regressions(&committed, &regenerated, 100.0).is_empty());
        // The same drift fails once the tolerance is tightened under it.
        assert_eq!(speed_regressions(&committed, &regenerated, 40.0).len(), 1);
    }

    #[test]
    fn gate_fails_when_a_technique_vanishes_from_the_summary() {
        let committed = summary(&[("GAP", "conv", 368)]);
        let failures = speed_regressions(&committed, &summary(&[]), 100.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"), "{failures:?}");
    }

    #[test]
    fn speed_summary_extracts_per_suite_technique_means() {
        let doc = json::parse(
            r#"{"suites":[{"suite":"GAP","summary":[
                {"technique":"conv","mean_slowdown_x100":368,"max_slowdown_x100":627}
            ]}]}"#,
        )
        .unwrap();
        assert_eq!(
            speed_summary(&doc).unwrap(),
            summary(&[("GAP", "conv", 368)])
        );
        let bad = json::parse(r#"{"suites":[{"suite":"GAP"}]}"#).unwrap();
        assert!(speed_summary(&bad).unwrap_err().contains("missing summary"));
    }
}
