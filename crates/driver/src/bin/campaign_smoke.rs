//! Small supervised campaign used by CI and by hand to smoke-test the
//! driver end to end: run it, kill it mid-flight, re-run it against the
//! same manifest, and diff the report against the committed golden copy.
//!
//! The report (and the manifest) are byte-deterministic: independent of
//! worker count, scheduling, kill timing, and how many times the campaign
//! was resumed. The golden report lives at
//! `crates/driver/golden/campaign_smoke.txt`.
//!
//! ```text
//! campaign_smoke --manifest /tmp/m.json --report /tmp/report.txt \
//!     [--workers N] [--shards N] [--cache-dir PATH]
//! ```
//!
//! With `--shards N` the manifest splits into `N` crash-consistent shard
//! files; with `--cache-dir` results are served from (and committed to) a
//! content-addressed cache. Neither flag changes the report bytes on a
//! clean run.

use ffsim_core::WrongPathMode;
use ffsim_driver::{report, Campaign, CampaignConfig, Job, WorkloadFn};
use ffsim_emu::{FaultPolicy, Memory};
use ffsim_isa::{Asm, Program, Reg};
use ffsim_uarch::CoreConfig;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Loop trips: sized so the eight jobs take long enough that a mid-flight
/// SIGTERM lands while work is unfinished, but CI stays fast.
const TRIPS: i64 = 200_000;

fn countdown_div() -> Result<Program, ffsim_core::SimError> {
    let (i, c, q) = (Reg::new(1), Reg::new(2), Reg::new(3));
    let mut a = Asm::new();
    a.li(i, TRIPS);
    a.li(c, 1_000_003);
    a.label("loop");
    a.div(q, c, i);
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn countup_load() -> Result<Program, ffsim_core::SimError> {
    let (i, n, base, t, v) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
    );
    let mut a = Asm::new();
    a.li(i, 0);
    a.li(n, TRIPS);
    a.li(base, 0x1000_0000);
    a.label("loop");
    a.slli(t, i, 3);
    a.add(t, t, base);
    a.ld(v, 0, t);
    a.addi(i, i, 1);
    a.blt(i, n, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn workload(program: fn() -> Result<Program, ffsim_core::SimError>) -> WorkloadFn {
    Arc::new(move || Ok((program()?, Memory::new())))
}

fn jobs() -> Vec<Job> {
    let core = CoreConfig::tiny_for_tests();
    let mut jobs = Vec::new();
    for mode in WrongPathMode::ALL {
        jobs.push(
            Job::new(
                format!("countdown-div/{mode}"),
                mode,
                workload(countdown_div),
            )
            .with_core(core.clone()),
        );
    }
    for mode in [
        WrongPathMode::NoWrongPath,
        WrongPathMode::ConvergenceExploitation,
        WrongPathMode::WrongPathEmulation,
    ] {
        jobs.push(
            Job::new(format!("countup-load/{mode}"), mode, workload(countup_load))
                .with_core(core.clone()),
        );
    }
    // One deliberately failing configuration: divide-by-zero trapping with
    // the abort policy faults the wrong path under full emulation only, so
    // the job degrades wpemul -> conv and the report shows the ladder.
    jobs.push(
        Job::new(
            "divzero-abort/wpemul",
            WrongPathMode::WrongPathEmulation,
            workload(countdown_div),
        )
        .with_core(core)
        .with_tweak(Arc::new(|cfg| {
            cfg.fault_model.trap_div_zero = true;
            cfg.fault_policy = FaultPolicy::AbortRun;
        })),
    );
    jobs
}

struct Args {
    workers: usize,
    shards: Option<usize>,
    cache_dir: Option<PathBuf>,
    manifest: PathBuf,
    report: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut workers = 0;
    let mut shards = None;
    let mut cache_dir = None;
    let mut manifest = None;
    let mut report = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--shards" => {
                shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                );
            }
            "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--manifest" => manifest = Some(PathBuf::from(value("--manifest")?)),
            "--report" => report = Some(PathBuf::from(value("--report")?)),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        workers,
        shards,
        cache_dir,
        manifest: manifest.ok_or("--manifest is required")?,
        report,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign_smoke: {e}");
            eprintln!(
                "usage: campaign_smoke --manifest PATH [--report PATH] \
                 [--workers N] [--shards N] [--cache-dir PATH]"
            );
            return ExitCode::FAILURE;
        }
    };

    let cache_enabled = args.cache_dir.is_some();
    let campaign = Campaign::new(CampaignConfig {
        workers: args.workers,
        default_timeout: Some(Duration::from_secs(120)),
        manifest_path: Some(args.manifest),
        shards: args.shards,
        cache_dir: args.cache_dir,
        ..CampaignConfig::default()
    });
    let outcome = match campaign.run(jobs()) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("campaign_smoke: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Progress counters go to stderr: they depend on kill/resume history
    // and must stay out of the deterministic report artifact.
    eprintln!(
        "campaign_smoke: {} resumed, {} executed, cancelled: {}",
        outcome.resumed, outcome.executed, outcome.cancelled
    );
    if cache_enabled {
        eprintln!(
            "campaign_smoke: cache: {} hits, {} misses",
            outcome.cache_hits, outcome.cache_misses
        );
    }
    // Likewise the wall-clock timing and CPI-stack appendices (present
    // only under FFSIM_OBS telemetry).
    let timing = report::render_timing(&outcome.records);
    if !timing.is_empty() {
        eprint!("{timing}");
    }
    let cpi = report::render_cpi(&outcome.records);
    if !cpi.is_empty() {
        eprint!("{cpi}");
    }
    // Cache provenance depends on what earlier campaigns populated, so it
    // is an stderr appendix too, never part of the report artifact.
    let cached = report::render_cache(&outcome.records);
    if !cached.is_empty() {
        eprint!("{cached}");
    }
    // Host-phase attribution for the driver's own work (cache verify,
    // shard commits) — stderr only, like every wall-clock appendix.
    if let Some((_, prof)) = ffsim_driver::hostobs::snapshot() {
        let profile = report::render_profile(&prof);
        if !profile.is_empty() {
            eprint!("\n{profile}");
        }
    }

    let mut text = report::render(&outcome.records);
    for quarantine in &outcome.quarantines {
        // Also on stderr so a watching operator sees it immediately.
        eprintln!("campaign_smoke: {quarantine}");
    }
    text.push_str(&report::render_quarantines(&outcome.quarantines));
    match &args.report {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("campaign_smoke: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
