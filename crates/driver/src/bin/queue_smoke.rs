//! Durable-queue smoke used by CI and by hand: enqueue two campaigns
//! into an on-disk job queue, optionally kill the service mid-drain,
//! damage the journal tail, then resume against the same directory and
//! diff the report against an uninterrupted run.
//!
//! The report is byte-deterministic: independent of worker count,
//! scheduling, preemption, kill timing, and how many times the queue was
//! resumed. The committed copy lives at `results_queue_smoke.txt` and is
//! verified by `results_check`.
//!
//! ```text
//! queue_smoke [--dir PATH] [--report PATH] [--workers N] [--shards N]
//!     [--cache-dir PATH] [--kill-after N] [--resume]
//! ```
//!
//! Without `--dir` the queue lives in a throwaway temp directory that is
//! removed on success (the no-argument mode `results_check` runs).
//! `--kill-after N` cancels the service stop token when the `N`-th
//! execution starts — the in-process stand-in for `kill -9`, leaving the
//! journaled lease dangling exactly as a SIGKILL would — and exits
//! without writing a report. `--resume` asserts the directory already
//! holds queue state, so a typo'd fresh path cannot silently pass a
//! byte-identity diff.

use ffsim_core::{CancelToken, WrongPathMode};
use ffsim_driver::{
    report, CampaignSpec, Enqueued, Job, JobQueue, JobRecord, JobRunner, QueueConfig, RunContext,
    WorkloadFn,
};
use ffsim_emu::{FaultPolicy, Memory};
use ffsim_isa::{Asm, Program, Reg};
use ffsim_uarch::CoreConfig;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Loop trips: sized so a `--kill-after` lands while later jobs are still
/// pending, but the no-argument `results_check` run stays fast.
const TRIPS: i64 = 20_000;

fn countdown_div() -> Result<Program, ffsim_core::SimError> {
    let (i, c, q) = (Reg::new(1), Reg::new(2), Reg::new(3));
    let mut a = Asm::new();
    a.li(i, TRIPS);
    a.li(c, 1_000_003);
    a.label("loop");
    a.div(q, c, i);
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn countup_load() -> Result<Program, ffsim_core::SimError> {
    let (i, n, base, t, v) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
    );
    let mut a = Asm::new();
    a.li(i, 0);
    a.li(n, TRIPS);
    a.li(base, 0x1000_0000);
    a.label("loop");
    a.slli(t, i, 3);
    a.add(t, t, base);
    a.ld(v, 0, t);
    a.addi(i, i, 1);
    a.blt(i, n, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn workload(program: fn() -> Result<Program, ffsim_core::SimError>) -> WorkloadFn {
    Arc::new(move || Ok((program()?, Memory::new())))
}

/// Two campaigns with different weights and priorities, so a drain
/// exercises the deficit-round-robin scheduler and the priority order,
/// not just FIFO. Eight jobs total, including one that degrades down the
/// wrong-path ladder so the report shows a non-trivial final mode.
fn campaigns() -> Vec<(CampaignSpec, Vec<Job>)> {
    let core = CoreConfig::tiny_for_tests();
    let baseline = WrongPathMode::ALL
        .into_iter()
        .map(|mode| {
            Job::new(
                format!("countdown-div/{mode}"),
                mode,
                workload(countdown_div),
            )
            .with_core(core.clone())
        })
        .collect();
    let mut sweep: Vec<Job> = [
        WrongPathMode::NoWrongPath,
        WrongPathMode::ConvergenceExploitation,
        WrongPathMode::WrongPathEmulation,
    ]
    .into_iter()
    .map(|mode| {
        let job = Job::new(format!("countup-load/{mode}"), mode, workload(countup_load))
            .with_core(core.clone());
        // One job outranks its campaign siblings, so the scheduler's
        // priority tier (not just DRR weight) is on the smoke path.
        if mode == WrongPathMode::WrongPathEmulation {
            job.with_priority(2)
        } else {
            job
        }
    })
    .collect();
    // Divide-by-zero trapping under the abort policy faults the wrong
    // path under full emulation only: the job degrades wpemul -> conv and
    // the report shows the ladder.
    sweep.push(
        Job::new(
            "divzero-abort/wpemul",
            WrongPathMode::WrongPathEmulation,
            workload(countdown_div),
        )
        .with_core(core)
        .with_tweak(Arc::new(|cfg| {
            cfg.fault_model.trap_div_zero = true;
            cfg.fault_policy = FaultPolicy::AbortRun;
        })),
    );
    vec![
        (CampaignSpec::new("baseline").with_weight(2), baseline),
        (
            CampaignSpec::new("sweep").with_weight(1).with_priority(1),
            sweep,
        ),
    ]
}

/// Cancels the service stop token when the `N`-th execution starts and
/// abandons that job, leaving its journaled lease dangling — the
/// in-process equivalent of `kill -9` mid-drain.
struct KillAfter<'q> {
    queue: &'q JobQueue,
    countdown: AtomicU64,
}

impl JobRunner for KillAfter<'_> {
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.queue.cancel_token().cancel();
            return None;
        }
        ctx.execute(job, takeback)
    }
}

struct Args {
    dir: Option<PathBuf>,
    workers: usize,
    shards: Option<usize>,
    cache_dir: Option<PathBuf>,
    report: Option<PathBuf>,
    kill_after: Option<u64>,
    resume: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: None,
        workers: 0,
        shards: None,
        cache_dir: None,
        report: None,
        kill_after: None,
        resume: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--dir" => args.dir = Some(PathBuf::from(value("--dir")?)),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--shards" => {
                args.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                );
            }
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--kill-after" => {
                args.kill_after = Some(
                    value("--kill-after")?
                        .parse()
                        .map_err(|e| format!("--kill-after: {e}"))?,
                );
            }
            "--resume" => args.resume = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.kill_after == Some(0) {
        return Err("--kill-after must be >= 1".into());
    }
    if (args.kill_after.is_some() || args.resume) && args.dir.is_none() {
        return Err("--kill-after and --resume need --dir (state must outlive this run)".into());
    }
    Ok(args)
}

/// Registers both campaigns and enqueues every job; idempotent across
/// resumes (already-durable jobs come back `AlreadyComplete`).
fn fill(queue: &JobQueue) -> Result<(), String> {
    for (spec, jobs) in campaigns() {
        queue.register(&spec).map_err(|e| e.to_string())?;
        for job in jobs {
            let id = job.id.clone();
            match queue.enqueue(&spec.id, job).map_err(|e| e.to_string())? {
                Enqueued::Accepted | Enqueued::AlreadyComplete => {}
                Enqueued::Poisoned => {
                    return Err(format!(
                        "{id} is quarantined as poison; inspect the queue dir"
                    ))
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("queue_smoke: {e}");
            eprintln!(
                "usage: queue_smoke [--dir PATH] [--report PATH] [--workers N] \
                 [--shards N] [--cache-dir PATH] [--kill-after N] [--resume]"
            );
            return ExitCode::FAILURE;
        }
    };

    let throwaway = args.dir.is_none();
    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("queue_smoke.{}", std::process::id()))
    });
    if throwaway {
        std::fs::remove_dir_all(&dir).ok();
    }
    if args.resume {
        let has_state = std::fs::read_dir(&dir)
            .map(|mut entries| entries.next().is_some())
            .unwrap_or(false);
        if !has_state {
            eprintln!(
                "queue_smoke: --resume but {} holds no queue state",
                dir.display()
            );
            return ExitCode::FAILURE;
        }
    }

    let cache_enabled = args.cache_dir.is_some();
    let queue = match JobQueue::open(QueueConfig {
        workers: args.workers,
        shards: args.shards,
        cache_dir: args.cache_dir,
        default_timeout: Some(Duration::from_secs(120)),
        // Small enough that CI kills interleave with compaction, so the
        // snapshot+tail replay path is on the smoke path too.
        compact_every: 8,
        ..QueueConfig::new(&dir)
    }) {
        Ok(queue) => queue,
        Err(e) => {
            eprintln!("queue_smoke: opening queue at {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };

    // Startup recovery is kill-history dependent, so it goes to stderr;
    // CI greps the re-leased count after a kill.
    let recovery = queue.recovery();
    eprintln!(
        "queue_smoke: recovery: {} re-leased, torn tail dropped: {}",
        recovery.re_leased, recovery.torn_tail_dropped
    );
    for quarantine in &recovery.quarantines {
        eprintln!("queue_smoke: {quarantine}");
    }

    if let Err(e) = fill(&queue) {
        eprintln!("queue_smoke: {e}");
        return ExitCode::FAILURE;
    }

    let drained = match args.kill_after {
        Some(n) => {
            let killer = KillAfter {
                queue: &queue,
                countdown: AtomicU64::new(n),
            };
            queue.drain_with(&killer)
        }
        None => queue.drain(),
    };
    let outcome = match drained {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("queue_smoke: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Progress counters depend on kill/resume history and worker timing:
    // stderr, never the report artifact.
    eprintln!(
        "queue_smoke: {} resumed, {} executed, {} re-leased, cancelled: {}",
        outcome.resumed, outcome.executed, outcome.re_leased, outcome.cancelled
    );
    eprintln!(
        "queue_smoke: {} preempted, {} lease expiries",
        outcome.preempted, outcome.lease_expiries
    );
    if cache_enabled {
        eprintln!(
            "queue_smoke: cache: {} hits, {} misses",
            outcome.cache_hits, outcome.cache_misses
        );
    }
    let waits = report::render_queue_waits(&outcome.waits, &std::collections::BTreeMap::new());
    if !waits.is_empty() {
        eprint!("{waits}");
    }
    let timing = report::render_timing(&outcome.records);
    if !timing.is_empty() {
        eprint!("{timing}");
    }
    // Host-phase attribution for the queue's own machinery (journal
    // appends, compactions, cache io, shard commits) plus the metric
    // counters behind it — stderr only, like every wall-clock appendix.
    if let Some((metrics, prof)) = ffsim_driver::hostobs::snapshot() {
        let profile = report::render_profile(&prof);
        if !profile.is_empty() {
            eprint!("\n{profile}");
        }
        if let Some(appends) = metrics.counter_by_name("queue_journal_appends_total") {
            eprintln!(
                "queue_smoke: {appends} journal appends, {} compactions, {} leases",
                metrics
                    .counter_by_name("queue_compactions_total")
                    .unwrap_or(0),
                metrics.counter_by_name("queue_leases_total").unwrap_or(0)
            );
        }
    }

    if outcome.cancelled {
        if args.kill_after.is_some() {
            // The simulated kill -9: leased jobs stay journaled; a later
            // run with --resume re-executes exactly those. No report —
            // the drain did not finish.
            eprintln!("queue_smoke: killed mid-drain as requested; resume with --resume");
            return ExitCode::SUCCESS;
        }
        eprintln!("queue_smoke: drain cancelled unexpectedly");
        return ExitCode::FAILURE;
    }

    // The deterministic artifact: merged records plus the poison and
    // quarantine appendices (all empty on a healthy run, and identical
    // however many kills and resumes preceded this drain).
    let mut text = report::render(&outcome.records);
    text.push_str(&report::render_poison(&outcome.poison));
    text.push_str(&report::render_quarantines(&outcome.quarantines));
    for quarantine in &outcome.quarantines {
        eprintln!("queue_smoke: {quarantine}");
    }
    match &args.report {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("queue_smoke: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        None => print!("{text}"),
    }
    if throwaway {
        std::fs::remove_dir_all(&dir).ok();
    }
    ExitCode::SUCCESS
}
