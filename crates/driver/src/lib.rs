//! # ffsim-driver — supervised simulation campaigns
//!
//! Research simulators run in *campaigns*: many workloads × many
//! configurations, often overnight. One hung configuration, one panic in
//! an experimental code path, or one fault under aggressive injection
//! settings must not take down the other several hundred jobs. This crate
//! is the supervision layer that makes campaigns over
//! [`ffsim-core`](../ffsim_core/index.html) robust:
//!
//! - a parallel worker pool executing [`Job`]s,
//! - per-attempt **panic isolation** (`catch_unwind`),
//! - cooperative **wall-clock deadlines** enforced by a [`Watchdog`]
//!   thread through [`CancelToken`]s — hung simulations surface as
//!   [`SimError::DeadlineExceeded`](ffsim_core::SimError), they are never
//!   thread-killed,
//! - bounded **retry** with deterministic exponential backoff
//!   ([`RetryPolicy`]),
//! - a **graceful-degradation ladder** for wrong-path modeling: jobs that
//!   persistently fail under full wrong-path emulation retry under
//!   progressively simpler techniques (`wpemul → conv → instrec → nowp`),
//!   with every rung recorded,
//! - an incrementally persisted JSON **manifest** for crash-safe resume —
//!   optionally **sharded** into one crash-consistent file per worker
//!   ([`ManifestStore`]), merged deterministically at report time, where
//!   losing one shard quarantines and re-runs only that shard's jobs,
//! - a **content-addressed result cache** ([`CacheStore`]) keyed by
//!   (workload digest, config digest): identical campaign points are
//!   served from the cache without simulating, and corrupt entries are
//!   evicted and recomputed, never served,
//! - byte-**deterministic** reports and manifests, independent of worker
//!   count and scheduling.
//!
//! # Examples
//!
//! ```
//! use ffsim_driver::{Campaign, CampaignConfig, Job};
//! use ffsim_core::WrongPathMode;
//! use ffsim_emu::Memory;
//! use ffsim_isa::{Asm, Reg};
//! use ffsim_uarch::CoreConfig;
//! use std::sync::Arc;
//!
//! let workload: ffsim_driver::WorkloadFn = Arc::new(|| {
//!     let mut a = Asm::new();
//!     a.li(Reg::new(1), 100);
//!     a.label("loop");
//!     a.addi(Reg::new(1), Reg::new(1), -1);
//!     a.bnez(Reg::new(1), "loop");
//!     a.halt();
//!     Ok((a.assemble()?, Memory::new()))
//! });
//!
//! let jobs = WrongPathMode::ALL
//!     .into_iter()
//!     .map(|mode| {
//!         Job::new(format!("countdown/{mode}"), mode, workload.clone())
//!             .with_core(CoreConfig::tiny_for_tests())
//!     })
//!     .collect();
//!
//! let outcome = Campaign::new(CampaignConfig::default()).run(jobs)?;
//! assert_eq!(outcome.records.len(), 4);
//! println!("{}", ffsim_driver::report::render(&outcome.records));
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod campaign;
pub mod fnv;
pub mod hostobs;
mod job;
pub mod manifest;
pub mod queue;
pub mod report;
mod retry;
pub mod shard;
mod telemetry;
mod watchdog;

pub use cache::{CacheKey, CacheStore, Lookup};
pub use campaign::{Campaign, CampaignConfig, CampaignOutcome, SharedIo};
pub use ffsim_core::{CancelCause, CancelToken};
pub use ffsim_obs::json;
pub use job::{
    ladder_next, mode_from_label, AttemptOutcome, AttemptRecord, ConfigTweak, Job, JobRecord,
    JobStatus, JobSummary, JobTiming, WorkloadFn,
};
pub use manifest::{FaultyIo, ManifestError, ManifestIo, Quarantine, RealIo};
pub use queue::{
    CampaignSpec, DefaultRunner, DrainOutcome, Enqueued, JobQueue, JobRunner, PoisonJob,
    QueueConfig, QueueError, QueueStats, Recovery, RunContext, QUEUE_VERSION,
};
pub use retry::RetryPolicy;
pub use shard::{
    validate_shard_count, validate_worker_count, ManifestStore, ShardLayout, MAX_SHARDS,
    MAX_WORKERS,
};
pub use telemetry::{Heartbeat, QueueGauges, Telemetry, TelemetryConfig};
pub use watchdog::{WatchGuard, Watchdog};
