//! The durable campaign job queue: journaled ingest, lease-based
//! ownership, weighted fair scheduling, preemption, and poison-job
//! quarantine.
//!
//! PR 6 made the *storage* side of campaigns crash-consistent (sharded
//! manifests, content-addressed cache). This module is the matching
//! *ingest* side: a long-running service enqueues jobs from several
//! campaigns into one on-disk queue that survives kill -9 the same way
//! the shards do, and a worker pool drains it.
//!
//! # The journal
//!
//! Every queue state transition appends one typed record to
//! `<dir>/queue.journal`: `Enqueued`, `Leased`, `Committed`, `Failed`,
//! `Preempted`, or `Quarantined`. Each record is an individually sealed
//! document — JSON body plus the same FNV-1a `#checksum` trailer line the
//! manifests use ([`manifest::seal`]) — so replay can verify records
//! one at a time. Startup replay folds the journal over the last
//! snapshot:
//!
//! - a **half-written final record** (torn append at the moment of the
//!   crash) is dropped and the journal truncated back to the last sealed
//!   record — never an error;
//! - damage **before** the tail is real corruption: the whole journal is
//!   quarantined to `queue.corrupt` (evidence preserved) and the state
//!   restarts from the snapshot — committed work is still safe, because
//!   result records live in the manifest shards, and jobs whose terminal
//!   record was lost simply re-run;
//! - every [`QueueConfig::compact_every`] records the state is compacted
//!   into a sealed `queue.snapshot` (atomic temp + rename) and the
//!   journal truncated. Records carry the snapshot *generation* so a
//!   crash between the two steps replays nothing twice.
//!
//! # Leases
//!
//! A dequeued job is *leased*, not removed: the `Leased` record makes the
//! claim durable, and the lease carries a deadline. A worker (or whole
//! process) that dies mid-job leaves a dangling lease; replay counts it
//! as a lease failure and re-enqueues the job with its retry/backoff
//! budget intact. In-process, an expired lease is taken back through the
//! job's [`CancelToken`] — and **commit always wins**: a job that
//! finishes as its lease expires is committed once, never re-run (the
//! take-back marker is simply ignored when a record arrives). A job that
//! fails the same way ≥ [`QueueConfig::max_lease_failures`] times is
//! quarantined as a *poison job* with its last error recorded, instead of
//! wedging the queue forever.
//!
//! # Scheduling
//!
//! Campaigns are registered with a weight and a base priority; each job
//! adds its own priority offset. Strictly higher effective priority runs
//! first — and an enqueue that outranks every idle slot *preempts* the
//! lowest-priority running job via its token: the victim is re-enqueued
//! at the front of its FIFO, is never failed, and burns no retry
//! attempt. Within a priority level, campaigns share the workers by
//! deficit round-robin over per-campaign FIFOs, with deterministic
//! tie-breaks (campaign id, then enqueue order). Scheduling shapes only
//! *latency*: the merged report is byte-identical for an identical
//! enqueue sequence whatever the preemption, crash, and resume
//! interleaving, because records are content-deterministic and id-sorted.
//!
//! # Backpressure
//!
//! The queue holds at most [`QueueConfig::capacity`] live (pending or
//! leased) jobs; enqueueing past that returns
//! [`QueueError::Saturated`] instead of growing without bound.

use crate::cache::{self, CacheStore};
use crate::campaign::{self, Executor, Probe, SharedIo};
use crate::hostobs;
use crate::job::{AttemptOutcome, Job, JobRecord, JobStatus};
use crate::json::{parse, Value};
use crate::manifest::{self, ManifestError, Quarantine};
use crate::retry::RetryPolicy;
use crate::shard::{validate_worker_count, ManifestStore, ShardLayout};
use crate::telemetry::{Heartbeat, QueueGauges, Telemetry, TelemetryConfig};
use crate::watchdog::Watchdog;
use ffsim_core::{CancelToken, SimError};
use ffsim_obs::hist::Log2Hist;
use ffsim_obs::Phase;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Queue journal/snapshot format version; bumped on incompatible changes.
pub const QUEUE_VERSION: i64 = 1;

/// Journal file name inside the queue directory.
const JOURNAL_FILE: &str = "queue.journal";
/// Snapshot file name inside the queue directory.
const SNAPSHOT_FILE: &str = "queue.snapshot";
/// Merged result manifest name inside the queue directory.
const RESULTS_FILE: &str = "results.json";

/// The error a dangling or expired lease charges against a job.
const LEASE_LOST: &str = "lease lost before commit";

/// Why a queue operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueueError {
    /// The queue already holds [`QueueConfig::capacity`] live jobs;
    /// enqueue again after some drain. This is backpressure, not
    /// corruption.
    Saturated {
        /// Live (pending + leased) jobs at the moment of rejection.
        depth: usize,
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The campaign id was never [registered](JobQueue::register).
    UnknownCampaign(String),
    /// A live job with this id (and a payload) is already queued.
    DuplicateJob(String),
    /// The configuration is unusable (zero capacity, bad worker count,
    /// concurrent drains, ...).
    InvalidConfig(String),
    /// The journal, snapshot, or result store failed at the filesystem
    /// level (content damage never surfaces here — it quarantines).
    Journal(ManifestError),
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Saturated { depth, capacity } => {
                write!(
                    f,
                    "queue saturated: {depth} live jobs at capacity {capacity}"
                )
            }
            QueueError::UnknownCampaign(id) => write!(f, "unknown campaign `{id}`"),
            QueueError::DuplicateJob(id) => write!(f, "job `{id}` is already queued"),
            QueueError::InvalidConfig(m) => write!(f, "invalid queue config: {m}"),
            QueueError::Journal(e) => write!(f, "queue journal: {e}"),
        }
    }
}

impl std::error::Error for QueueError {}

impl From<ManifestError> for QueueError {
    fn from(e: ManifestError) -> QueueError {
        QueueError::Journal(e)
    }
}

/// Durable queue settings.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// The queue directory: journal, snapshot, result shards, and
    /// quarantined evidence all live here.
    pub dir: PathBuf,
    /// Maximum live (pending + leased) jobs before
    /// [`QueueError::Saturated`].
    pub capacity: usize,
    /// Lease deadline: a job leased longer than this without committing
    /// is taken back and re-enqueued. `Duration::ZERO` means every lease
    /// is immediately reclaimable — commit still wins if the job
    /// finishes first.
    pub lease: Duration,
    /// Lease-level failures (dangling leases at restart, expiries, runner
    /// panics) of the same kind before a job is quarantined as poison.
    pub max_lease_failures: u32,
    /// Journal records between compactions into the snapshot.
    pub compact_every: usize,
    /// Worker threads for [`JobQueue::drain`] (`0` = one per CPU).
    pub workers: usize,
    /// Retry policy for job attempts (reused for the lease backoff
    /// budget: re-enqueued jobs keep their attempt history semantics).
    pub retry: RetryPolicy,
    /// Per-attempt deadline for jobs without their own.
    pub default_timeout: Option<Duration>,
    /// Result manifest sharding (`None` = single `results.json`).
    pub shards: Option<usize>,
    /// Content-addressed result cache directory (`None` = no cache).
    pub cache_dir: Option<PathBuf>,
    /// The filesystem seam for journal appends, snapshot installs, shard
    /// saves, and cache writes.
    pub io: SharedIo,
    /// Heartbeat telemetry (includes queue gauges when enabled).
    pub telemetry: TelemetryConfig,
}

impl QueueConfig {
    /// Defaults rooted at `dir`: capacity 4096, 60 s leases, quarantine
    /// after 3 lease failures, compaction every 256 records.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> QueueConfig {
        QueueConfig {
            dir: dir.into(),
            capacity: 4096,
            lease: Duration::from_secs(60),
            max_lease_failures: 3,
            compact_every: 256,
            workers: 0,
            retry: RetryPolicy::default(),
            default_timeout: Some(Duration::from_secs(300)),
            shards: None,
            cache_dir: None,
            io: SharedIo::default(),
            telemetry: TelemetryConfig::from_env(),
        }
    }

    fn validate(&self) -> Result<(), QueueError> {
        let invalid = |m: String| Err(QueueError::InvalidConfig(m));
        if self.capacity == 0 {
            return invalid("capacity must be at least 1".into());
        }
        if self.max_lease_failures == 0 {
            return invalid("max_lease_failures must be at least 1".into());
        }
        if self.compact_every == 0 {
            return invalid("compact_every must be at least 1".into());
        }
        validate_worker_count(self.workers)
            .map_err(|e| QueueError::InvalidConfig(e.to_string()))?;
        if let Some(shards) = self.shards {
            crate::shard::validate_shard_count(shards)
                .map_err(|e| QueueError::InvalidConfig(e.to_string()))?;
        }
        Ok(())
    }
}

/// A campaign registered with the queue: its share of the workers and the
/// base priority of its jobs.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign id; enqueued job ids are conventionally prefixed with it.
    pub id: String,
    /// Deficit-round-robin weight against sibling campaigns at the same
    /// priority (must be ≥ 1).
    pub weight: u32,
    /// Base priority added to each job's own
    /// [`priority`](Job::priority); higher runs first.
    pub priority: i32,
}

impl CampaignSpec {
    /// A campaign with weight 1 and base priority 0.
    #[must_use]
    pub fn new(id: impl Into<String>) -> CampaignSpec {
        CampaignSpec {
            id: id.into(),
            weight: 1,
            priority: 0,
        }
    }

    /// Sets the fair-share weight.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> CampaignSpec {
        self.weight = weight;
        self
    }

    /// Sets the base priority.
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> CampaignSpec {
        self.priority = priority;
        self
    }
}

/// What [`JobQueue::enqueue`] did with a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Enqueued {
    /// Queued (or re-attached to a recovered pending entry).
    Accepted,
    /// A durable result already exists; the job will appear in the merged
    /// report without re-running.
    AlreadyComplete,
    /// The job is quarantined as poison from an earlier run; it stays
    /// quarantined and is reported, not re-run.
    Poisoned,
}

/// A job quarantined after repeated identical lease-level failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoisonJob {
    /// The job id.
    pub id: String,
    /// The campaign it belonged to.
    pub campaign: String,
    /// How many identical failures it accumulated.
    pub failures: u32,
    /// The recorded last error (panic message, lease loss, or the
    /// underlying [`SimError`](ffsim_core::SimError) text).
    pub error: String,
}

/// What startup recovery found in the queue directory.
#[derive(Clone, Debug, Default)]
pub struct Recovery {
    /// Quarantine notices for damaged files (journal, snapshot, result
    /// shards). Empty on clean startups.
    pub quarantines: Vec<Quarantine>,
    /// Jobs whose dangling lease (worker died mid-job) was reclaimed and
    /// re-enqueued with their budget intact.
    pub re_leased: usize,
    /// Whether a half-written final journal record was dropped.
    pub torn_tail_dropped: bool,
}

/// Counters describing one finished [`JobQueue::drain`].
#[derive(Clone, Debug)]
pub struct DrainOutcome {
    /// Records for every job with a durable terminal result (freshly
    /// executed plus resumed), merged deterministically (id-sorted).
    pub records: BTreeMap<String, JobRecord>,
    /// Poison jobs quarantined so far, id-sorted; rendered in the report
    /// appendix.
    pub poison: Vec<PoisonJob>,
    /// Jobs skipped at enqueue because their result was already durable.
    pub resumed: usize,
    /// Jobs executed to a terminal record by this drain (cache hits
    /// included).
    pub executed: usize,
    /// Jobs served from the result cache without simulating.
    pub cache_hits: usize,
    /// Jobs that probed the cache and missed.
    pub cache_misses: usize,
    /// Running jobs preempted by a higher-priority enqueue (re-enqueued,
    /// never failed).
    pub preempted: usize,
    /// Leases taken back after expiring (commit-wins races excluded).
    pub lease_expiries: usize,
    /// Dangling leases reclaimed at startup (see [`Recovery`]).
    pub re_leased: usize,
    /// Whether the service stop token fired mid-drain; leased jobs stay
    /// journaled and re-run on resume.
    pub cancelled: bool,
    /// File-level quarantine notices from startup recovery.
    pub quarantines: Vec<Quarantine>,
    /// Per-campaign queue-wait distributions (milliseconds from enqueue
    /// to lease), for the stderr report appendix.
    pub waits: BTreeMap<String, Log2Hist>,
}

/// Aggregate queue state, for services and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs pending with a payload (runnable now).
    pub pending: usize,
    /// Jobs currently leased to workers.
    pub leased: usize,
    /// Jobs with a durable `Committed` terminal state.
    pub committed: usize,
    /// Jobs with a durable `Failed` terminal state.
    pub failed: usize,
    /// Poison jobs quarantined.
    pub quarantined: usize,
}

/// The execution context handed to a [`JobRunner`]: wraps the shared
/// per-job execution engine (retries, degradation ladder, watchdog
/// deadlines, panic isolation) so custom runners can delegate to the real
/// thing.
pub struct RunContext<'a> {
    executor: Executor<'a>,
}

impl fmt::Debug for RunContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunContext").finish_non_exhaustive()
    }
}

impl RunContext<'_> {
    /// Runs `job` under full supervision. Returns `None` when the service
    /// stop token or `takeback` fired mid-attempt (the queue re-enqueues
    /// the job; the interrupted attempt burns no retry budget).
    #[must_use]
    pub fn execute(&self, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        self.executor.execute_job(job, Some(takeback))
    }
}

/// How a leased job is executed. The default runner delegates straight to
/// [`RunContext::execute`]; tests substitute runners that panic, stall,
/// or count invocations. A panic escaping `run` is contained by the queue
/// and counted as a lease-level failure toward poison quarantine.
pub trait JobRunner: Sync {
    /// Executes one leased job. Return `None` only when `takeback` (or
    /// the service stop token) fired; returning `None` otherwise is
    /// treated as a lease failure.
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord>;
}

/// The production runner: full supervised execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct DefaultRunner;

impl JobRunner for DefaultRunner {
    fn run(&self, ctx: &RunContext<'_>, job: &Job, takeback: &CancelToken) -> Option<JobRecord> {
        ctx.execute(job, takeback)
    }
}

/// Per-job lifecycle state, mirrored 1:1 by journal replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Pending,
    Leased,
    Committed,
    Failed,
    Quarantined,
}

impl State {
    fn label(self) -> &'static str {
        match self {
            State::Pending => "pending",
            State::Leased => "leased",
            State::Committed => "committed",
            State::Failed => "failed",
            State::Quarantined => "quarantined",
        }
    }

    fn from_label(label: &str) -> Option<State> {
        Some(match label {
            "pending" => State::Pending,
            "leased" => State::Leased,
            "committed" => State::Committed,
            "failed" => State::Failed,
            "quarantined" => State::Quarantined,
            _ => return None,
        })
    }

    fn is_terminal(self) -> bool {
        matches!(self, State::Committed | State::Failed | State::Quarantined)
    }
}

/// One job's queue entry. The journal is the durable form of exactly this
/// struct minus the payload (workload closures cannot be serialized; a
/// restarted service re-enqueues the same job sequence to re-attach
/// them).
#[derive(Clone, Debug)]
struct Entry {
    state: State,
    campaign: String,
    priority: i32,
    /// Consecutive identical lease-level failures (reset when the error
    /// changes).
    failures: u32,
    error: Option<String>,
    payload: Option<Job>,
    enqueued_at: Option<Instant>,
}

impl Entry {
    fn new(campaign: String, priority: i32) -> Entry {
        Entry {
            state: State::Pending,
            campaign,
            priority,
            failures: 0,
            error: None,
            payload: None,
            enqueued_at: None,
        }
    }

    /// Charges one lease-level failure of kind `error`; identical
    /// consecutive failures accumulate toward poison quarantine, a
    /// different failure restarts the count.
    fn charge(&mut self, error: &str) {
        if self.error.as_deref() == Some(error) {
            self.failures += 1;
        } else {
            self.error = Some(error.to_string());
            self.failures = 1;
        }
    }
}

#[derive(Debug)]
struct CampaignState {
    weight: u32,
    priority: i32,
    deficit: u32,
    /// Per-priority FIFOs of pending job ids.
    fifos: BTreeMap<i32, VecDeque<String>>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Takeback {
    Preempted,
    Expired,
}

#[derive(Debug)]
struct Running {
    token: CancelToken,
    campaign: String,
    priority: i32,
    leased_at: Instant,
    deadline: Instant,
    takeback: Option<Takeback>,
}

#[derive(Debug, Default)]
struct Stats {
    resumed: usize,
    executed: usize,
    preempted: usize,
    lease_expiries: usize,
    re_leased: usize,
}

#[derive(Debug)]
struct Inner {
    campaigns: BTreeMap<String, CampaignState>,
    jobs: BTreeMap<String, Entry>,
    running: BTreeMap<String, Running>,
    /// The campaign the deficit-round-robin scan starts from.
    rr_cursor: Option<String>,
    /// Snapshot generation; journal records stamped with an older
    /// generation are already folded into the snapshot and skipped.
    gen: u64,
    records_since_compact: usize,
    /// Live (pending-with-payload + leased) jobs, for capacity checks.
    live: usize,
    drain_active: bool,
    idle_workers: usize,
    stats: Stats,
    waits: BTreeMap<String, Log2Hist>,
    /// Per-campaign lease-to-commit run times (milliseconds), the basis
    /// for the suggested lease deadline services clamp against.
    runs: BTreeMap<String, Log2Hist>,
    persist_error: Option<ManifestError>,
}

/// The durable job queue. See the [module docs](self).
pub struct JobQueue {
    cfg: QueueConfig,
    journal_path: PathBuf,
    snapshot_path: PathBuf,
    /// The live lease deadline in milliseconds. Starts at
    /// [`QueueConfig::lease`]; services may raise it at runtime from the
    /// observed run-time distribution ([`JobQueue::set_lease`]).
    lease_ms: AtomicU64,
    inner: Mutex<Inner>,
    work: Condvar,
    cancel: CancelToken,
    gauges: Arc<QueueGauges>,
    store: ManifestStore,
    cache: Option<CacheStore>,
    recovery: Recovery,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
}

impl fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobQueue")
            .field("dir", &self.cfg.dir)
            .finish_non_exhaustive()
    }
}

impl JobQueue {
    /// Opens (or creates) the queue at [`QueueConfig::dir`], replaying the
    /// snapshot and journal: a half-written final record is dropped,
    /// damaged files are quarantined to `.corrupt` siblings, dangling
    /// leases are reclaimed (or quarantined as poison once over budget).
    ///
    /// # Errors
    ///
    /// [`QueueError::InvalidConfig`] for unusable settings and
    /// [`QueueError::Journal`] for filesystem-level failures. Content
    /// damage never fails an open — it quarantines and is reported in
    /// [`JobQueue::recovery`].
    pub fn open(cfg: QueueConfig) -> Result<JobQueue, QueueError> {
        cfg.validate()?;
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| ManifestError::Io(format!("creating {}: {e}", cfg.dir.display())))?;
        let journal_path = cfg.dir.join(JOURNAL_FILE);
        let snapshot_path = cfg.dir.join(SNAPSHOT_FILE);
        let mut recovery = Recovery::default();

        // 1. The snapshot: the folded base state. A damaged snapshot is
        // quarantined and replay proceeds from empty — terminal results
        // still live in the manifest shards, so nothing durable is lost.
        let (gen, mut jobs) = match manifest::read_sealed(&snapshot_path) {
            Ok(Some(body)) => match parse_snapshot(&body) {
                Ok(state) => state,
                Err(error) => {
                    recovery
                        .quarantines
                        .push(manifest::quarantine_file(&snapshot_path, error)?);
                    (0, BTreeMap::new())
                }
            },
            Ok(None) => (0, BTreeMap::new()),
            Err(error) if error.is_corruption() => {
                recovery
                    .quarantines
                    .push(manifest::quarantine_file(&snapshot_path, error)?);
                (0, BTreeMap::new())
            }
            Err(io) => return Err(io.into()),
        };

        // 2. The journal tail: replayed record by record on top of the
        // snapshot. Only records of the current generation apply —
        // anything older is already folded into the snapshot (a crash
        // between snapshot install and journal truncation leaves stale
        // records behind; the generation stamp makes replay idempotent).
        let journal_text = match std::fs::read_to_string(&journal_path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                return Err(QueueError::Journal(ManifestError::Io(format!(
                    "reading {}: {e}",
                    journal_path.display()
                ))))
            }
        };
        match parse_journal(&journal_text) {
            Ok((records, valid_len, torn)) => {
                for record in records {
                    if record.gen >= gen {
                        apply(&mut jobs, record);
                    }
                }
                if torn {
                    // Truncate back to the last sealed record so future
                    // appends never interleave with the torn garbage.
                    cfg.io
                        .with(|io| io.write(&journal_path, &journal_text.as_bytes()[..valid_len]))
                        .map_err(|e| {
                            ManifestError::Io(format!(
                                "truncating torn journal {}: {e}",
                                journal_path.display()
                            ))
                        })?;
                    recovery.torn_tail_dropped = true;
                }
            }
            Err(error) => {
                recovery
                    .quarantines
                    .push(manifest::quarantine_file(&journal_path, error)?);
            }
        }

        // 3. Dangling leases: the worker (or process) holding them died.
        // Reclaim with the budget intact, or quarantine poison jobs.
        let mut re_leased = 0usize;
        let mut poison_appends = Vec::new();
        for (id, entry) in &mut jobs {
            if entry.state == State::Leased {
                entry.charge(LEASE_LOST);
                if entry.failures >= cfg.max_lease_failures {
                    entry.state = State::Quarantined;
                    poison_appends.push(quarantined_record(gen, id, entry));
                } else {
                    entry.state = State::Pending;
                    re_leased += 1;
                }
            }
        }
        for text in poison_appends {
            cfg.io
                .with(|io| io.append(&journal_path, text.as_bytes()))
                .map_err(|e| {
                    ManifestError::Io(format!("appending to {}: {e}", journal_path.display()))
                })?;
        }
        recovery.re_leased = re_leased;

        // 4. The durable results and the cache.
        let results = cfg.dir.join(RESULTS_FILE);
        let mut store = match cfg.shards {
            None => ManifestStore::single(results),
            Some(n) => ManifestStore::sharded(
                ShardLayout::new(results, n)
                    .map_err(|e| QueueError::InvalidConfig(e.to_string()))?,
            ),
        };
        recovery.quarantines.extend(store.load()?);
        let cache = cfg.cache_dir.clone().map(CacheStore::new);

        let inner = Inner {
            campaigns: BTreeMap::new(),
            jobs,
            running: BTreeMap::new(),
            rr_cursor: None,
            gen,
            records_since_compact: 0,
            live: 0,
            drain_active: false,
            idle_workers: 0,
            stats: Stats {
                re_leased,
                ..Stats::default()
            },
            waits: BTreeMap::new(),
            runs: BTreeMap::new(),
            persist_error: None,
        };
        let lease_ms = u64::try_from(cfg.lease.as_millis()).unwrap_or(u64::MAX);
        Ok(JobQueue {
            cfg,
            journal_path,
            snapshot_path,
            lease_ms: AtomicU64::new(lease_ms),
            inner: Mutex::new(inner),
            work: Condvar::new(),
            cancel: CancelToken::new(),
            gauges: QueueGauges::new(),
            store,
            cache,
            recovery,
            cache_hits: AtomicUsize::new(0),
            cache_misses: AtomicUsize::new(0),
        })
    }

    /// What startup recovery found (quarantines, reclaimed leases, torn
    /// tail).
    #[must_use]
    pub fn recovery(&self) -> &Recovery {
        &self.recovery
    }

    /// The service-wide stop token: firing it makes workers take no new
    /// leases and abandon in-flight jobs (their journaled leases dangle
    /// and are reclaimed on the next open — exactly like kill -9).
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The live gauges rendered into heartbeat lines.
    #[must_use]
    pub fn gauges(&self) -> Arc<QueueGauges> {
        Arc::clone(&self.gauges)
    }

    /// Registers (or re-registers) a campaign. Re-registration updates
    /// the weight and base priority and keeps any queued jobs.
    ///
    /// # Errors
    ///
    /// [`QueueError::InvalidConfig`] for a zero weight.
    pub fn register(&self, spec: &CampaignSpec) -> Result<(), QueueError> {
        if spec.weight == 0 {
            return Err(QueueError::InvalidConfig(format!(
                "campaign `{}` weight must be at least 1",
                spec.id
            )));
        }
        let mut inner = self.lock();
        match inner.campaigns.get_mut(&spec.id) {
            Some(state) => {
                state.weight = spec.weight;
                state.priority = spec.priority;
            }
            None => {
                inner.campaigns.insert(
                    spec.id.clone(),
                    CampaignState {
                        weight: spec.weight,
                        priority: spec.priority,
                        deficit: 0,
                        fifos: BTreeMap::new(),
                    },
                );
            }
        }
        Ok(())
    }

    /// Enqueues `job` under `campaign`.
    ///
    /// Jobs whose result is already durable are skipped
    /// ([`Enqueued::AlreadyComplete`]); quarantined poison jobs stay
    /// quarantined ([`Enqueued::Poisoned`]). Jobs recovered from the
    /// journal in a non-terminal state re-attach their payload and keep
    /// their failure budget. A higher-priority enqueue may preempt a
    /// running lower-priority job.
    ///
    /// # Errors
    ///
    /// [`QueueError::UnknownCampaign`], [`QueueError::DuplicateJob`],
    /// [`QueueError::Saturated`], or a journal append failure.
    pub fn enqueue(&self, campaign: &str, job: Job) -> Result<Enqueued, QueueError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        let Some(spec) = inner.campaigns.get(campaign) else {
            return Err(QueueError::UnknownCampaign(campaign.to_string()));
        };
        let priority = spec.priority.saturating_add(job.priority);
        let id = job.id.clone();

        let existing = inner.jobs.get(&id).map(|e| (e.state, e.payload.is_some()));
        let needs_record = match existing {
            Some((State::Quarantined, _)) => return Ok(Enqueued::Poisoned),
            Some((State::Committed | State::Failed, _)) => {
                if self.store.contains(&id) {
                    inner.stats.resumed += 1;
                    return Ok(Enqueued::AlreadyComplete);
                }
                // Terminal in the journal but the durable record is
                // gone (e.g. a quarantined shard): deliberate re-run.
                true
            }
            Some((State::Pending | State::Leased, has_payload)) => {
                if has_payload {
                    return Err(QueueError::DuplicateJob(id));
                }
                // A recovered entry: re-attach the payload, keep the
                // failure budget; the journal already knows this job.
                false
            }
            None => {
                if self.store.contains(&id) {
                    // Durable from a prior life whose journal was
                    // compacted or quarantined away; repair the journal.
                    self.append_record(inner, committed_record_body(&id))?;
                    let mut entry = Entry::new(campaign.to_string(), priority);
                    entry.state = State::Committed;
                    inner.jobs.insert(id, entry);
                    inner.stats.resumed += 1;
                    self.maybe_compact(inner);
                    return Ok(Enqueued::AlreadyComplete);
                }
                true
            }
        };

        if inner.live >= self.cfg.capacity {
            return Err(QueueError::Saturated {
                depth: inner.live,
                capacity: self.cfg.capacity,
            });
        }

        if needs_record {
            self.append_record(inner, enqueued_record_body(&id, campaign, priority))?;
        }
        let now = Instant::now();
        let entry = inner
            .jobs
            .entry(id.clone())
            .or_insert_with(|| Entry::new(campaign.to_string(), priority));
        if entry.state.is_terminal() {
            // Deliberate re-run of a job whose durable record was lost.
            entry.failures = 0;
            entry.error = None;
        }
        entry.state = State::Pending;
        entry.campaign = campaign.to_string();
        entry.priority = priority;
        entry.payload = Some(job);
        entry.enqueued_at = Some(now);
        inner.live += 1;
        inner
            .campaigns
            .get_mut(campaign)
            .expect("campaign checked above")
            .fifos
            .entry(priority)
            .or_default()
            .push_back(id);
        self.maybe_compact(inner);
        self.maybe_preempt(inner, priority);
        self.refresh_gauges(inner, now);
        self.work.notify_all();
        Ok(Enqueued::Accepted)
    }

    /// Takes back expired leases: each running job past its lease
    /// deadline is cancelled through its token and will be re-enqueued
    /// (unless it commits first — commit wins). Returns how many leases
    /// were marked. Called automatically by drain workers; exposed for
    /// services driving the queue directly (the campaign server wires it
    /// into a periodic tick). The cumulative reaped-lease count is
    /// published as the `queue_reaped_leases` gauge.
    pub fn reap_expired(&self) -> usize {
        let mut inner = self.lock();
        let reaped = self.reap_locked(&mut inner, Instant::now());
        hostobs::set_gauge(
            "queue_reaped_leases",
            i64::try_from(inner.stats.lease_expiries).unwrap_or(i64::MAX),
        );
        reaped
    }

    /// The live lease deadline (initially [`QueueConfig::lease`]).
    #[must_use]
    pub fn lease(&self) -> Duration {
        Duration::from_millis(self.lease_ms.load(Ordering::Relaxed))
    }

    /// Replaces the lease deadline for *future* leases; in-flight leases
    /// keep the deadline they were taken with. Services raise this when
    /// the observed run-time distribution says the configured deadline
    /// would reap healthy jobs.
    pub fn set_lease(&self, lease: Duration) {
        let ms = u64::try_from(lease.as_millis()).unwrap_or(u64::MAX);
        self.lease_ms.store(ms, Ordering::Relaxed);
    }

    /// Per-campaign enqueue-to-lease wait distributions (milliseconds),
    /// the data behind [`report::render_queue_waits`](crate::report).
    #[must_use]
    pub fn wait_hists(&self) -> BTreeMap<String, Log2Hist> {
        self.lock().waits.clone()
    }

    /// Per-campaign lease-to-commit run-time distributions (milliseconds).
    #[must_use]
    pub fn run_hists(&self) -> BTreeMap<String, Log2Hist> {
        self.lock().runs.clone()
    }

    /// A lease deadline suggestion derived from the run-time `Log2Hist`
    /// p99: four times the slowest campaign's p99 commit time, so retries
    /// and the degradation ladder fit inside one lease. `None` until at
    /// least one job has committed (no history to derive from).
    #[must_use]
    pub fn suggested_lease(&self) -> Option<Duration> {
        let inner = self.lock();
        let p99 = inner.runs.values().filter_map(Log2Hist::p99).max()?;
        Some(Duration::from_millis(p99.saturating_mul(4).max(1)))
    }

    /// Live (pending-with-payload + leased) jobs of one campaign, for
    /// per-campaign admission quotas layered over the global
    /// [`QueueConfig::capacity`].
    #[must_use]
    pub fn campaign_live(&self, campaign: &str) -> usize {
        let inner = self.lock();
        inner
            .jobs
            .values()
            .filter(|e| {
                e.campaign == campaign
                    && ((e.state == State::Pending && e.payload.is_some())
                        || e.state == State::Leased)
            })
            .count()
    }

    /// The merged durable result records (id-sorted), without draining:
    /// what [`report::render`](crate::report::render) turns into the
    /// deterministic campaign report.
    #[must_use]
    pub fn merged_records(&self) -> BTreeMap<String, JobRecord> {
        self.store.merged()
    }

    /// Aggregate queue state.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let inner = self.lock();
        let mut stats = QueueStats {
            leased: inner.running.len(),
            pending: inner.live - inner.running.len(),
            ..QueueStats::default()
        };
        for entry in inner.jobs.values() {
            match entry.state {
                State::Committed => stats.committed += 1,
                State::Failed => stats.failed += 1,
                State::Quarantined => stats.quarantined += 1,
                State::Pending | State::Leased => {}
            }
        }
        stats
    }

    /// The current poison jobs, id-sorted (deterministic for reports).
    #[must_use]
    pub fn poison_jobs(&self) -> Vec<PoisonJob> {
        poison_of(&self.lock().jobs)
    }

    /// Drains the queue with the production runner. See
    /// [`JobQueue::drain_with`].
    ///
    /// # Errors
    ///
    /// See [`JobQueue::drain_with`].
    pub fn drain(&self) -> Result<DrainOutcome, QueueError> {
        self.drain_with(&DefaultRunner)
    }

    /// Runs a worker pool until every runnable job has a durable terminal
    /// state (or the stop token fires). Jobs enqueued concurrently with
    /// the drain are picked up; payload-less recovered entries wait for
    /// their re-enqueue and do not block completion.
    ///
    /// # Errors
    ///
    /// The first journal/shard persist failure (the drain stops rather
    /// than silently losing resume coverage), or
    /// [`QueueError::InvalidConfig`] for a concurrent drain.
    pub fn drain_with(&self, runner: &dyn JobRunner) -> Result<DrainOutcome, QueueError> {
        let workers = {
            let mut inner = self.lock();
            if inner.drain_active {
                return Err(QueueError::InvalidConfig(
                    "a drain is already active on this queue".into(),
                ));
            }
            inner.drain_active = true;
            if self.cfg.workers == 0 {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            } else {
                self.cfg.workers
            }
        };
        let total = {
            let inner = self.lock();
            inner.live + inner.stats.executed
        };
        let telemetry = Arc::new(Telemetry::with_queue(total, Arc::clone(&self.gauges)));
        let heartbeat = self
            .cfg
            .telemetry
            .enabled
            .then(|| Heartbeat::spawn(Arc::clone(&telemetry), self.cfg.telemetry.heartbeat));
        let watchdog = Watchdog::spawn(self.cancel.clone());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&watchdog, &telemetry, runner));
            }
        });

        if let Some(heartbeat) = heartbeat {
            heartbeat.stop();
        }
        drop(watchdog);

        let mut inner = self.lock();
        inner.drain_active = false;
        if let Some(error) = inner.persist_error.take() {
            return Err(error.into());
        }
        Ok(DrainOutcome {
            records: self.store.merged(),
            poison: poison_of(&inner.jobs),
            resumed: inner.stats.resumed,
            executed: inner.stats.executed,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            preempted: inner.stats.preempted,
            lease_expiries: inner.stats.lease_expiries,
            re_leased: inner.stats.re_leased,
            cancelled: self.cancel.is_cancelled(),
            quarantines: self.recovery.quarantines.clone(),
            waits: inner.waits.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Worker internals.
    // ------------------------------------------------------------------

    fn worker_loop(&self, watchdog: &Watchdog, telemetry: &Telemetry, runner: &dyn JobRunner) {
        let ctx = RunContext {
            executor: Executor {
                retry: self.cfg.retry,
                default_timeout: self.cfg.default_timeout,
                stop: self.cancel.clone(),
                watchdog,
                telemetry,
            },
        };
        loop {
            let Some((id, job, token)) = self.next_job() else {
                return;
            };
            telemetry.job_started();
            let probe = campaign::probe_cache(self.cache.as_ref(), &job, &self.cfg.retry);
            let (record, key, hit) = match probe {
                Probe::Hit(record) => (Some(cache::rekey(*record, &job.id)), None, true),
                Probe::Miss(key) => {
                    if key.is_some() {
                        self.cache_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    match catch_unwind(AssertUnwindSafe(|| runner.run(&ctx, &job, &token))) {
                        Ok(record) => (record, key, false),
                        Err(payload) => {
                            // A panic that escaped the runner itself:
                            // queue-level containment. Charge a lease
                            // failure and keep draining.
                            let message = campaign::panic_message(payload.as_ref());
                            telemetry.job_abandoned();
                            self.finish_failure(&id, &format!("panic: {message}"));
                            continue;
                        }
                    }
                }
            };
            match record {
                Some(record) => {
                    if hit {
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        campaign::store_cache(&self.cfg.io, self.cache.as_ref(), key, &record);
                    }
                    if !self.finish_commit(&id, record, telemetry) {
                        return;
                    }
                }
                None => {
                    telemetry.job_abandoned();
                    self.finish_takeback(&id);
                }
            }
        }
    }

    /// Blocks until a job is leased, the queue is drained, or the service
    /// stops. Returns `None` when the worker should exit.
    fn next_job(&self) -> Option<(String, Job, CancelToken)> {
        let mut inner = self.lock();
        loop {
            if self.cancel.is_cancelled() {
                self.work.notify_all();
                return None;
            }
            self.reap_locked(&mut inner, Instant::now());
            if let Some(picked) = self.pick_locked(&mut inner) {
                return Some(picked);
            }
            if inner.running.is_empty() {
                // Nothing runnable and nothing in flight that could
                // re-enqueue: the drain is complete.
                self.work.notify_all();
                return None;
            }
            inner.idle_workers += 1;
            let (guard, _) = self
                .work
                .wait_timeout(inner, Duration::from_millis(5))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
            inner.idle_workers -= 1;
        }
    }

    /// Picks the next job under the scheduling policy and leases it.
    ///
    /// Strict priority first: only the highest effective priority with a
    /// runnable job anywhere is eligible. Within it, deficit round-robin
    /// across campaigns: a campaign spends one deficit unit per job and
    /// refills by its weight when empty, so throughput over time is
    /// proportional to weights. Ties break by campaign id (BTreeMap
    /// order), then enqueue order (FIFO) — fully deterministic for a
    /// given pick sequence.
    fn pick_locked(&self, inner: &mut Inner) -> Option<(String, Job, CancelToken)> {
        // Drop stale FIFO heads (committed elsewhere, re-prioritized)
        // and find the top runnable priority.
        let mut top: Option<i32> = None;
        let campaign_ids: Vec<String> = inner.campaigns.keys().cloned().collect();
        for cid in &campaign_ids {
            let state = inner.campaigns.get_mut(cid).expect("iterating known ids");
            let mut empty_prios = Vec::new();
            for (&prio, fifo) in state.fifos.iter_mut().rev() {
                while let Some(head) = fifo.front() {
                    let runnable = inner.jobs.get(head).is_some_and(|e| {
                        e.state == State::Pending && e.payload.is_some() && e.priority == prio
                    });
                    if runnable {
                        break;
                    }
                    fifo.pop_front();
                }
                if fifo.is_empty() {
                    empty_prios.push(prio);
                } else {
                    top = Some(top.map_or(prio, |t: i32| t.max(prio)));
                    break; // highest non-empty priority of this campaign
                }
            }
            for prio in empty_prios {
                state.fifos.remove(&prio);
            }
        }
        let top = top?;

        let cands: Vec<String> = campaign_ids
            .iter()
            .filter(|cid| {
                inner.campaigns[cid.as_str()]
                    .fifos
                    .get(&top)
                    .is_some_and(|f| !f.is_empty())
            })
            .cloned()
            .collect();
        debug_assert!(!cands.is_empty());
        let start = match &inner.rr_cursor {
            Some(cursor) => cands.iter().position(|c| c >= cursor).unwrap_or(0),
            None => 0,
        };
        // Deficit round-robin: visiting a drained campaign grants its
        // quantum and moves on; at most two passes always serve someone.
        for k in 0..=(2 * cands.len()) {
            let cid = &cands[(start + k) % cands.len()];
            let state = inner.campaigns.get_mut(cid).expect("candidate exists");
            if state.deficit == 0 {
                state.deficit = state.weight;
                hostobs::inc("queue_drr_rounds_total");
                continue;
            }
            state.deficit -= 1;
            let fifo = state.fifos.get_mut(&top).expect("candidate has jobs");
            let id = fifo.pop_front().expect("candidate fifo non-empty");
            if fifo.is_empty() {
                state.fifos.remove(&top);
                state.deficit = 0;
            }
            inner.rr_cursor = if state.deficit > 0 {
                Some(cid.clone())
            } else {
                cands
                    .get((start + k + 1) % cands.len())
                    .cloned()
                    .or_else(|| Some(cid.clone()))
            };
            return self.lease_locked(inner, &id);
        }
        None
    }

    /// Leases `id`: durable `Leased` record, running-set entry, wait
    /// histogram update. Reverts to pending if the journal append fails.
    fn lease_locked(&self, inner: &mut Inner, id: &str) -> Option<(String, Job, CancelToken)> {
        let now = Instant::now();
        if let Err(error) = self.append_record(inner, leased_record_body(id)) {
            if let QueueError::Journal(e) = error {
                inner.persist_error.get_or_insert(e);
            }
            self.cancel.cancel();
            return None;
        }
        let lease = self.lease();
        let entry = inner.jobs.get_mut(id).expect("leasing a known job");
        entry.state = State::Leased;
        let job = entry.payload.clone().expect("leasing requires a payload");
        let campaign = entry.campaign.clone();
        let priority = entry.priority;
        hostobs::inc("queue_leases_total");
        if let Some(enqueued_at) = entry.enqueued_at {
            let wait_ms =
                u64::try_from(now.duration_since(enqueued_at).as_millis()).unwrap_or(u64::MAX);
            inner
                .waits
                .entry(campaign.clone())
                .or_default()
                .record(wait_ms);
            hostobs::observe("queue_lease_wait_ms", wait_ms);
        }
        let token = CancelToken::new();
        inner.running.insert(
            id.to_string(),
            Running {
                token: token.clone(),
                campaign,
                priority,
                leased_at: now,
                deadline: now + lease,
                takeback: None,
            },
        );
        self.maybe_compact(inner);
        self.refresh_gauges(inner, now);
        Some((id.to_string(), job, token))
    }

    /// Marks expired leases for take-back (cancelling their tokens).
    fn reap_locked(&self, inner: &mut Inner, now: Instant) -> usize {
        let mut reaped = 0;
        for running in inner.running.values_mut() {
            if running.takeback.is_none() && now >= running.deadline {
                running.takeback = Some(Takeback::Expired);
                running.token.cancel();
                reaped += 1;
            }
        }
        inner.stats.lease_expiries += reaped;
        reaped
    }

    /// Preempts the lowest-priority running job strictly below
    /// `priority`, when no worker is idle to pick the new job up.
    fn maybe_preempt(&self, inner: &mut Inner, priority: i32) {
        if !inner.drain_active || inner.idle_workers > 0 {
            return;
        }
        let victim = inner
            .running
            .iter()
            .filter(|(_, r)| r.takeback.is_none() && r.priority < priority)
            .min_by(|(ida, a), (idb, b)| {
                (a.priority, &a.campaign, *ida).cmp(&(b.priority, &b.campaign, *idb))
            })
            .map(|(id, _)| id.clone());
        if let Some(id) = victim {
            let running = inner.running.get_mut(&id).expect("victim is running");
            running.takeback = Some(Takeback::Preempted);
            running.token.cancel();
            inner.stats.preempted += 1;
        }
    }

    /// Commits a terminal record: durable result first (cache write
    /// already happened), then the journal transition. Returns `false`
    /// when a persist failure should stop the worker.
    fn finish_commit(&self, id: &str, record: JobRecord, telemetry: &Telemetry) -> bool {
        let failed = record.status == JobStatus::Failed;
        let error_text = failed.then(|| last_attempt_error(&record));
        let committed = self.cfg.io.with(|io| self.store.commit(io, record.clone()));
        let mut inner = self.lock();
        if let Some(running) = inner.running.remove(id) {
            if running.takeback == Some(Takeback::Expired) {
                // The commit-wins race: the lease expired but the record
                // arrived first. The take-back never took effect, so it
                // is not counted as an expiry.
                inner.stats.lease_expiries -= 1;
            }
            // Lease-to-commit run time: the distribution a service derives
            // its suggested lease deadline from.
            let run_ms = u64::try_from(running.leased_at.elapsed().as_millis()).unwrap_or(u64::MAX);
            inner
                .runs
                .entry(running.campaign.clone())
                .or_default()
                .record(run_ms);
            hostobs::observe("queue_job_run_ms", run_ms);
        }
        if let Err(e) = committed {
            inner.persist_error.get_or_insert(e);
            self.cancel.cancel();
            self.work.notify_all();
            return false;
        }
        let entry = inner.jobs.get_mut(id).expect("committing a known job");
        if entry.state.is_terminal() {
            // A commit racing a take-back that already resolved: the
            // durable store holds an identical record; nothing to redo.
            telemetry.job_finished(&record);
            self.work.notify_all();
            return true;
        }
        let body = if failed {
            failed_record_body(id, error_text.as_deref().unwrap_or("failed"))
        } else {
            committed_record_body(id)
        };
        if let Err(error) = self.append_record(&mut inner, body) {
            if let QueueError::Journal(e) = error {
                inner.persist_error.get_or_insert(e);
            }
            self.cancel.cancel();
            self.work.notify_all();
            return false;
        }
        let entry = inner.jobs.get_mut(id).expect("committing a known job");
        entry.state = if failed {
            State::Failed
        } else {
            State::Committed
        };
        entry.error = error_text;
        entry.payload = None;
        entry.enqueued_at = None;
        inner.live -= 1;
        inner.stats.executed += 1;
        self.maybe_compact(&mut inner);
        telemetry.job_finished(&record);
        self.refresh_gauges(&mut inner, Instant::now());
        self.work.notify_all();
        true
    }

    /// Resolves a job whose runner returned `None`: preempted, lease
    /// expired, or service stop.
    fn finish_takeback(&self, id: &str) {
        let mut inner = self.lock();
        let Some(running) = inner.running.remove(id) else {
            return;
        };
        match running.takeback {
            Some(Takeback::Preempted) => {
                // Never failed, never a burned attempt: straight back to
                // the front of its FIFO.
                if self
                    .append_record(&mut inner, preempted_record_body(id))
                    .is_err()
                {
                    self.cancel.cancel();
                }
                self.requeue_front(&mut inner, id);
                self.maybe_compact(&mut inner);
            }
            Some(Takeback::Expired) => {
                self.charge_failure(&mut inner, id, "lease expired");
            }
            None => {
                if self.cancel.is_cancelled() {
                    // Service stop: leave the journaled lease dangling —
                    // the next open reclaims it exactly like a crash.
                    // In-memory the job goes back to pending so a
                    // fresh drain in this process could still run it.
                    self.requeue_front(&mut inner, id);
                } else {
                    // A runner returned None with no take-back: treat as
                    // a lease failure so a buggy runner cannot livelock
                    // the queue.
                    self.charge_failure(&mut inner, id, "runner returned no record");
                }
            }
        }
        self.refresh_gauges(&mut inner, Instant::now());
        self.work.notify_all();
    }

    /// Queue-level failure (escaped panic) on a leased job.
    fn finish_failure(&self, id: &str, error: &str) {
        let mut inner = self.lock();
        inner.running.remove(id);
        self.charge_failure(&mut inner, id, error);
        self.refresh_gauges(&mut inner, Instant::now());
        self.work.notify_all();
    }

    /// Charges a lease-level failure; quarantines at the budget.
    fn charge_failure(&self, inner: &mut Inner, id: &str, error: &str) {
        let entry = inner.jobs.get_mut(id).expect("failing a known job");
        if entry.state.is_terminal() {
            return; // commit already won
        }
        entry.charge(error);
        if entry.failures >= self.cfg.max_lease_failures {
            let gen = inner.gen;
            let entry = inner.jobs.get_mut(id).expect("checked above");
            entry.state = State::Quarantined;
            entry.payload = None;
            entry.enqueued_at = None;
            let text = quarantined_record(gen, id, entry);
            inner.live -= 1;
            if self
                .cfg
                .io
                .with(|io| io.append(&self.journal_path, text.as_bytes()))
                .is_err()
            {
                self.cancel.cancel();
            } else {
                inner.records_since_compact += 1;
                self.maybe_compact(inner);
            }
        } else {
            self.requeue_front(inner, id);
        }
    }

    /// Puts a taken-back job at the front of its campaign FIFO (it was
    /// the oldest: FIFO order is preserved across take-backs).
    fn requeue_front(&self, inner: &mut Inner, id: &str) {
        let entry = inner.jobs.get_mut(id).expect("requeueing a known job");
        entry.state = State::Pending;
        let campaign = entry.campaign.clone();
        let priority = entry.priority;
        if let Some(state) = inner.campaigns.get_mut(&campaign) {
            state
                .fifos
                .entry(priority)
                .or_default()
                .push_front(id.to_string());
        }
    }

    /// Appends one sealed record to the journal. Compaction is NOT
    /// triggered here: the caller appends first, applies the matching
    /// in-memory transition, and only then calls
    /// [`JobQueue::maybe_compact`] — otherwise a compaction fired
    /// mid-transition would snapshot the *pre*-transition state while
    /// truncating the journal record that carried the transition,
    /// durably losing it.
    fn append_record(
        &self,
        inner: &mut Inner,
        body: Vec<(String, Value)>,
    ) -> Result<(), QueueError> {
        let text = sealed_record(inner.gen, body);
        hostobs::inc("queue_journal_appends_total");
        hostobs::scope(Phase::QueueJournal, || {
            self.cfg
                .io
                .with(|io| io.append(&self.journal_path, text.as_bytes()))
        })
        .map_err(|e| {
            ManifestError::Io(format!("appending to {}: {e}", self.journal_path.display()))
        })?;
        inner.records_since_compact += 1;
        Ok(())
    }

    /// Compacts when the journal has grown past the threshold. Must only
    /// be called when the in-memory state table fully reflects every
    /// appended record (see [`JobQueue::append_record`]). A compaction
    /// failure is a persist failure: the drain is stopped rather than
    /// risking resume coverage.
    fn maybe_compact(&self, inner: &mut Inner) {
        if inner.records_since_compact < self.cfg.compact_every {
            return;
        }
        if let Err(QueueError::Journal(e)) = self.compact_locked(inner) {
            inner.persist_error.get_or_insert(e);
            self.cancel.cancel();
        }
    }

    /// Folds the state table into a fresh snapshot and truncates the
    /// journal. Generation-stamped so a crash between the two steps
    /// replays nothing twice.
    fn compact_locked(&self, inner: &mut Inner) -> Result<(), QueueError> {
        hostobs::inc("queue_compactions_total");
        hostobs::timed(Phase::QueueJournal, "queue_compaction_ns", || {
            inner.gen += 1;
            let body = snapshot_body(inner.gen, &inner.jobs);
            let installed = self
                .cfg
                .io
                .with(|io| manifest::save_sealed_with(io, &self.snapshot_path, &body));
            if let Err(e) = installed {
                inner.gen -= 1; // nothing durable changed; stay on the old one
                return Err(e.into());
            }
            self.cfg
                .io
                .with(|io| io.write(&self.journal_path, b""))
                .map_err(|e| {
                    ManifestError::Io(format!(
                        "truncating {} after compaction: {e}",
                        self.journal_path.display()
                    ))
                })?;
            inner.records_since_compact = 0;
            Ok(())
        })
    }

    fn refresh_gauges(&self, inner: &mut Inner, now: Instant) {
        let leased = inner.running.len();
        let depth = inner.live.saturating_sub(leased);
        let oldest_lease = inner
            .running
            .values()
            .map(|r| now.saturating_duration_since(r.leased_at))
            .max();
        // The oldest pending job per campaign sits at its FIFO head.
        let longest_wait = inner
            .campaigns
            .values()
            .flat_map(|c| c.fifos.values())
            .filter_map(|fifo| fifo.front())
            .filter_map(|id| inner.jobs.get(id).and_then(|e| e.enqueued_at))
            .map(|at| now.saturating_duration_since(at))
            .max();
        self.gauges.set(depth, leased, oldest_lease, longest_wait);
        hostobs::set_gauge("queue_depth", i64::try_from(depth).unwrap_or(i64::MAX));
        hostobs::set_gauge("queue_leased", i64::try_from(leased).unwrap_or(i64::MAX));
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

// ----------------------------------------------------------------------
// Journal record encoding and replay.
// ----------------------------------------------------------------------

/// One decoded journal record.
#[derive(Clone, Debug, PartialEq)]
struct Record {
    gen: u64,
    kind: Kind,
    job: String,
    campaign: String,
    priority: i32,
    failures: u32,
    error: Option<String>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Enqueued,
    Leased,
    Committed,
    Failed,
    Preempted,
    Quarantined,
}

impl Kind {
    fn from_label(label: &str) -> Option<Kind> {
        Some(match label {
            "enqueued" => Kind::Enqueued,
            "leased" => Kind::Leased,
            "committed" => Kind::Committed,
            "failed" => Kind::Failed,
            "preempted" => Kind::Preempted,
            "quarantined" => Kind::Quarantined,
            _ => return None,
        })
    }
}

fn sealed_record(gen: u64, fields: Vec<(String, Value)>) -> String {
    let mut obj = vec![("gen".to_string(), Value::Int(gen as i64))];
    obj.extend(fields);
    manifest::seal(&Value::Obj(obj).to_json())
}

fn enqueued_record_body(id: &str, campaign: &str, priority: i32) -> Vec<(String, Value)> {
    vec![
        ("record".into(), Value::Str("enqueued".into())),
        ("job".into(), Value::Str(id.into())),
        ("campaign".into(), Value::Str(campaign.into())),
        ("priority".into(), Value::Int(i64::from(priority))),
    ]
}

fn leased_record_body(id: &str) -> Vec<(String, Value)> {
    vec![
        ("record".into(), Value::Str("leased".into())),
        ("job".into(), Value::Str(id.into())),
    ]
}

fn committed_record_body(id: &str) -> Vec<(String, Value)> {
    vec![
        ("record".into(), Value::Str("committed".into())),
        ("job".into(), Value::Str(id.into())),
    ]
}

fn failed_record_body(id: &str, error: &str) -> Vec<(String, Value)> {
    vec![
        ("record".into(), Value::Str("failed".into())),
        ("job".into(), Value::Str(id.into())),
        ("error".into(), Value::Str(error.into())),
    ]
}

fn preempted_record_body(id: &str) -> Vec<(String, Value)> {
    vec![
        ("record".into(), Value::Str("preempted".into())),
        ("job".into(), Value::Str(id.into())),
    ]
}

fn quarantined_record(gen: u64, id: &str, entry: &Entry) -> String {
    sealed_record(
        gen,
        vec![
            ("record".into(), Value::Str("quarantined".into())),
            ("job".into(), Value::Str(id.into())),
            ("failures".into(), Value::Int(i64::from(entry.failures))),
            (
                "error".into(),
                Value::Str(entry.error.clone().unwrap_or_else(|| LEASE_LOST.into())),
            ),
        ],
    )
}

/// Splits the journal into individually sealed records. Returns the
/// decoded records, the byte length of the valid prefix, and whether a
/// torn tail was dropped.
///
/// A record is the byte span up to and including a checksum trailer
/// line. The final span is allowed to be damaged in any way — that is
/// the torn tail a crash mid-append leaves — and is silently dropped.
/// Damage *before* the final span is corruption and errors out (the
/// caller quarantines the whole journal).
fn parse_journal(text: &str) -> Result<(Vec<Record>, usize, bool), ManifestError> {
    let mut records = Vec::new();
    let mut valid_len = 0usize;
    let mut pos = 0usize;
    let mut chunk_start = 0usize;
    for line in text.split_inclusive('\n') {
        pos += line.len();
        if line.starts_with(manifest::CHECKSUM_PREFIX) && line.ends_with('\n') {
            let chunk = &text[chunk_start..pos];
            match decode_record(chunk) {
                Ok(record) => {
                    records.push(record);
                    chunk_start = pos;
                    valid_len = pos;
                }
                Err(error) => {
                    if pos == text.len() {
                        // The final span: a torn (or otherwise damaged)
                        // last record is dropped, never an error.
                        return Ok((records, valid_len, true));
                    }
                    return Err(error.with_context("queue journal"));
                }
            }
        }
    }
    let torn = chunk_start < text.len();
    Ok((records, valid_len, torn))
}

fn decode_record(chunk: &str) -> Result<Record, ManifestError> {
    let body = manifest::unseal(chunk)?;
    let doc = parse(body).map_err(ManifestError::Malformed)?;
    let kind = doc
        .get("record")
        .and_then(Value::as_str)
        .and_then(Kind::from_label)
        .ok_or_else(|| ManifestError::Malformed("record kind missing or unknown".into()))?;
    let job = doc
        .get("job")
        .and_then(Value::as_str)
        .ok_or_else(|| ManifestError::Malformed("record missing job id".into()))?;
    let gen = doc
        .get("gen")
        .and_then(Value::as_int)
        .and_then(|g| u64::try_from(g).ok())
        .ok_or_else(|| ManifestError::Malformed("record missing generation".into()))?;
    Ok(Record {
        gen,
        kind,
        job: job.to_string(),
        campaign: doc
            .get("campaign")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string(),
        priority: doc
            .get("priority")
            .and_then(Value::as_int)
            .and_then(|p| i32::try_from(p).ok())
            .unwrap_or(0),
        failures: doc
            .get("failures")
            .and_then(Value::as_int)
            .and_then(|f| u32::try_from(f).ok())
            .unwrap_or(0),
        error: doc.get("error").and_then(Value::as_str).map(str::to_string),
    })
}

/// Folds one record into the replayed state table. Transitions are
/// monotone toward terminal states, so replaying a stale journal suffix
/// over a newer snapshot (possible when a crash lands between snapshot
/// install and journal truncation) is harmless even before the
/// generation filter.
fn apply(jobs: &mut BTreeMap<String, Entry>, record: Record) {
    match record.kind {
        Kind::Enqueued => {
            let entry = jobs
                .entry(record.job)
                .or_insert_with(|| Entry::new(record.campaign.clone(), record.priority));
            entry.campaign = record.campaign;
            entry.priority = record.priority;
            if entry.state.is_terminal() {
                // An enqueue after a terminal state is always a
                // deliberate re-run (the live path only appends it when
                // the durable record is gone): fresh budget.
                entry.failures = 0;
                entry.error = None;
            }
            entry.state = State::Pending;
        }
        Kind::Leased => {
            if let Some(entry) = jobs.get_mut(&record.job) {
                match entry.state {
                    State::Pending => entry.state = State::Leased,
                    // A second lease without an intervening terminal or
                    // pending transition: the first lease was lost.
                    State::Leased => entry.charge(LEASE_LOST),
                    _ => {}
                }
            }
        }
        Kind::Preempted => {
            if let Some(entry) = jobs.get_mut(&record.job) {
                if entry.state == State::Leased {
                    entry.state = State::Pending;
                }
            }
        }
        Kind::Committed => {
            let entry = jobs
                .entry(record.job)
                .or_insert_with(|| Entry::new(record.campaign.clone(), record.priority));
            entry.state = State::Committed;
            entry.payload = None;
        }
        Kind::Failed => {
            let entry = jobs
                .entry(record.job)
                .or_insert_with(|| Entry::new(record.campaign.clone(), record.priority));
            if entry.state != State::Committed {
                entry.state = State::Failed;
                entry.error = record.error;
                entry.payload = None;
            }
        }
        Kind::Quarantined => {
            let entry = jobs
                .entry(record.job)
                .or_insert_with(|| Entry::new(record.campaign.clone(), record.priority));
            if entry.state != State::Committed {
                entry.state = State::Quarantined;
                entry.failures = record.failures;
                entry.error = record.error;
                entry.payload = None;
            }
        }
    }
}

fn snapshot_body(gen: u64, jobs: &BTreeMap<String, Entry>) -> String {
    Value::Obj(vec![
        ("version".into(), Value::Int(QUEUE_VERSION)),
        ("gen".into(), Value::Int(gen as i64)),
        (
            "jobs".into(),
            Value::Arr(
                jobs.iter()
                    .map(|(id, entry)| {
                        Value::Obj(vec![
                            ("job".into(), Value::Str(id.clone())),
                            ("campaign".into(), Value::Str(entry.campaign.clone())),
                            ("priority".into(), Value::Int(i64::from(entry.priority))),
                            ("state".into(), Value::Str(entry.state.label().into())),
                            ("failures".into(), Value::Int(i64::from(entry.failures))),
                            (
                                "error".into(),
                                entry.error.clone().map_or(Value::Null, Value::Str),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_json()
}

fn parse_snapshot(body: &str) -> Result<(u64, BTreeMap<String, Entry>), ManifestError> {
    let malformed = |m: &str| ManifestError::Malformed(format!("queue snapshot: {m}"));
    let doc = parse(body).map_err(|e| malformed(&e))?;
    let version = doc
        .get("version")
        .and_then(Value::as_int)
        .ok_or_else(|| malformed("missing version"))?;
    if version != QUEUE_VERSION {
        return Err(malformed(&format!("unsupported version {version}")));
    }
    let gen = doc
        .get("gen")
        .and_then(Value::as_int)
        .and_then(|g| u64::try_from(g).ok())
        .ok_or_else(|| malformed("missing generation"))?;
    let mut jobs = BTreeMap::new();
    for item in doc
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or_else(|| malformed("missing jobs array"))?
    {
        let id = item
            .get("job")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed("job entry missing id"))?;
        let state = item
            .get("state")
            .and_then(Value::as_str)
            .and_then(State::from_label)
            .ok_or_else(|| malformed("job entry missing state"))?;
        let mut entry = Entry::new(
            item.get("campaign")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            item.get("priority")
                .and_then(Value::as_int)
                .and_then(|p| i32::try_from(p).ok())
                .unwrap_or(0),
        );
        entry.state = state;
        entry.failures = item
            .get("failures")
            .and_then(Value::as_int)
            .and_then(|f| u32::try_from(f).ok())
            .unwrap_or(0);
        entry.error = item
            .get("error")
            .and_then(Value::as_str)
            .map(str::to_string);
        if jobs.insert(id.to_string(), entry).is_some() {
            return Err(malformed(&format!("duplicate job `{id}`")));
        }
    }
    Ok((gen, jobs))
}

fn poison_of(jobs: &BTreeMap<String, Entry>) -> Vec<PoisonJob> {
    jobs.iter()
        .filter(|(_, e)| e.state == State::Quarantined)
        .map(|(id, e)| PoisonJob {
            id: id.clone(),
            campaign: e.campaign.clone(),
            failures: e.failures,
            error: e.error.clone().unwrap_or_else(|| LEASE_LOST.into()),
        })
        .collect()
}

/// A human-readable cause for a `Failed` journal record, from the last
/// recorded attempt.
fn last_attempt_error(record: &JobRecord) -> String {
    match record.attempts.last().map(|a| &a.outcome) {
        Some(AttemptOutcome::Fault(m)) => m.clone(),
        Some(AttemptOutcome::Panic(m)) => format!("panic: {m}"),
        Some(AttemptOutcome::DeadlineExceeded) => SimError::DeadlineExceeded.to_string(),
        Some(AttemptOutcome::Cancelled) => SimError::Cancelled.to_string(),
        Some(AttemptOutcome::Success) | None => "failed".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(campaign: &str, state: State) -> Entry {
        let mut e = Entry::new(campaign.into(), 0);
        e.state = state;
        e
    }

    #[test]
    fn journal_records_round_trip() {
        let text = format!(
            "{}{}{}",
            sealed_record(0, enqueued_record_body("a/x", "a", 3)),
            sealed_record(0, leased_record_body("a/x")),
            sealed_record(1, committed_record_body("a/x")),
        );
        let (records, valid_len, torn) = parse_journal(&text).unwrap();
        assert_eq!(records.len(), 3);
        assert!(!torn);
        assert_eq!(valid_len, text.len());
        assert_eq!(records[0].kind, Kind::Enqueued);
        assert_eq!(records[0].campaign, "a");
        assert_eq!(records[0].priority, 3);
        assert_eq!(records[2].gen, 1);
    }

    #[test]
    fn torn_tail_at_every_byte_offset_is_dropped_not_an_error() {
        let full = format!(
            "{}{}",
            sealed_record(0, enqueued_record_body("a/x", "a", 0)),
            sealed_record(0, leased_record_body("a/x")),
        );
        let first_len = sealed_record(0, enqueued_record_body("a/x", "a", 0)).len();
        for cut in 0..full.len() {
            let (records, valid_len, torn) =
                parse_journal(&full[..cut]).expect("a torn tail must never be an error");
            if cut < first_len {
                assert_eq!(records.len(), 0, "cut at {cut}");
                assert_eq!(valid_len, 0);
                assert_eq!(torn, cut > 0, "cut at {cut}");
            } else {
                assert_eq!(records.len(), 1, "cut at {cut}");
                assert_eq!(valid_len, first_len);
                assert_eq!(torn, cut > first_len, "cut at {cut}");
            }
        }
    }

    #[test]
    fn mid_journal_damage_is_corruption() {
        let full = format!(
            "{}{}",
            sealed_record(0, enqueued_record_body("a/x", "a", 0)),
            sealed_record(0, leased_record_body("a/x")),
        );
        // Flip a byte inside the *first* record's body.
        let damaged = full.replacen("\"a/x\"", "\"a/y\"", 1);
        assert_ne!(damaged, full);
        let err = parse_journal(&damaged).expect_err("mid-journal damage must surface");
        assert!(matches!(err, ManifestError::ChecksumMismatch(_)), "{err:?}");
    }

    #[test]
    fn replay_counts_repeated_lease_losses() {
        let mut jobs = BTreeMap::new();
        apply(&mut jobs, rec(Kind::Enqueued, "j"));
        apply(&mut jobs, rec(Kind::Leased, "j"));
        apply(&mut jobs, rec(Kind::Leased, "j"));
        apply(&mut jobs, rec(Kind::Leased, "j"));
        let e = &jobs["j"];
        assert_eq!(e.state, State::Leased);
        assert_eq!(e.failures, 2, "two leases were lost before the third");
    }

    #[test]
    fn replay_is_monotone_toward_terminal_states() {
        let mut jobs = BTreeMap::new();
        apply(&mut jobs, rec(Kind::Enqueued, "j"));
        apply(&mut jobs, rec(Kind::Leased, "j"));
        apply(&mut jobs, rec(Kind::Committed, "j"));
        // Stale records after the terminal state (post-compaction crash
        // replay) change nothing.
        apply(&mut jobs, rec(Kind::Leased, "j"));
        apply(&mut jobs, rec(Kind::Failed, "j"));
        assert_eq!(jobs["j"].state, State::Committed);
    }

    #[test]
    fn preemption_replay_restores_pending_without_a_failure_charge() {
        let mut jobs = BTreeMap::new();
        apply(&mut jobs, rec(Kind::Enqueued, "j"));
        apply(&mut jobs, rec(Kind::Leased, "j"));
        apply(&mut jobs, rec(Kind::Preempted, "j"));
        assert_eq!(jobs["j"].state, State::Pending);
        assert_eq!(jobs["j"].failures, 0);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut jobs = BTreeMap::new();
        jobs.insert("a/x".to_string(), entry("a", State::Committed));
        let mut poisoned = entry("b", State::Quarantined);
        poisoned.failures = 3;
        poisoned.error = Some("panic: boom".into());
        jobs.insert("b/y".to_string(), poisoned);
        let body = snapshot_body(7, &jobs);
        let (gen, back) = parse_snapshot(&body).unwrap();
        assert_eq!(gen, 7);
        assert_eq!(back.len(), 2);
        assert_eq!(back["a/x"].state, State::Committed);
        assert_eq!(back["b/y"].failures, 3);
        assert_eq!(back["b/y"].error.as_deref(), Some("panic: boom"));
    }

    fn rec(kind: Kind, job: &str) -> Record {
        Record {
            gen: 0,
            kind,
            job: job.to_string(),
            campaign: "c".to_string(),
            priority: 0,
            failures: 3,
            error: Some("x".into()),
        }
    }
}
