//! FNV-1a: the one stable hash every driver subsystem shares.
//!
//! Shard assignment (`fnv1a(job_id) % shards`), manifest/journal checksum
//! trailers, cache content digests, and retry jitter all need the same
//! thing: a dependency-free hash that is stable across platforms, Rust
//! versions, and releases, because its outputs are persisted (shard file
//! names, `#checksum` trailers, cache keys) or recorded (jittered backoff
//! in manifests). This module is the single implementation; the known-
//! answer test below pins the function to the published FNV-1a vectors so
//! an accidental change breaks loudly instead of silently invalidating
//! every on-disk artifact.
//!
//! This is a tripwire, not cryptography: it catches truncation, bit flips,
//! and schema drift, and makes no adversarial claims.

/// FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a over `bytes`.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    Fnv1a::new().update(bytes).finish()
}

/// Streaming FNV-1a hasher for callers that digest several fields without
/// concatenating them first (e.g. retry jitter hashes a job id followed by
/// the attempt number). Feeding the same bytes in any split produces the
/// same hash as [`fnv1a`] over their concatenation.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Fnv1a {
        Fnv1a(OFFSET_BASIS)
    }

    /// Folds `bytes` into the hash; returns `self` for chaining.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Fnv1a {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // Published FNV-1a 64-bit test vectors (Fowler/Noll/Vo reference
        // implementation). If any of these change, every persisted
        // artifact — shard names, checksum trailers, cache keys, recorded
        // backoffs — silently invalidates; this test makes it loud.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let whole = fnv1a(b"job-7:3");
        let split = Fnv1a::new().update(b"job-7").update(b":3").finish();
        assert_eq!(whole, split);
    }
}
