//! Deterministic campaign reports.
//!
//! The report contains no wall-clock values and is sorted by job id, so
//! the same campaign renders byte-identically whatever the worker count,
//! scheduling, or resume history.

use crate::job::{AttemptOutcome, JobRecord, JobStatus};
use crate::manifest::Quarantine;
use crate::queue::PoisonJob;
use ffsim_core::StallClass;
use ffsim_obs::hist::Log2Hist;
use ffsim_obs::{Phase, PhaseProfiler};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the manifest-quarantine banner: one line per damaged manifest
/// or shard. Empty (so clean runs stay byte-identical to their golden
/// copies) when nothing was quarantined.
#[must_use]
pub fn render_quarantines(quarantines: &[Quarantine]) -> String {
    if quarantines.is_empty() {
        return String::new();
    }
    let mut out = String::from("\nmanifest recovery\n\n");
    for quarantine in quarantines {
        let _ = writeln!(out, "  {quarantine}");
    }
    out
}

/// Renders the cache appendix: one line per job served from the
/// content-addressed result cache. Empty when no job was, so uncached
/// campaigns render byte-identically to their pre-cache goldens.
#[must_use]
pub fn render_cache(records: &BTreeMap<String, JobRecord>) -> String {
    let cached: Vec<&JobRecord> = records.values().filter(|r| r.cached).collect();
    if cached.is_empty() {
        return String::new();
    }
    let mut out = String::from("\nresult cache\n\n");
    for record in cached {
        let _ = writeln!(out, "  {}: served from cache", record.id);
    }
    out
}

/// Renders the poison-job appendix: one line per job the durable queue
/// quarantined after repeated identical failures, id-sorted. Empty when
/// nothing was quarantined, so healthy campaigns keep their byte layout.
///
/// Unlike the timing appendices this section IS part of the
/// deterministic report artifact: which jobs poisoned, how often, and
/// with what error is a property of the enqueue sequence, not of
/// scheduling.
#[must_use]
pub fn render_poison(poison: &[PoisonJob]) -> String {
    if poison.is_empty() {
        return String::new();
    }
    let mut out = String::from("\npoison jobs (quarantined by the queue)\n\n");
    for job in poison {
        let _ = writeln!(
            out,
            "  {} [{}]: {} identical failures, last: {}",
            job.id, job.campaign, job.failures, job.error
        );
    }
    out
}

/// Renders the per-campaign queue-wait appendix: one row per campaign
/// with the distribution of enqueue-to-lease waits in milliseconds,
/// followed by a distinct admission-quota section listing every campaign
/// whose submits were rejected by a per-campaign quota (so backpressure
/// from quotas is never conflated with global saturation). Returns the
/// empty string when no job was leased and nothing was rejected.
///
/// Wall-clock waits vary run to run, so like [`render_timing`] this
/// table is for stderr and interactive use only — never for the
/// deterministic report artifact.
#[must_use]
pub fn render_queue_waits(
    waits: &BTreeMap<String, Log2Hist>,
    quota_rejections: &BTreeMap<String, u64>,
) -> String {
    let pct = |p: Option<u64>| -> String { p.map_or_else(|| "-".into(), |v| v.to_string()) };
    let rows: Vec<Vec<String>> = waits
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|(campaign, h)| {
            vec![
                campaign.clone(),
                h.count().to_string(),
                h.min().map_or_else(|| "-".into(), |v| v.to_string()),
                format!("{:.1}", h.mean()),
                pct(h.p50()),
                pct(h.p90()),
                pct(h.p99()),
                h.max().map_or_else(|| "-".into(), |v| v.to_string()),
            ]
        })
        .collect();
    let rejected: Vec<(&String, &u64)> = quota_rejections.iter().filter(|(_, &n)| n > 0).collect();
    if rows.is_empty() && rejected.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    if !rows.is_empty() {
        out.push_str("queue waits per campaign (host wall clock, ms)\n\n");
        out.push_str(&table(
            &[
                "campaign", "leases", "min", "mean", "p50", "p90", "p99", "max",
            ],
            &rows,
        ));
    }
    if !rejected.is_empty() {
        out.push_str("\nadmission-quota rejections (per-campaign, not global saturation)\n\n");
        for (campaign, n) in rejected {
            let _ = writeln!(out, "  {campaign}: {n} submit(s) rejected by quota");
        }
    }
    out
}

/// Renders the host-phase profile appendix: one row per phase with
/// attributed time, sorted hottest-first, plus the telescoping summary
/// (wall time, attributed share). Returns the empty string when nothing
/// was attributed (profiling off, or an inert profiler).
///
/// Host time varies run to run, so like [`render_timing`] this appendix
/// is for stderr and interactive use only — never for the deterministic
/// report artifact.
#[must_use]
pub fn render_profile(prof: &PhaseProfiler) -> String {
    let mut phases: Vec<(String, &ffsim_obs::PhaseAgg)> = Phase::ALL
        .iter()
        .map(|&p| (prof.phase_label(p), prof.phase_agg(p)))
        .filter(|(_, agg)| agg.count > 0)
        .collect();
    if phases.is_empty() {
        return String::new();
    }
    phases.sort_by(|(la, a), (lb, b)| b.total_ns.cmp(&a.total_ns).then_with(|| la.cmp(lb)));
    let attributed = prof.attributed_ns().max(1);
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|(label, agg)| {
            vec![
                label.clone(),
                agg.count.to_string(),
                format!("{:.2}", agg.total_ns as f64 / 1e6),
                format!("{:.1}", agg.total_ns as f64 * 100.0 / attributed as f64),
                agg.hist.p50().map_or_else(|| "-".into(), |v| v.to_string()),
                agg.hist.p99().map_or_else(|| "-".into(), |v| v.to_string()),
            ]
        })
        .collect();
    let mut out = String::from("host phase profile\n\n");
    out.push_str(&table(
        &["phase", "scopes", "total_ms", "share%", "p50_ns", "p99_ns"],
        &rows,
    ));
    if prof.wall_ns() > 0 {
        let _ = writeln!(
            out,
            "\nwall {:.2} ms, attributed {:.2} ms ({}‰ telescoped)",
            prof.wall_ns() as f64 / 1e6,
            prof.attributed_ns() as f64 / 1e6,
            prof.coverage_permille()
        );
    }
    out
}

/// Renders the campaign report: a summary table (one row per job, sorted
/// by id) followed by the attempt history of every job that needed more
/// than one attempt.
#[must_use]
pub fn render(records: &BTreeMap<String, JobRecord>) -> String {
    let rows: Vec<Vec<String>> = records
        .values()
        .map(|r| {
            let (instructions, cycles, ipc, digest) = match &r.summary {
                Some(s) => (
                    s.instructions.to_string(),
                    s.cycles.to_string(),
                    format!("{:.3}", s.ipc()),
                    format!("{:#018x}", s.state_digest),
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            vec![
                r.id.clone(),
                r.requested_mode.label().to_string(),
                r.final_mode.label().to_string(),
                r.status.label().to_string(),
                r.attempts.len().to_string(),
                instructions,
                cycles,
                ipc,
                digest,
            ]
        })
        .collect();

    let mut out = String::from("campaign report\n\n");
    out.push_str(&table(
        &[
            "job",
            "requested",
            "final",
            "status",
            "attempts",
            "instructions",
            "cycles",
            "ipc",
            "digest",
        ],
        &rows,
    ));

    let (completed, degraded, failed) =
        records
            .values()
            .fold((0, 0, 0), |(c, d, f), r| match r.status {
                JobStatus::Completed => (c + 1, d, f),
                JobStatus::Degraded => (c, d + 1, f),
                JobStatus::Failed => (c, d, f + 1),
            });
    let _ = writeln!(
        out,
        "\n{} jobs: {completed} completed, {degraded} degraded, {failed} failed",
        records.len()
    );

    let eventful: Vec<&JobRecord> = records.values().filter(|r| r.attempts.len() > 1).collect();
    if !eventful.is_empty() {
        out.push_str("\nattempt history\n");
        for record in eventful {
            let _ = writeln!(out, "  {}:", record.id);
            for a in &record.attempts {
                let outcome = match &a.outcome {
                    AttemptOutcome::Success => "success".to_string(),
                    AttemptOutcome::Fault(msg) => format!("fault: {msg}"),
                    AttemptOutcome::DeadlineExceeded => "deadline exceeded".to_string(),
                    AttemptOutcome::Cancelled => "cancelled".to_string(),
                    AttemptOutcome::Panic(msg) => format!("panic: {msg}"),
                };
                let _ = writeln!(
                    out,
                    "    #{} [{}] {outcome} (backoff {} ms)",
                    a.attempt,
                    a.mode.label(),
                    a.backoff_ms
                );
            }
        }
    }
    out
}

/// Renders the host-side timing appendix: one row per job that carries a
/// [`JobTiming`](crate::JobTiming) record (campaigns run with telemetry
/// enabled). Returns the empty string when no record has timing.
///
/// Wall-clock values vary run to run, so this table is for stderr and
/// interactive use — it must never be written into the deterministic
/// report artifact that [`render`] produces.
#[must_use]
pub fn render_timing(records: &BTreeMap<String, JobRecord>) -> String {
    let rows: Vec<Vec<String>> = records
        .values()
        .filter_map(|r| {
            r.timing.map(|t| {
                vec![
                    r.id.clone(),
                    t.queue_wait_ms.to_string(),
                    t.run_ms.to_string(),
                    t.sim_wall_ms.to_string(),
                ]
            })
        })
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from("job timing (host wall clock)\n\n");
    out.push_str(&table(
        &["job", "queue_wait_ms", "run_ms", "sim_wall_ms"],
        &rows,
    ));
    out
}

/// Renders the per-job CPI-stack appendix: one row per job that carries a
/// [`CpiStack`](ffsim_core::CpiStack) (campaigns run with telemetry
/// enabled). Memory-bound classes collapse into one `mem_bound` column and
/// the three window-full classes into `window`, so the table stays
/// readable; the full breakdown lives in the manifest's `cpi` key.
/// Returns the empty string when no record has a stack.
///
/// Cycle attribution is deterministic, but the appendix is opt-in like
/// [`render_timing`], so the report artifact [`render`] produces keeps its
/// pre-CPI byte layout.
#[must_use]
pub fn render_cpi(records: &BTreeMap<String, JobRecord>) -> String {
    let rows: Vec<Vec<String>> = records
        .values()
        .filter_map(|r| {
            r.cpi.map(|cpi| {
                let mem: u64 = [
                    StallClass::L1Bound,
                    StallClass::L2Bound,
                    StallClass::LlcBound,
                    StallClass::DramBound,
                ]
                .iter()
                .map(|&c| cpi.get(c))
                .sum();
                let window: u64 = [StallClass::RobFull, StallClass::IqFull, StallClass::LsqFull]
                    .iter()
                    .map(|&c| cpi.get(c))
                    .sum();
                vec![
                    r.id.clone(),
                    cpi.total().to_string(),
                    cpi.get(StallClass::Base).to_string(),
                    cpi.get(StallClass::FrontendMispredict).to_string(),
                    cpi.get(StallClass::WrongPathFetch).to_string(),
                    mem.to_string(),
                    window.to_string(),
                ]
            })
        })
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from("job cpi stacks (cycles per stall class)\n\n");
    out.push_str(&table(
        &[
            "job",
            "total",
            "base",
            "mispredict",
            "wp_fetch",
            "mem_bound",
            "window",
        ],
        &rows,
    ));
    out
}

/// A right-aligned text table (same layout as the bench crate's tables;
/// duplicated here because the driver sits below the bench crate in the
/// dependency graph).
fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            let _ = write!(line, "{cell:>w$}", w = widths[c]);
        }
        line
    };
    let mut out = String::new();
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AttemptRecord, JobSummary};
    use ffsim_core::WrongPathMode;

    fn record(id: &str, attempts: usize) -> JobRecord {
        JobRecord {
            id: id.into(),
            requested_mode: WrongPathMode::WrongPathEmulation,
            final_mode: WrongPathMode::WrongPathEmulation,
            status: JobStatus::Completed,
            attempts: (1..=attempts)
                .map(|i| AttemptRecord {
                    attempt: i as u32,
                    mode: WrongPathMode::WrongPathEmulation,
                    outcome: if i == attempts {
                        AttemptOutcome::Success
                    } else {
                        AttemptOutcome::Panic("boom".into())
                    },
                    backoff_ms: 17,
                })
                .collect(),
            summary: Some(JobSummary {
                instructions: 1000,
                cycles: 2000,
                wrong_path_instructions: 50,
                state_digest: 0xabc,
            }),
            timing: None,
            cpi: None,
            cached: false,
            sim: None,
        }
    }

    #[test]
    fn report_is_sorted_and_deterministic() {
        let mut records = BTreeMap::new();
        records.insert("zz".to_string(), record("zz", 1));
        records.insert("aa".to_string(), record("aa", 2));
        let text = render(&records);
        assert_eq!(text, render(&records));
        assert!(text.find("aa").unwrap() < text.find("zz").unwrap());
        assert!(text.contains("2 jobs: 2 completed, 0 degraded, 0 failed"));
        // Only the multi-attempt job appears in the history section.
        assert!(text.contains("attempt history"));
        assert!(text.contains("panic: boom"));
    }

    #[test]
    fn timing_appendix_is_empty_without_telemetry() {
        let mut records = BTreeMap::new();
        records.insert("a".to_string(), record("a", 1));
        assert_eq!(render_timing(&records), "");
    }

    #[test]
    fn timing_appendix_lists_timed_jobs() {
        let mut rec = record("a", 1);
        rec.timing = Some(crate::job::JobTiming {
            queue_wait_ms: 3,
            run_ms: 120,
            sim_wall_ms: 100,
        });
        let mut records = BTreeMap::new();
        records.insert("a".to_string(), rec);
        records.insert("b".to_string(), record("b", 1)); // untimed: skipped
        let text = render_timing(&records);
        assert!(text.contains("job timing"));
        assert!(text.contains("queue_wait_ms"));
        assert!(text.contains("120"));
        assert!(
            !text.lines().any(|l| l.trim_start().starts_with('b')),
            "untimed jobs stay out of the table"
        );
    }

    #[test]
    fn cpi_appendix_is_empty_without_telemetry() {
        let mut records = BTreeMap::new();
        records.insert("a".to_string(), record("a", 1));
        assert_eq!(render_cpi(&records), "");
    }

    #[test]
    fn cpi_appendix_lists_jobs_with_stacks() {
        use ffsim_core::CpiStack;
        let mut stack = CpiStack::new();
        stack.add(StallClass::Base, false, 900);
        stack.add(StallClass::WrongPathFetch, true, 40);
        stack.add(StallClass::L2Bound, false, 25);
        stack.add(StallClass::DramBound, false, 35);
        stack.add(StallClass::RobFull, false, 10);
        let mut rec = record("a", 1);
        rec.cpi = Some(stack);
        let mut records = BTreeMap::new();
        records.insert("a".to_string(), rec);
        records.insert("b".to_string(), record("b", 1)); // no stack: skipped
        let text = render_cpi(&records);
        assert!(text.contains("job cpi stacks"));
        assert!(text.contains("1010"), "total column");
        assert!(text.contains("900"), "base column");
        assert!(
            text.contains("60"),
            "memory classes collapse into mem_bound"
        );
        assert!(
            !text.lines().any(|l| l.trim_start().starts_with('b')),
            "jobs without a stack stay out of the table"
        );
    }

    #[test]
    fn poison_appendix_is_empty_when_nothing_poisoned() {
        assert_eq!(render_poison(&[]), "");
    }

    #[test]
    fn poison_appendix_lists_quarantined_jobs() {
        let poison = vec![PoisonJob {
            id: "b/crash".into(),
            campaign: "b".into(),
            failures: 3,
            error: "panic: boom".into(),
        }];
        let text = render_poison(&poison);
        assert!(text.contains("poison jobs"));
        assert!(text.contains("b/crash [b]: 3 identical failures, last: panic: boom"));
        assert_eq!(text, render_poison(&poison), "deterministic");
    }

    #[test]
    fn queue_wait_appendix_is_empty_without_leases() {
        assert_eq!(render_queue_waits(&BTreeMap::new(), &BTreeMap::new()), "");
        // Zero-count rejections do not resurrect the appendix either.
        let silent = BTreeMap::from([("alpha".to_string(), 0u64)]);
        assert_eq!(render_queue_waits(&BTreeMap::new(), &silent), "");
    }

    #[test]
    fn queue_wait_appendix_lists_campaigns() {
        let mut hist = Log2Hist::new();
        hist.record(2);
        hist.record(10);
        let mut waits = BTreeMap::new();
        waits.insert("alpha".to_string(), hist);
        let text = render_queue_waits(&waits, &BTreeMap::new());
        assert!(text.contains("queue waits per campaign"));
        assert!(text.contains("alpha"));
        assert!(text.contains('2'), "count and min columns");
        assert!(text.contains("p50") && text.contains("p90") && text.contains("p99"));
        // The percentile columns reuse the Log2Hist helpers verbatim.
        assert!(text.contains(&hist.p50().unwrap().to_string()));
        assert!(text.contains(&hist.p99().unwrap().to_string()));
        assert!(!text.contains("admission-quota"), "no rejections recorded");
    }

    #[test]
    fn queue_wait_appendix_surfaces_quota_rejections_distinctly() {
        let rejections = BTreeMap::from([("alpha".to_string(), 3u64), ("beta".to_string(), 0u64)]);
        let text = render_queue_waits(&BTreeMap::new(), &rejections);
        assert!(text.contains("admission-quota rejections"));
        assert!(text.contains("alpha: 3 submit(s) rejected by quota"));
        assert!(!text.contains("beta"), "zero-count campaigns stay silent");
        assert!(
            !text.contains("queue waits per campaign"),
            "no wait table without leases"
        );
    }

    #[test]
    fn profile_appendix_is_empty_without_scopes() {
        assert_eq!(render_profile(&PhaseProfiler::disabled()), "");
        assert_eq!(render_profile(&PhaseProfiler::enabled()), "");
    }

    #[test]
    fn profile_appendix_sorts_hottest_phase_first() {
        let mut prof = PhaseProfiler::enabled();
        prof.record_scope_ns(Phase::CacheIo, 1_000_000);
        prof.record_scope_ns(Phase::QueueJournal, 5_000_000);
        prof.record_scope_ns(Phase::QueueJournal, 5_000_000);
        prof.add_wall_ns(11_000_000);
        let text = render_profile(&prof);
        assert!(text.contains("host phase profile"));
        assert!(
            text.find("queue_journal").unwrap() < text.find("cache_io").unwrap(),
            "hottest phase renders first"
        );
        assert!(text.contains("10.00"), "queue_journal total_ms");
        assert!(text.contains("1000‰"), "11ms wall, 11ms attributed");
    }

    #[test]
    fn failed_jobs_render_placeholders() {
        let mut rec = record("f", 1);
        rec.status = JobStatus::Failed;
        rec.summary = None;
        let mut records = BTreeMap::new();
        records.insert("f".to_string(), rec);
        let text = render(&records);
        assert!(text.contains("failed"));
        assert!(text.contains('-'));
    }
}
