//! The supervised campaign runner.
//!
//! A campaign executes a set of [`Job`]s across a worker pool. Every
//! attempt runs under full supervision:
//!
//! - **panic isolation** — attempts run inside `catch_unwind`, so a panic
//!   in the simulator (or a workload builder) fails one attempt, never the
//!   worker or sibling jobs;
//! - **wall-clock deadlines** — each attempt gets a fresh [`CancelToken`]
//!   registered with the [`Watchdog`]; a hung simulation is cancelled
//!   cooperatively ([`SimError::DeadlineExceeded`]), never thread-killed;
//! - **retry with backoff** — failed attempts retry up to the
//!   [`RetryPolicy`] bound with deterministic exponential backoff;
//! - **graceful degradation** — jobs whose attempts are exhausted under
//!   [`WrongPathEmulation`](ffsim_core::WrongPathMode::WrongPathEmulation)
//!   walk down the fidelity ladder (`wpemul → conv → instrec → nowp`),
//!   recording every rung, instead of failing the campaign.
//!
//! Completed jobs are persisted to a JSON manifest after each finish, so a
//! killed campaign resumes by re-running only the jobs without a record.

use crate::job::{
    ladder_next, AttemptOutcome, AttemptRecord, Job, JobRecord, JobStatus, JobSummary, JobTiming,
};
use crate::manifest;
use crate::retry::RetryPolicy;
use crate::telemetry::{Telemetry, TelemetryConfig};
use crate::watchdog::Watchdog;
use ffsim_core::{CancelToken, SimConfig, SimError, Simulator};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Campaign-wide supervision settings.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads (`0` = one per available CPU).
    pub workers: usize,
    /// Retry policy applied to every job that does not override it.
    pub retry: RetryPolicy,
    /// Per-attempt wall-clock deadline for jobs without their own
    /// (`None` = attempts are only bounded by cancellation).
    pub default_timeout: Option<Duration>,
    /// Manifest location (`None` = in-memory campaign, no resume).
    pub manifest_path: Option<PathBuf>,
    /// Live telemetry: stderr heartbeats and per-job timing records.
    /// Defaults to the `FFSIM_OBS` environment switch (off unless set).
    pub telemetry: TelemetryConfig,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            workers: 0,
            retry: RetryPolicy::default(),
            default_timeout: Some(Duration::from_secs(300)),
            manifest_path: None,
            telemetry: TelemetryConfig::from_env(),
        }
    }
}

/// What a finished (or cancelled) campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Records for every job with a terminal status — freshly executed
    /// ones plus any loaded from the manifest.
    pub records: BTreeMap<String, JobRecord>,
    /// Jobs skipped because the manifest already had their record.
    pub resumed: usize,
    /// Jobs executed to a terminal status by this invocation.
    pub executed: usize,
    /// Whether the campaign token fired; unfinished jobs stay absent from
    /// [`CampaignOutcome::records`] and re-run on resume.
    pub cancelled: bool,
    /// Set when a damaged manifest was quarantined at startup (the
    /// campaign then re-ran from an empty manifest). `None` on clean
    /// runs, so reports stay byte-identical when nothing went wrong.
    pub quarantine: Option<manifest::Quarantine>,
}

/// A supervised simulation campaign. See the [module docs](self).
#[derive(Debug)]
pub struct Campaign {
    cfg: CampaignConfig,
    cancel: CancelToken,
}

impl Campaign {
    /// Creates a campaign with the given supervision settings.
    #[must_use]
    pub fn new(cfg: CampaignConfig) -> Campaign {
        Campaign {
            cfg,
            cancel: CancelToken::new(),
        }
    }

    /// The campaign-wide cancellation token. Firing it stops the campaign
    /// promptly: workers take no new jobs and in-flight attempts are
    /// cancelled through their own tokens by the watchdog.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs `jobs` to completion (or cancellation).
    ///
    /// Jobs already present in the manifest are skipped and counted in
    /// [`CampaignOutcome::resumed`]. Job order in the output is by id,
    /// independent of worker count and scheduling.
    ///
    /// # Errors
    ///
    /// Duplicate job ids, a corrupt or unreadable manifest, or a manifest
    /// persist failure mid-campaign (the campaign stops at the first one —
    /// continuing would silently lose resume coverage).
    pub fn run(&self, jobs: Vec<Job>) -> Result<CampaignOutcome, String> {
        let mut seen = std::collections::HashSet::new();
        for job in &jobs {
            if !seen.insert(job.id.clone()) {
                return Err(format!("duplicate job id: {}", job.id));
            }
        }

        let (done, quarantine) = match &self.cfg.manifest_path {
            Some(path) => manifest::load_or_quarantine(path).map_err(|e| e.to_string())?,
            None => (BTreeMap::new(), None),
        };
        let resumed = jobs.iter().filter(|j| done.contains_key(&j.id)).count();
        let queue: VecDeque<Job> = jobs
            .into_iter()
            .filter(|j| !done.contains_key(&j.id))
            .collect();

        let watchdog = Watchdog::spawn(self.cancel.clone());
        let queue = Mutex::new(queue);
        let done = Mutex::new(done);
        let executed = Mutex::new(0usize);
        let persist_error: Mutex<Option<String>> = Mutex::new(None);

        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.cfg.workers
        };

        let telemetry = Telemetry::new(lock(&queue).len());
        let pool_start = Instant::now();
        let hb_stop = Mutex::new(false);
        let hb_cv = Condvar::new();

        std::thread::scope(|scope| {
            let heartbeat = self.cfg.telemetry.enabled.then(|| {
                scope.spawn(|| {
                    let mut stopped = lock(&hb_stop);
                    loop {
                        let (guard, _) = hb_cv
                            .wait_timeout(stopped, self.cfg.telemetry.heartbeat)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        stopped = guard;
                        if *stopped {
                            return;
                        }
                        eprintln!("{}", telemetry.heartbeat_line());
                    }
                })
            });

            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        loop {
                            if self.cancel.is_cancelled() {
                                return;
                            }
                            let Some(job) = lock(&queue).pop_front() else {
                                return;
                            };
                            let dequeued = Instant::now();
                            telemetry.job_started();
                            let record = self.run_job(&job, &watchdog, &telemetry);
                            let Some(mut record) = record else {
                                // Campaign cancelled mid-job: leave it without
                                // a record so a resumed campaign re-runs it.
                                telemetry.job_abandoned();
                                return;
                            };
                            // Timing and the CPI stack ride the record only
                            // under telemetry: manifests written without it
                            // stay byte-stable.
                            if self.cfg.telemetry.enabled {
                                record.timing = Some(JobTiming {
                                    queue_wait_ms: millis(dequeued - pool_start),
                                    run_ms: millis(dequeued.elapsed()),
                                    sim_wall_ms: record
                                        .sim
                                        .as_ref()
                                        .map_or(0, |s| millis(s.wall_time)),
                                });
                                record.cpi = record.sim.as_ref().map(|s| s.cpi);
                            }
                            telemetry.job_finished(&record);
                            // The save happens under the records lock: concurrent
                            // saves would race on the shared temp file, and an
                            // older snapshot must never overwrite a newer one.
                            let mut done = lock(&done);
                            done.insert(record.id.clone(), record);
                            *lock(&executed) += 1;
                            if let Some(path) = &self.cfg.manifest_path {
                                if let Err(e) = manifest::save(path, &done) {
                                    lock(&persist_error).get_or_insert(e.to_string());
                                    self.cancel.cancel();
                                    return;
                                }
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                let _ = handle.join();
            }
            if let Some(heartbeat) = heartbeat {
                *lock(&hb_stop) = true;
                hb_cv.notify_all();
                eprintln!("{}", telemetry.heartbeat_line());
                let _ = heartbeat.join();
            }
        });
        drop(watchdog);

        if let Some(e) = lock(&persist_error).take() {
            return Err(e);
        }
        Ok(CampaignOutcome {
            records: done
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            resumed,
            executed: executed
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            cancelled: self.cancel.is_cancelled(),
            quarantine,
        })
    }

    /// Runs one job through retries and the degradation ladder. Returns
    /// `None` only when the campaign was cancelled mid-job (the job is
    /// then deliberately unrecorded).
    fn run_job(&self, job: &Job, watchdog: &Watchdog, telemetry: &Telemetry) -> Option<JobRecord> {
        let retry = RetryPolicy {
            max_attempts: job
                .max_attempts
                .unwrap_or(self.cfg.retry.max_attempts)
                .max(1),
            ..self.cfg.retry
        };
        let timeout = job.timeout.or(self.cfg.default_timeout);
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let mut mode = job.mode;

        loop {
            for rung_attempt in 1..=retry.max_attempts {
                if self.cancel.is_cancelled() {
                    return None;
                }
                let token = CancelToken::new();
                let deadline = timeout.map(|t| Instant::now() + t);
                let guard = watchdog.guard(&token, deadline);
                let (outcome, result) = run_attempt(job, mode, &token);
                drop(guard);

                if matches!(outcome, AttemptOutcome::Cancelled) && self.cancel.is_cancelled() {
                    return None;
                }

                let attempt_no = attempts.len() as u32 + 1;
                if let Some(result) = result {
                    attempts.push(AttemptRecord {
                        attempt: attempt_no,
                        mode,
                        outcome: AttemptOutcome::Success,
                        backoff_ms: 0,
                    });
                    let status = if mode == job.mode {
                        JobStatus::Completed
                    } else {
                        JobStatus::Degraded
                    };
                    return Some(JobRecord {
                        id: job.id.clone(),
                        requested_mode: job.mode,
                        final_mode: mode,
                        status,
                        attempts,
                        summary: Some(JobSummary::of(&result)),
                        timing: None,
                        cpi: None,
                        sim: Some(result),
                    });
                }
                let retrying = rung_attempt < retry.max_attempts;
                if retrying {
                    telemetry.attempt_retried();
                }
                let backoff = if retrying {
                    retry.backoff(&job.id, rung_attempt)
                } else {
                    Duration::ZERO
                };
                attempts.push(AttemptRecord {
                    attempt: attempt_no,
                    mode,
                    outcome,
                    backoff_ms: backoff.as_millis() as u64,
                });
                if retrying && !backoff.is_zero() && !self.cancel.is_cancelled() {
                    std::thread::sleep(backoff);
                }
            }
            match ladder_next(mode).filter(|_| job.degrade) {
                Some(next) => {
                    telemetry.attempt_retried();
                    mode = next;
                }
                None => {
                    return Some(JobRecord {
                        id: job.id.clone(),
                        requested_mode: job.mode,
                        final_mode: mode,
                        status: JobStatus::Failed,
                        attempts,
                        summary: None,
                        timing: None,
                        cpi: None,
                        sim: None,
                    });
                }
            }
        }
    }
}

fn millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Attempt panics are contained by catch_unwind; any residual poison
    // must not wedge the campaign.
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_attempt(
    job: &Job,
    mode: ffsim_core::WrongPathMode,
    token: &CancelToken,
) -> (AttemptOutcome, Option<ffsim_core::SimResult>) {
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<_, SimError> {
        let (program, memory) = (job.workload)()?;
        let mut cfg = SimConfig::with_core(job.core.clone(), mode);
        cfg.max_instructions = job.max_instructions;
        if let Some(tweak) = &job.tweak {
            tweak(&mut cfg);
        }
        // Installed after the tweak: a tweak must not be able to detach
        // the attempt from supervision.
        cfg.cancel = Some(token.clone());
        Simulator::new(program, memory, cfg)?.run()
    }));
    match caught {
        Ok(Ok(result)) => (AttemptOutcome::Success, Some(result)),
        Ok(Err(SimError::Cancelled)) => (AttemptOutcome::Cancelled, None),
        Ok(Err(SimError::DeadlineExceeded)) => (AttemptOutcome::DeadlineExceeded, None),
        Ok(Err(e)) => (AttemptOutcome::Fault(e.to_string()), None),
        Err(payload) => (AttemptOutcome::Panic(panic_message(payload.as_ref())), None),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
