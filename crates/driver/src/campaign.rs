//! The supervised campaign runner.
//!
//! A campaign executes a set of [`Job`]s across a worker pool. Every
//! attempt runs under full supervision:
//!
//! - **panic isolation** — attempts run inside `catch_unwind`, so a panic
//!   in the simulator (or a workload builder) fails one attempt, never the
//!   worker or sibling jobs;
//! - **wall-clock deadlines** — each attempt gets a fresh [`CancelToken`]
//!   registered with the [`Watchdog`]; a hung simulation is cancelled
//!   cooperatively ([`SimError::DeadlineExceeded`]), never thread-killed;
//! - **retry with backoff** — failed attempts retry up to the
//!   [`RetryPolicy`] bound with deterministic exponential backoff;
//! - **graceful degradation** — jobs whose attempts are exhausted under
//!   [`WrongPathEmulation`](ffsim_core::WrongPathMode::WrongPathEmulation)
//!   walk down the fidelity ladder (`wpemul → conv → instrec → nowp`),
//!   recording every rung, instead of failing the campaign.
//!
//! Completed jobs are persisted after each finish — to a single JSON
//! manifest, or (with [`CampaignConfig::shards`]) to one crash-consistent
//! shard file per worker with its own lock, merged deterministically at
//! report time — so a killed campaign resumes by re-running only the jobs
//! without a record. With a [`CampaignConfig::cache_dir`], results are
//! additionally committed to a content-addressed cache keyed by
//! (workload digest, config digest): a later campaign that schedules the
//! same point serves it from the cache without simulating.

use crate::cache::{self, CacheKey, CacheStore, Lookup};
use crate::job::{
    ladder_next, AttemptOutcome, AttemptRecord, Job, JobRecord, JobStatus, JobSummary, JobTiming,
};
use crate::manifest::{ManifestIo, Quarantine, RealIo};
use crate::retry::RetryPolicy;
use crate::shard::{validate_worker_count, ManifestStore, ShardLayout};
use crate::telemetry::{Heartbeat, QueueGauges, Telemetry, TelemetryConfig};
use crate::watchdog::Watchdog;
use ffsim_core::{CancelToken, SimConfig, SimError, Simulator};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cloneable, campaign-wide [`ManifestIo`]: every shard save and cache
/// write goes through it, so tests inject faults ([`FaultyIo`]
/// (crate::FaultyIo), scripted failures) into a *running* campaign and
/// prove no committed result is ever lost. Defaults to the real
/// filesystem.
#[derive(Clone)]
pub struct SharedIo(Arc<Mutex<dyn ManifestIo + Send>>);

impl SharedIo {
    /// Wraps an [`ManifestIo`] implementation for campaign-wide use.
    #[must_use]
    pub fn new(io: impl ManifestIo + Send + 'static) -> SharedIo {
        SharedIo(Arc::new(Mutex::new(io)))
    }

    /// Runs `f` with exclusive access to the underlying io.
    pub(crate) fn with<R>(&self, f: impl FnOnce(&mut dyn ManifestIo) -> R) -> R {
        let mut guard = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut *guard)
    }
}

impl fmt::Debug for SharedIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SharedIo(..)")
    }
}

impl Default for SharedIo {
    fn default() -> SharedIo {
        SharedIo::new(RealIo)
    }
}

/// Campaign-wide supervision settings.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads (`0` = one per available CPU; at most
    /// [`MAX_WORKERS`](crate::shard::MAX_WORKERS)).
    pub workers: usize,
    /// Retry policy applied to every job that does not override it.
    pub retry: RetryPolicy,
    /// Per-attempt wall-clock deadline for jobs without their own
    /// (`None` = attempts are only bounded by cancellation).
    pub default_timeout: Option<Duration>,
    /// Manifest location (`None` = in-memory campaign, no resume).
    pub manifest_path: Option<PathBuf>,
    /// Manifest sharding: `None` keeps the legacy single file at
    /// [`manifest_path`](CampaignConfig::manifest_path); `Some(n)` splits
    /// it into `n` independently crash-consistent shard files (requires a
    /// manifest path; `1..=MAX_SHARDS`, validated at run start).
    pub shards: Option<usize>,
    /// Content-addressed result cache directory (`None` = no cache).
    pub cache_dir: Option<PathBuf>,
    /// The filesystem seam used for every shard save and cache write.
    /// Production campaigns keep the default real filesystem; tests
    /// inject faults.
    pub io: SharedIo,
    /// Live telemetry: stderr heartbeats and per-job timing records.
    /// Defaults to the `FFSIM_OBS` environment switch (off unless set).
    pub telemetry: TelemetryConfig,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            workers: 0,
            retry: RetryPolicy::default(),
            default_timeout: Some(Duration::from_secs(300)),
            manifest_path: None,
            shards: None,
            cache_dir: None,
            io: SharedIo::default(),
            telemetry: TelemetryConfig::from_env(),
        }
    }
}

impl CampaignConfig {
    /// Validates the worker and shard counts, and their interaction,
    /// before any job runs.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for a zero or absurd shard count, an
    /// absurd worker count, or sharding without a manifest path.
    pub fn validate(&self) -> Result<(), SimError> {
        validate_worker_count(self.workers)?;
        if let Some(shards) = self.shards {
            crate::shard::validate_shard_count(shards)?;
            if self.manifest_path.is_none() {
                return Err(SimError::InvalidConfig(
                    "manifest sharding requires a manifest path".into(),
                ));
            }
        }
        Ok(())
    }
}

/// What a finished (or cancelled) campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Records for every job with a terminal status — freshly executed
    /// ones plus any loaded from the manifest, merged deterministically
    /// across shards (id-sorted, independent of worker count and
    /// scheduling).
    pub records: BTreeMap<String, JobRecord>,
    /// Jobs skipped because the manifest already had their record.
    pub resumed: usize,
    /// Jobs executed to a terminal status by this invocation (cache hits
    /// included).
    pub executed: usize,
    /// Jobs served from the content-addressed result cache without
    /// simulating.
    pub cache_hits: usize,
    /// Jobs that probed the cache and missed (includes evicted-corrupt
    /// entries, which are recomputed).
    pub cache_misses: usize,
    /// Whether the campaign token fired; unfinished jobs stay absent from
    /// [`CampaignOutcome::records`] and re-run on resume.
    pub cancelled: bool,
    /// One notice per manifest (or shard) that was damaged and
    /// quarantined at startup; only the quarantined shard's jobs re-ran.
    /// Empty on clean runs, so reports stay byte-identical when nothing
    /// went wrong.
    pub quarantines: Vec<Quarantine>,
}

/// A supervised simulation campaign. See the [module docs](self).
#[derive(Debug)]
pub struct Campaign {
    cfg: CampaignConfig,
    cancel: CancelToken,
}

impl Campaign {
    /// Creates a campaign with the given supervision settings.
    #[must_use]
    pub fn new(cfg: CampaignConfig) -> Campaign {
        Campaign {
            cfg,
            cancel: CancelToken::new(),
        }
    }

    /// The campaign-wide cancellation token. Firing it stops the campaign
    /// promptly: workers take no new jobs and in-flight attempts are
    /// cancelled through their own tokens by the watchdog.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs `jobs` to completion (or cancellation).
    ///
    /// Jobs already present in the manifest are skipped and counted in
    /// [`CampaignOutcome::resumed`]. Job order in the output is by id,
    /// independent of worker count and scheduling.
    ///
    /// # Errors
    ///
    /// An invalid worker/shard configuration, duplicate job ids, an
    /// unreadable manifest, or a manifest persist failure mid-campaign
    /// (the campaign stops at the first one — continuing would silently
    /// lose resume coverage).
    pub fn run(&self, jobs: Vec<Job>) -> Result<CampaignOutcome, String> {
        self.cfg.validate().map_err(|e| e.to_string())?;
        let mut seen = std::collections::HashSet::new();
        for job in &jobs {
            if !seen.insert(job.id.clone()) {
                return Err(format!("duplicate job id: {}", job.id));
            }
        }

        let mut store = match (&self.cfg.manifest_path, self.cfg.shards) {
            (None, _) => ManifestStore::in_memory(),
            (Some(path), None) => ManifestStore::single(path.clone()),
            (Some(path), Some(shards)) => ManifestStore::sharded(
                ShardLayout::new(path.clone(), shards).map_err(|e| e.to_string())?,
            ),
        };
        let quarantines = store.load().map_err(|e| e.to_string())?;
        let cache = self.cfg.cache_dir.clone().map(CacheStore::new);

        let resumed = jobs.iter().filter(|j| store.contains(&j.id)).count();
        let queue: VecDeque<Job> = jobs
            .into_iter()
            .filter(|j| !store.contains(&j.id))
            .collect();

        let watchdog = Watchdog::spawn(self.cancel.clone());
        let queue = Mutex::new(queue);
        let store = &store;
        let executed = Mutex::new(0usize);
        let cache_hits = Mutex::new(0usize);
        let cache_misses = Mutex::new(0usize);
        let persist_error: Mutex<Option<String>> = Mutex::new(None);

        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.cfg.workers
        };

        // Under telemetry the heartbeat line also carries live gauges for
        // the in-memory work queue: pending depth and jobs currently held
        // by workers (the campaign analogue of the durable queue's lease
        // count). Without telemetry the gauges are never created, so the
        // hot path stays untouched.
        let gauges = self.cfg.telemetry.enabled.then(QueueGauges::new);
        let held = std::sync::atomic::AtomicUsize::new(0);
        let total = lock(&queue).len();
        let telemetry = Arc::new(match &gauges {
            Some(g) => Telemetry::with_queue(total, Arc::clone(g)),
            None => Telemetry::new(total),
        });
        if let Some(g) = &gauges {
            g.set(total, 0, None, None);
        }
        let pool_start = Instant::now();
        let heartbeat = self
            .cfg
            .telemetry
            .enabled
            .then(|| Heartbeat::spawn(Arc::clone(&telemetry), self.cfg.telemetry.heartbeat));

        let refresh_gauges = || {
            if let Some(g) = &gauges {
                g.set(
                    lock(&queue).len(),
                    held.load(std::sync::atomic::Ordering::Relaxed),
                    None,
                    None,
                );
            }
        };
        std::thread::scope(|scope| {
            let telemetry = &telemetry;
            let refresh_gauges = &refresh_gauges;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        loop {
                            if self.cancel.is_cancelled() {
                                return;
                            }
                            let Some(job) = lock(&queue).pop_front() else {
                                return;
                            };
                            held.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            refresh_gauges();
                            let dequeued = Instant::now();
                            telemetry.job_started();
                            let record = self.run_job(
                                &job,
                                &watchdog,
                                telemetry,
                                cache.as_ref(),
                                (&cache_hits, &cache_misses),
                            );
                            let Some(mut record) = record else {
                                // Campaign cancelled mid-job: leave it without
                                // a record so a resumed campaign re-runs it.
                                telemetry.job_abandoned();
                                held.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                                refresh_gauges();
                                return;
                            };
                            // Timing and the CPI stack ride the record only
                            // under telemetry: manifests written without it
                            // stay byte-stable.
                            if self.cfg.telemetry.enabled {
                                record.timing = Some(JobTiming {
                                    queue_wait_ms: millis(dequeued - pool_start),
                                    run_ms: millis(dequeued.elapsed()),
                                    sim_wall_ms: record
                                        .sim
                                        .as_ref()
                                        .map_or(0, |s| millis(s.wall_time)),
                                });
                                record.cpi = record.sim.as_ref().map(|s| s.cpi);
                            }
                            telemetry.job_finished(&record);
                            held.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                            refresh_gauges();
                            // The store serializes committers per shard and
                            // snapshots under that shard's lock, so an older
                            // shard generation never overwrites a newer one.
                            let committed = self.cfg.io.with(|io| store.commit(io, record));
                            *lock(&executed) += 1;
                            if let Err(e) = committed {
                                lock(&persist_error).get_or_insert(e.to_string());
                                self.cancel.cancel();
                                return;
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                let _ = handle.join();
            }
        });
        // Stopped after the workers join: the final heartbeat (flushed by
        // the thread itself, never lost to the condvar timeout race)
        // reports the settled counters.
        if let Some(heartbeat) = heartbeat {
            heartbeat.stop();
        }
        drop(watchdog);

        if let Some(e) = lock(&persist_error).take() {
            return Err(e);
        }
        Ok(CampaignOutcome {
            records: store.merged(),
            resumed,
            executed: into_count(executed),
            cache_hits: into_count(cache_hits),
            cache_misses: into_count(cache_misses),
            cancelled: self.cancel.is_cancelled(),
            quarantines,
        })
    }

    /// Runs one job through the result cache, retries, and the
    /// degradation ladder. Returns `None` only when the campaign was
    /// cancelled mid-job (the job is then deliberately unrecorded).
    fn run_job(
        &self,
        job: &Job,
        watchdog: &Watchdog,
        telemetry: &Telemetry,
        cache: Option<&CacheStore>,
        (hits, misses): (&Mutex<usize>, &Mutex<usize>),
    ) -> Option<JobRecord> {
        let key = match probe_cache(cache, job, &self.cfg.retry) {
            Probe::Hit(record) => {
                *lock(hits) += 1;
                return Some(cache::rekey(*record, &job.id));
            }
            Probe::Miss(key) => {
                if key.is_some() {
                    *lock(misses) += 1;
                }
                key
            }
        };
        let executor = Executor {
            retry: self.cfg.retry,
            default_timeout: self.cfg.default_timeout,
            stop: self.cancel.clone(),
            watchdog,
            telemetry,
        };
        let record = executor.execute_job(job, None)?;
        store_cache(&self.cfg.io, cache, key, &record);
        Some(record)
    }
}

/// The effective attempts-per-rung bound for `job` under `retry`.
pub(crate) fn effective_attempts(job: &Job, retry: &RetryPolicy) -> u32 {
    job.max_attempts.unwrap_or(retry.max_attempts).max(1)
}

/// The content address of `job`: builds the workload once (pristine state,
/// exactly as an attempt would) and digests it together with the fully
/// tweaked config and the job's supervision fingerprint. `None` when the
/// workload builder fails — the normal attempt path will then record the
/// same failure.
pub(crate) fn job_cache_key(job: &Job, retry: &RetryPolicy) -> Option<CacheKey> {
    let (program, memory) = (job.workload)().ok()?;
    let mut cfg = SimConfig::with_core(job.core.clone(), job.mode);
    cfg.max_instructions = job.max_instructions;
    if let Some(tweak) = &job.tweak {
        tweak(&mut cfg);
    }
    Some(CacheKey {
        workload: cache::workload_digest(&program, &memory),
        config: cache::config_digest(&cfg, effective_attempts(job, retry), job.degrade),
    })
}

/// What [`probe_cache`] found for a job.
pub(crate) enum Probe {
    /// A verified cache entry, ready to re-key onto the job id.
    Hit(Box<JobRecord>),
    /// No usable entry; the key to store the fresh result under, or
    /// `None` when there is no cache (or the workload builder failed, in
    /// which case the attempt path records that failure uncached).
    Miss(Option<CacheKey>),
}

/// Probes the result cache for `job`; evicted-corrupt entries count as
/// misses and are reported to stderr. Shared by the campaign worker loop
/// and the queue drain so both serve identical points from the cache.
pub(crate) fn probe_cache(cache: Option<&CacheStore>, job: &Job, retry: &RetryPolicy) -> Probe {
    match cache.map(|store| job_cache_key(job, retry).map(|k| (k, store.lookup(k)))) {
        Some(Some((_, Lookup::Hit(record)))) => Probe::Hit(record),
        Some(Some((key, Lookup::Miss))) => Probe::Miss(Some(key)),
        Some(Some((key, Lookup::Evicted(error)))) => {
            eprintln!("campaign: evicted corrupt cache entry: {error}");
            Probe::Miss(Some(key))
        }
        Some(None) | None => Probe::Miss(None),
    }
}

/// Commits a deterministic result to the cache *before* the shard commit:
/// once a record is durable in its shard, an identical campaign must find
/// it in the cache (a crash between the two writes re-runs the job and
/// re-caches it; the reverse order would leave committed-but-uncached jobs
/// that silently miss). A failed cache write loses an optimization, never
/// a result.
pub(crate) fn store_cache(
    io: &SharedIo,
    cache: Option<&CacheStore>,
    key: Option<CacheKey>,
    record: &JobRecord,
) {
    if let (Some(store), Some(key)) = (cache, key) {
        if CacheStore::cacheable(record) {
            if let Err(e) = io.with(|io| store.store_with(io, key, record)) {
                eprintln!("campaign: cache write failed: {e}");
            }
        }
    }
}

/// The per-job execution engine shared by [`Campaign`] workers and the
/// queue drain: retries with backoff, the degradation ladder, watchdog
/// deadlines, and panic isolation — everything between "a worker picked
/// this job" and "this job has a terminal record".
pub(crate) struct Executor<'a> {
    /// Retry policy for jobs that do not override `max_attempts`.
    pub retry: RetryPolicy,
    /// Per-attempt deadline for jobs without their own.
    pub default_timeout: Option<Duration>,
    /// The campaign/service-wide stop token: firing it abandons the job
    /// without a record.
    pub stop: CancelToken,
    /// The shared deadline watchdog.
    pub watchdog: &'a Watchdog,
    /// Progress counters.
    pub telemetry: &'a Telemetry,
}

impl Executor<'_> {
    /// Runs one job's attempts (no cache involvement). Returns `None`
    /// when the stop token fired (job abandoned, re-run on resume) or
    /// when `job_token` fired mid-attempt (queue preemption or lease
    /// takeback: the job is re-enqueued by the caller, and the
    /// interrupted attempt burns no retry budget).
    pub(crate) fn execute_job(
        &self,
        job: &Job,
        job_token: Option<&CancelToken>,
    ) -> Option<JobRecord> {
        let retry = RetryPolicy {
            max_attempts: effective_attempts(job, &self.retry),
            ..self.retry
        };
        let timeout = job.timeout.or(self.default_timeout);
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let mut mode = job.mode;
        let taken_back =
            || self.stop.is_cancelled() || job_token.is_some_and(CancelToken::is_cancelled);

        loop {
            for rung_attempt in 1..=retry.max_attempts {
                if taken_back() {
                    return None;
                }
                let token = CancelToken::new();
                let deadline = timeout.map(|t| Instant::now() + t);
                let guard = self.watchdog.guard_linked(&token, deadline, job_token);
                let (outcome, result) = run_attempt(job, mode, &token);
                drop(guard);

                if matches!(outcome, AttemptOutcome::Cancelled) && taken_back() {
                    return None;
                }

                let attempt_no = attempts.len() as u32 + 1;
                if let Some(result) = result {
                    attempts.push(AttemptRecord {
                        attempt: attempt_no,
                        mode,
                        outcome: AttemptOutcome::Success,
                        backoff_ms: 0,
                    });
                    let status = if mode == job.mode {
                        JobStatus::Completed
                    } else {
                        JobStatus::Degraded
                    };
                    return Some(JobRecord {
                        id: job.id.clone(),
                        requested_mode: job.mode,
                        final_mode: mode,
                        status,
                        attempts,
                        summary: Some(JobSummary::of(&result)),
                        timing: None,
                        cpi: None,
                        cached: false,
                        sim: Some(result),
                    });
                }
                let retrying = rung_attempt < retry.max_attempts;
                if retrying {
                    self.telemetry.attempt_retried();
                }
                let backoff = if retrying {
                    retry.backoff(&job.id, rung_attempt)
                } else {
                    Duration::ZERO
                };
                attempts.push(AttemptRecord {
                    attempt: attempt_no,
                    mode,
                    outcome,
                    backoff_ms: backoff.as_millis() as u64,
                });
                if retrying && !backoff.is_zero() && !taken_back() {
                    std::thread::sleep(backoff);
                }
            }
            match ladder_next(mode).filter(|_| job.degrade) {
                Some(next) => {
                    self.telemetry.attempt_retried();
                    mode = next;
                }
                None => {
                    return Some(JobRecord {
                        id: job.id.clone(),
                        requested_mode: job.mode,
                        final_mode: mode,
                        status: JobStatus::Failed,
                        attempts,
                        summary: None,
                        timing: None,
                        cpi: None,
                        cached: false,
                        sim: None,
                    });
                }
            }
        }
    }
}

fn millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

fn into_count(mutex: Mutex<usize>) -> usize {
    mutex
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Attempt panics are contained by catch_unwind; any residual poison
    // must not wedge the campaign.
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_attempt(
    job: &Job,
    mode: ffsim_core::WrongPathMode,
    token: &CancelToken,
) -> (AttemptOutcome, Option<ffsim_core::SimResult>) {
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<_, SimError> {
        let (program, memory) = (job.workload)()?;
        let mut cfg = SimConfig::with_core(job.core.clone(), mode);
        cfg.max_instructions = job.max_instructions;
        if let Some(tweak) = &job.tweak {
            tweak(&mut cfg);
        }
        // Installed after the tweak: a tweak must not be able to detach
        // the attempt from supervision.
        cfg.cancel = Some(token.clone());
        Simulator::new(program, memory, cfg)?.run()
    }));
    match caught {
        Ok(Ok(result)) => (AttemptOutcome::Success, Some(result)),
        Ok(Err(SimError::Cancelled)) => (AttemptOutcome::Cancelled, None),
        Ok(Err(SimError::DeadlineExceeded)) => (AttemptOutcome::DeadlineExceeded, None),
        Ok(Err(e)) => (AttemptOutcome::Fault(e.to_string()), None),
        Err(payload) => (AttemptOutcome::Panic(panic_message(payload.as_ref())), None),
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
