//! Retry policy: bounded attempts with exponential backoff and
//! deterministic jitter.

use crate::fnv::Fnv1a;
use std::time::Duration;

/// How many times a job is attempted per degradation rung, and how long the
/// driver waits between attempts.
///
/// Backoff grows exponentially from [`base_backoff`](RetryPolicy::base_backoff)
/// and is capped at [`max_backoff`](RetryPolicy::max_backoff). Jitter is
/// *deterministic*: it is derived by hashing the job id and attempt number,
/// so a campaign's manifest (which records the backoff applied to each
/// attempt) is byte-identical across runs and worker counts.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts per rung before giving up on it (must be at least 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after that.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff interval (pre-jitter).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The backoff applied *after* a failed `attempt` (1-based) of `job_id`,
    /// with deterministic ±25% jitter. Returns [`Duration::ZERO`] when no
    /// further attempt follows, or when `base_backoff` is zero (tests use
    /// zero backoff to stay fast).
    #[must_use]
    pub fn backoff(&self, job_id: &str, attempt: u32) -> Duration {
        if attempt >= self.max_attempts || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let base_ms = self.base_backoff.as_millis() as u64;
        let cap_ms = self.max_backoff.as_millis().max(1) as u64;
        let exp = attempt.saturating_sub(1).min(20);
        let raw_ms = base_ms.saturating_mul(1u64 << exp).min(cap_ms);
        // Deterministic jitter in [-25%, +25%]: scale by (3/4 + h/2) where
        // h in [0, 1) comes from an FNV-1a hash of (job_id, attempt).
        let h = Fnv1a::new()
            .update(job_id.as_bytes())
            .update(&attempt.to_le_bytes())
            .finish()
            % 1000;
        let jittered = raw_ms * (750 + h / 2) / 1000;
        Duration::from_millis(jittered.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
        };
        for attempt in 1..5 {
            let a = policy.backoff("job-a", attempt);
            assert_eq!(a, policy.backoff("job-a", attempt));
            assert!(a >= Duration::from_millis(1));
            assert!(a <= Duration::from_millis(500)); // cap + 25% jitter
        }
        // Last attempt never sleeps: nothing follows it.
        assert_eq!(policy.backoff("job-a", 5), Duration::ZERO);
    }

    #[test]
    fn backoff_grows_with_attempts() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(64),
            max_backoff: Duration::from_secs(60),
        };
        // Jitter is at most ±25%, doubling dominates it.
        assert!(policy.backoff("x", 3) > policy.backoff("x", 1));
        assert!(policy.backoff("x", 5) > policy.backoff("x", 3));
    }

    #[test]
    fn zero_base_disables_sleeping() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::from_secs(1),
        };
        assert_eq!(policy.backoff("x", 1), Duration::ZERO);
    }

    #[test]
    fn jitter_varies_across_jobs() {
        let policy = RetryPolicy::default();
        let distinct: std::collections::HashSet<_> = (0..16)
            .map(|i| policy.backoff(&format!("job-{i}"), 1))
            .collect();
        assert!(distinct.len() > 1, "jitter should separate job ids");
    }
}
