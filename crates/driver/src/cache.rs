//! Content-addressed result cache: repeated (program, config) points are
//! free.
//!
//! A campaign sweep re-simulates the same workload under the same
//! configuration whenever jobs repeat across campaigns (or a manifest is
//! lost). The cache keys each *deterministic* job result by a pair of
//! digests:
//!
//! - the **workload digest** — FNV-1a over the program's disassembly
//!   (base, entry, every instruction) folded with the initial memory
//!   image digest, so two workloads that execute identically hash
//!   identically however they were built;
//! - the **config digest** — FNV-1a over the canonical debug rendering
//!   of every deterministic [`SimConfig`] knob (core, mode, instruction
//!   budgets, fault model, convergence tunables, …) plus the job's
//!   supervision fingerprint (attempts per rung and whether the
//!   degradation ladder is enabled, both of which change which terminal
//!   record a deterministic workload reaches). The cancellation token and
//!   observability config are excluded: neither changes the result.
//!
//! Each entry is its own checksum-sealed file (the same
//! [`seal`](crate::manifest::seal)/[`unseal`](crate::manifest::unseal)
//! trailer as manifest shards), written atomically through the
//! [`ManifestIo`] seam. A corrupt entry is **evicted and recomputed,
//! never trusted**: [`CacheStore::lookup`] deletes it and reports the
//! eviction so the job falls through to a real simulation. Only records
//! whose attempt history is deterministic (every outcome `Success` or
//! `Fault`) and which carry a result summary are cached — wall-clock
//! outcomes (deadline, cancellation) and outright failures always re-run.

use crate::job::JobRecord;
use crate::manifest::{self, ManifestError, ManifestIo};
use crate::{json, AttemptOutcome};
use ffsim_core::SimConfig;
use ffsim_emu::Memory;
use ffsim_isa::Program;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Cache entry format version; bumped on incompatible layout changes.
pub const CACHE_VERSION: i64 = 1;

/// The content address of one cached result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Digest of the program text and initial memory image.
    pub workload: u64,
    /// Digest of the deterministic configuration knobs.
    pub config: u64,
}

impl CacheKey {
    /// The entry's file name: both digests, fixed-width hex.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{:016x}-{:016x}.json", self.workload, self.config)
    }
}

/// Digest of a workload: program disassembly plus initial memory image.
#[must_use]
pub fn workload_digest(program: &Program, memory: &Memory) -> u64 {
    let mut text = String::new();
    let _ = writeln!(text, "base {:#x}", program.base());
    let _ = writeln!(text, "entry {:#x}", program.entry());
    for (_, instr) in program.iter() {
        let _ = writeln!(text, "{instr}");
    }
    let _ = writeln!(text, "memory {:016x}", memory.digest());
    crate::fnv::fnv1a(text.as_bytes())
}

/// Digest of the deterministic configuration knobs plus the job's
/// supervision fingerprint (`max_attempts` per rung, degradation ladder
/// on/off). See the [module docs](self) for what is included and why.
#[must_use]
pub fn config_digest(cfg: &SimConfig, max_attempts: u32, degrade: bool) -> u64 {
    // Debug renderings are deterministic within a build; a rendering
    // change across versions merely misses (and repopulates) the cache.
    let text = format!(
        "v{CACHE_VERSION}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|attempts={max_attempts}|degrade={degrade}",
        cfg.core,
        cfg.mode,
        cfg.max_instructions,
        cfg.warmup_instructions,
        cfg.code_cache_capacity,
        cfg.convergence,
        cfg.fault_policy,
        cfg.wrong_path_watchdog,
        cfg.fault_model,
        cfg.max_memory_pages,
    );
    // `wp_pc_corruption` folded separately so older digests of the
    // common None case stay aligned with the field list above.
    crate::fnv::fnv1a(format!("{text}|{:?}", cfg.wp_pc_corruption).as_bytes())
}

/// What a cache probe found.
#[derive(Debug)]
pub enum Lookup {
    /// No entry for this key.
    Miss,
    /// A verified entry: the cached record, ready to re-key.
    Hit(Box<JobRecord>),
    /// A damaged entry was found, deleted, and must be recomputed.
    Evicted(ManifestError),
}

/// An on-disk result cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct CacheStore {
    dir: PathBuf,
}

impl CacheStore {
    /// A cache rooted at `dir` (created lazily on first store).
    #[must_use]
    pub fn new(dir: PathBuf) -> CacheStore {
        CacheStore { dir }
    }

    /// The entry path for `key`.
    #[must_use]
    pub fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Whether a record is deterministic enough to cache: it carries a
    /// result summary and every attempt outcome is reproducible
    /// (`Success` or `Fault`) — never wall-clock outcomes.
    #[must_use]
    pub fn cacheable(record: &JobRecord) -> bool {
        record.summary.is_some()
            && record.attempts.iter().all(|a| {
                matches!(
                    a.outcome,
                    AttemptOutcome::Success | AttemptOutcome::Fault(_)
                )
            })
    }

    /// Probes the cache for `key`, verifying the entry's checksum seal
    /// and embedded key. A damaged or mismatched entry is deleted
    /// (evicted) and reported — it is never served.
    #[must_use]
    pub fn lookup(&self, key: CacheKey) -> Lookup {
        crate::hostobs::scope(ffsim_obs::Phase::CacheIo, || self.lookup_inner(key))
    }

    fn lookup_inner(&self, key: CacheKey) -> Lookup {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            // An unreadable entry cannot be verified, so it cannot be
            // trusted; treat as a miss and recompute.
            Err(_) => return Lookup::Miss,
        };
        match parse_entry(&text, key) {
            Ok(record) => {
                crate::hostobs::inc("cache_verified_hits_total");
                Lookup::Hit(Box::new(record))
            }
            Err(error) => {
                // Evict: a corrupt entry must never be served, and
                // leaving it would re-diagnose it on every probe.
                crate::hostobs::inc("cache_evictions_total");
                std::fs::remove_file(&path).ok();
                Lookup::Evicted(error.with_context(&format!("cache {}", path.display())))
            }
        }
    }

    /// Writes `record` under `key` through `io`: temp file in the cache
    /// directory, checksum seal, atomic rename. A crash or injected
    /// fault at any point leaves either no entry or the previous intact
    /// one — never a torn file that a later lookup could trust.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] for directory creation, write, or rename
    /// failures. Callers treat a failed cache write as a lost
    /// optimization, not a lost result: the record is still committed to
    /// its manifest shard.
    pub fn store_with(
        &self,
        io: &mut dyn ManifestIo,
        key: CacheKey,
        record: &JobRecord,
    ) -> Result<(), ManifestError> {
        crate::hostobs::inc("cache_stores_total");
        crate::hostobs::scope(ffsim_obs::Phase::CacheIo, || {
            self.store_inner(io, key, record)
        })
    }

    fn store_inner(
        &self,
        io: &mut dyn ManifestIo,
        key: CacheKey,
        record: &JobRecord,
    ) -> Result<(), ManifestError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| {
            ManifestError::Io(format!("creating cache {}: {e}", self.dir.display()))
        })?;
        // Strip the volatile, per-run slices before caching: timing and
        // CPI ride telemetry, `cached` describes *this* run's provenance.
        let mut persisted = record.clone();
        persisted.timing = None;
        persisted.cpi = None;
        persisted.cached = false;
        persisted.sim = None;
        let body = json::Value::Obj(vec![
            ("version".into(), json::Value::Int(CACHE_VERSION)),
            (
                "workload".into(),
                json::Value::Str(format!("{:016x}", key.workload)),
            ),
            (
                "config".into(),
                json::Value::Str(format!("{:016x}", key.config)),
            ),
            ("record".into(), persisted.to_value()),
        ])
        .to_json();
        let path = self.entry_path(key);
        let tmp = path.with_extension("tmp");
        io.write(&tmp, manifest::seal(&body).as_bytes())
            .map_err(|e| {
                ManifestError::Io(format!("writing cache entry {}: {e}", tmp.display()))
            })?;
        io.rename(&tmp, &path).map_err(|e| {
            ManifestError::Io(format!("installing cache entry {}: {e}", path.display()))
        })
    }
}

/// Verifies and parses one sealed cache entry, checking the embedded key
/// against the probe key (a mismatch means a damaged or misplaced file).
fn parse_entry(text: &str, key: CacheKey) -> Result<JobRecord, ManifestError> {
    let body = manifest::unseal(text)?;
    let doc = json::parse(body).map_err(ManifestError::Malformed)?;
    let version = doc
        .get("version")
        .and_then(json::Value::as_int)
        .ok_or_else(|| ManifestError::Malformed("cache entry missing version".into()))?;
    if version != CACHE_VERSION {
        return Err(ManifestError::Malformed(format!(
            "cache entry version {version} unsupported (expected {CACHE_VERSION})"
        )));
    }
    let embedded = |field: &str| -> Result<u64, ManifestError> {
        doc.get(field)
            .and_then(json::Value::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| ManifestError::Malformed(format!("cache entry missing {field} digest")))
    };
    if embedded("workload")? != key.workload || embedded("config")? != key.config {
        return Err(ManifestError::Malformed(
            "cache entry key disagrees with its address".into(),
        ));
    }
    let record = doc
        .get("record")
        .and_then(JobRecord::from_value)
        .ok_or_else(|| ManifestError::Malformed("cache entry record malformed".into()))?;
    if !CacheStore::cacheable(&record) {
        return Err(ManifestError::Malformed(
            "cache entry holds an uncacheable record".into(),
        ));
    }
    Ok(record)
}

/// Re-keys a cached record for the job that hit it: the current job id,
/// provenance marked, volatile slices clear.
#[must_use]
pub fn rekey(mut record: JobRecord, job_id: &str) -> JobRecord {
    record.id = job_id.to_string();
    record.cached = true;
    record.timing = None;
    record.cpi = None;
    record.sim = None;
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AttemptRecord, JobStatus, JobSummary};
    use crate::manifest::{FaultyIo, RealIo};
    use ffsim_core::WrongPathMode;
    use ffsim_isa::{Asm, Reg};

    fn program() -> Program {
        let mut a = Asm::new();
        a.li(Reg::new(1), 3);
        a.label("loop");
        a.addi(Reg::new(1), Reg::new(1), -1);
        a.bnez(Reg::new(1), "loop");
        a.halt();
        a.assemble().unwrap()
    }

    fn record(id: &str) -> JobRecord {
        JobRecord {
            id: id.into(),
            requested_mode: WrongPathMode::WrongPathEmulation,
            final_mode: WrongPathMode::WrongPathEmulation,
            status: JobStatus::Completed,
            attempts: vec![AttemptRecord {
                attempt: 1,
                mode: WrongPathMode::WrongPathEmulation,
                outcome: AttemptOutcome::Success,
                backoff_ms: 0,
            }],
            summary: Some(JobSummary {
                instructions: 42,
                cycles: 84,
                wrong_path_instructions: 7,
                state_digest: 0xfeed,
            }),
            timing: None,
            cpi: None,
            cached: false,
            sim: None,
        }
    }

    fn temp_cache(name: &str) -> CacheStore {
        let dir = std::env::temp_dir().join(format!("ffsim-driver-cache-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        CacheStore::new(dir)
    }

    fn key() -> CacheKey {
        CacheKey {
            workload: 0x1111_2222_3333_4444,
            config: 0x5555_6666_7777_8888,
        }
    }

    #[test]
    fn workload_digest_sees_program_and_memory() {
        let p = program();
        let empty = Memory::new();
        let mut touched = Memory::new();
        touched.write_u64(0x2000_0000, 99);
        let base = workload_digest(&p, &empty);
        assert_eq!(base, workload_digest(&p, &Memory::new()), "deterministic");
        assert_ne!(base, workload_digest(&p, &touched), "memory matters");

        let mut a = Asm::new();
        a.li(Reg::new(1), 4); // one immediate differs
        a.label("loop");
        a.addi(Reg::new(1), Reg::new(1), -1);
        a.bnez(Reg::new(1), "loop");
        a.halt();
        let other = a.assemble().unwrap();
        assert_ne!(base, workload_digest(&other, &empty), "program matters");
    }

    #[test]
    fn config_digest_sees_knobs_and_supervision() {
        let cfg = SimConfig::new(WrongPathMode::WrongPathEmulation);
        let base = config_digest(&cfg, 3, true);
        assert_eq!(base, config_digest(&cfg, 3, true), "deterministic");
        assert_ne!(base, config_digest(&cfg, 2, true), "attempts matter");
        assert_ne!(base, config_digest(&cfg, 3, false), "ladder matters");
        let mut other = cfg.clone();
        other.max_instructions = Some(1000);
        assert_ne!(base, config_digest(&other, 3, true), "budget matters");
        let conv = SimConfig::new(WrongPathMode::ConvergenceExploitation);
        assert_ne!(base, config_digest(&conv, 3, true), "mode matters");
        // The cancellation token is excluded: supervised and
        // unsupervised runs of the same config share an entry.
        let mut cancelled = cfg.clone();
        cancelled.cancel = Some(ffsim_core::CancelToken::new());
        assert_eq!(base, config_digest(&cancelled, 3, true));
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = temp_cache("roundtrip");
        assert!(matches!(cache.lookup(key()), Lookup::Miss));
        cache
            .store_with(&mut RealIo, key(), &record("orig"))
            .unwrap();
        let Lookup::Hit(cached) = cache.lookup(key()) else {
            panic!("expected a hit");
        };
        assert_eq!(cached.summary, record("orig").summary);
        assert_eq!(cached.attempts, record("orig").attempts);
        // Re-keying marks provenance and adopts the new id.
        let adopted = rekey(*cached, "new-id");
        assert_eq!(adopted.id, "new-id");
        assert!(adopted.cached);
        std::fs::remove_dir_all(cache.dir).ok();
    }

    #[test]
    fn corrupt_entry_is_evicted_not_served() {
        let cache = temp_cache("evict");
        cache.store_with(&mut RealIo, key(), &record("a")).unwrap();
        let path = cache.entry_path(key());
        // Damage every byte offset class: truncation...
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            cache.lookup(key()),
            Lookup::Evicted(ManifestError::Truncated(_))
        ));
        assert!(!path.exists(), "corrupt entry must be deleted");
        // ...a flipped byte under an intact trailer...
        cache.store_with(&mut RealIo, key(), &record("a")).unwrap();
        std::fs::write(&path, full.replacen("42", "43", 1)).unwrap();
        assert!(matches!(
            cache.lookup(key()),
            Lookup::Evicted(ManifestError::ChecksumMismatch(_))
        ));
        assert!(!path.exists());
        // ...and a sealed entry whose key disagrees with its address
        // (e.g. a file renamed by hand).
        let other = CacheKey {
            workload: 1,
            config: 2,
        };
        cache.store_with(&mut RealIo, other, &record("a")).unwrap();
        std::fs::rename(cache.entry_path(other), &path).unwrap();
        assert!(matches!(
            cache.lookup(key()),
            Lookup::Evicted(ManifestError::Malformed(_))
        ));
        std::fs::remove_dir_all(cache.dir).ok();
    }

    #[test]
    fn injected_faults_never_leave_a_servable_torn_entry() {
        let cache = temp_cache("faults");
        let faults = [
            FaultyIo {
                short_write: Some(13),
                ..FaultyIo::default()
            },
            FaultyIo {
                enospc: true,
                ..FaultyIo::default()
            },
            FaultyIo {
                fail_rename: true,
                ..FaultyIo::default()
            },
        ];
        // With no previous generation: after any fault, the lookup is a
        // clean miss (recompute), never a hit on torn data.
        for mut io in faults {
            let err = cache
                .store_with(&mut io, key(), &record("a"))
                .expect_err("fault must surface");
            assert!(matches!(err, ManifestError::Io(_)), "{err:?}");
            assert!(
                matches!(cache.lookup(key()), Lookup::Miss),
                "{io:?}: torn entry served or mis-diagnosed"
            );
        }
        // With a previous generation installed, a failed overwrite
        // leaves it intact and servable.
        cache.store_with(&mut RealIo, key(), &record("a")).unwrap();
        for mut io in faults {
            let _ = cache.store_with(&mut io, key(), &record("b"));
            let Lookup::Hit(served) = cache.lookup(key()) else {
                panic!("{io:?}: previous generation lost");
            };
            assert_eq!(served.id, "a", "{io:?}: wrong generation served");
        }
        std::fs::remove_dir_all(cache.dir).ok();
    }

    #[test]
    fn wall_clock_outcomes_are_not_cacheable() {
        let mut rec = record("a");
        assert!(CacheStore::cacheable(&rec));
        rec.attempts.push(AttemptRecord {
            attempt: 2,
            mode: WrongPathMode::WrongPathEmulation,
            outcome: AttemptOutcome::DeadlineExceeded,
            backoff_ms: 0,
        });
        assert!(!CacheStore::cacheable(&rec), "deadlines are wall-clock");
        let mut failed = record("b");
        failed.summary = None;
        assert!(!CacheStore::cacheable(&failed), "failures always re-run");
    }
}
