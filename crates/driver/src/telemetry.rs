//! Live campaign telemetry: periodic stderr heartbeats and the shared
//! progress counters behind them.
//!
//! Telemetry is **off by default** and is enabled by the same switch as
//! every other observability feature (`FFSIM_OBS`, see
//! [`ffsim_obs::ENV_VAR`]), or explicitly through [`TelemetryConfig`].
//! Heartbeats go to **stderr only** — stdout artifacts (reports,
//! manifests) stay byte-deterministic whatever the telemetry setting.
//!
//! The counters in [`Telemetry`] are plain atomics: workers bump them on
//! the job lifecycle edges (dequeue, retry, finish) and the heartbeat
//! thread renders a snapshot every [`TelemetryConfig::heartbeat`]. A
//! snapshot may be torn across counters (a job can move from `running` to
//! `done` between two loads) — heartbeats are progress indication, not an
//! audit log, and the manifest remains the source of truth.

use crate::job::{JobRecord, JobStatus};
use ffsim_core::WrongPathMode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Campaign telemetry settings.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Master switch. When `false`, no heartbeat thread is spawned and no
    /// per-job [`JobTiming`](crate::JobTiming) is recorded — the campaign
    /// behaves byte-for-byte as if this module did not exist.
    pub enabled: bool,
    /// Heartbeat period.
    pub heartbeat: Duration,
}

impl Default for TelemetryConfig {
    /// Disabled, 5-second heartbeat.
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            heartbeat: Duration::from_secs(5),
        }
    }
}

impl TelemetryConfig {
    /// Reads the master switch from the `FFSIM_OBS` environment variable
    /// (the shared observability gate); heartbeat period stays at the
    /// default.
    #[must_use]
    pub fn from_env() -> TelemetryConfig {
        TelemetryConfig {
            enabled: ffsim_obs::env_enabled(),
            ..TelemetryConfig::default()
        }
    }
}

/// Shared campaign progress counters, updated by workers and rendered by
/// the heartbeat thread. See the [module docs](self) for the consistency
/// contract.
#[derive(Debug)]
pub struct Telemetry {
    total: usize,
    start: Instant,
    running: AtomicUsize,
    done: AtomicUsize,
    failed: AtomicUsize,
    retries: AtomicUsize,
    /// Degraded-job count per final rung, indexed like
    /// [`WrongPathMode::ALL`].
    degraded: [AtomicUsize; 4],
    /// Correct-path instructions simulated by finished jobs (MIPS).
    instructions: AtomicU64,
}

impl Telemetry {
    /// Fresh counters for a campaign of `total` pending jobs.
    #[must_use]
    pub fn new(total: usize) -> Telemetry {
        Telemetry {
            total,
            start: Instant::now(),
            running: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            degraded: [const { AtomicUsize::new(0) }; 4],
            instructions: AtomicU64::new(0),
        }
    }

    /// A worker dequeued a job.
    pub fn job_started(&self) {
        self.running.fetch_add(1, Ordering::Relaxed);
    }

    /// An attempt failed and the job will try again (same rung or the next
    /// one down the ladder).
    pub fn attempt_retried(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A job reached a terminal record.
    pub fn job_finished(&self, record: &JobRecord) {
        self.running.fetch_sub(1, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
        match record.status {
            JobStatus::Failed => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            JobStatus::Degraded => {
                if let Some(rung) = mode_index(record.final_mode) {
                    self.degraded[rung].fetch_add(1, Ordering::Relaxed);
                }
            }
            JobStatus::Completed => {}
        }
        if let Some(summary) = &record.summary {
            self.instructions
                .fetch_add(summary.instructions, Ordering::Relaxed);
        }
    }

    /// A job was abandoned without a record (campaign cancelled mid-job).
    pub fn job_abandoned(&self) {
        self.running.fetch_sub(1, Ordering::Relaxed);
    }

    /// One heartbeat line for the current counters and elapsed wall time.
    #[must_use]
    pub fn heartbeat_line(&self) -> String {
        self.line_at(self.start.elapsed())
    }

    /// [`Telemetry::heartbeat_line`] with an explicit elapsed time
    /// (deterministic rendering for tests).
    #[must_use]
    pub fn line_at(&self, elapsed: Duration) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let running = self.running.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let retries = self.retries.load(Ordering::Relaxed);
        let instructions = self.instructions.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        let mips = if secs > 0.0 {
            instructions as f64 / secs / 1e6
        } else {
            0.0
        };
        let mut line = format!(
            "campaign: {done}/{} done, {running} running, {retries} retries, {failed} failed",
            self.total
        );
        let degraded: Vec<String> = WrongPathMode::ALL
            .into_iter()
            .enumerate()
            .filter_map(|(i, mode)| {
                let n = self.degraded[i].load(Ordering::Relaxed);
                (n > 0).then(|| format!("{}={n}", mode.label()))
            })
            .collect();
        if !degraded.is_empty() {
            line.push_str(&format!(", degraded to {}", degraded.join(" ")));
        }
        line.push_str(&format!(" | {mips:.2} MIPS | {:.0}s", secs));
        line
    }
}

fn mode_index(mode: WrongPathMode) -> Option<usize> {
    WrongPathMode::ALL.into_iter().position(|m| m == mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSummary;

    fn record(status: JobStatus, final_mode: WrongPathMode, instructions: u64) -> JobRecord {
        JobRecord {
            id: "j".into(),
            requested_mode: WrongPathMode::WrongPathEmulation,
            final_mode,
            status,
            attempts: vec![],
            summary: (status != JobStatus::Failed).then_some(JobSummary {
                instructions,
                cycles: instructions,
                wrong_path_instructions: 0,
                state_digest: 0,
            }),
            timing: None,
            cpi: None,
            cached: false,
            sim: None,
        }
    }

    #[test]
    fn default_config_is_off() {
        assert!(!TelemetryConfig::default().enabled);
    }

    #[test]
    fn counters_track_the_job_lifecycle() {
        let t = Telemetry::new(3);
        t.job_started();
        t.job_started();
        t.attempt_retried();
        t.job_finished(&record(
            JobStatus::Completed,
            WrongPathMode::WrongPathEmulation,
            2_000_000,
        ));
        t.job_finished(&record(
            JobStatus::Degraded,
            WrongPathMode::ConvergenceExploitation,
            1_000_000,
        ));
        t.job_started();
        t.job_finished(&record(JobStatus::Failed, WrongPathMode::NoWrongPath, 0));
        let line = t.line_at(Duration::from_secs(2));
        assert_eq!(
            line,
            "campaign: 3/3 done, 0 running, 1 retries, 1 failed, \
             degraded to conv=1 | 1.50 MIPS | 2s"
        );
    }

    #[test]
    fn abandoned_jobs_leave_done_untouched() {
        let t = Telemetry::new(1);
        t.job_started();
        t.job_abandoned();
        let line = t.line_at(Duration::from_secs(1));
        assert!(line.starts_with("campaign: 0/1 done, 0 running"));
    }
}
