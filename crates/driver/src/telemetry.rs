//! Live campaign telemetry: periodic stderr heartbeats and the shared
//! progress counters behind them.
//!
//! Telemetry is **off by default** and is enabled by the same switch as
//! every other observability feature (`FFSIM_OBS`, see
//! [`ffsim_obs::ENV_VAR`]), or explicitly through [`TelemetryConfig`].
//! Heartbeats go to **stderr only** — stdout artifacts (reports,
//! manifests) stay byte-deterministic whatever the telemetry setting.
//!
//! The counters in [`Telemetry`] are plain atomics: workers bump them on
//! the job lifecycle edges (dequeue, retry, finish) and the heartbeat
//! thread renders a snapshot every [`TelemetryConfig::heartbeat`]. A
//! snapshot may be torn across counters (a job can move from `running` to
//! `done` between two loads) — heartbeats are progress indication, not an
//! audit log, and the manifest remains the source of truth.

use crate::job::{JobRecord, JobStatus};
use ffsim_core::WrongPathMode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The `u64` sentinel for "no value" in [`QueueGauges`] age fields.
const NO_AGE: u64 = u64::MAX;

/// Campaign telemetry settings.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Master switch. When `false`, no heartbeat thread is spawned and no
    /// per-job [`JobTiming`](crate::JobTiming) is recorded — the campaign
    /// behaves byte-for-byte as if this module did not exist.
    pub enabled: bool,
    /// Heartbeat period.
    pub heartbeat: Duration,
}

impl Default for TelemetryConfig {
    /// Disabled, 5-second heartbeat.
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            heartbeat: Duration::from_secs(5),
        }
    }
}

impl TelemetryConfig {
    /// Reads the master switch from the `FFSIM_OBS` environment variable
    /// (the shared observability gate); heartbeat period stays at the
    /// default.
    #[must_use]
    pub fn from_env() -> TelemetryConfig {
        TelemetryConfig {
            enabled: ffsim_obs::env_enabled(),
            ..TelemetryConfig::default()
        }
    }
}

/// Shared campaign progress counters, updated by workers and rendered by
/// the heartbeat thread. See the [module docs](self) for the consistency
/// contract.
#[derive(Debug)]
pub struct Telemetry {
    total: usize,
    start: Instant,
    running: AtomicUsize,
    done: AtomicUsize,
    failed: AtomicUsize,
    retries: AtomicUsize,
    /// Degraded-job count per final rung, indexed like
    /// [`WrongPathMode::ALL`].
    degraded: [AtomicUsize; 4],
    /// Correct-path instructions simulated by finished jobs (MIPS).
    instructions: AtomicU64,
    /// Queue gauges appended to the heartbeat line when the counters
    /// belong to a queue drain rather than a plain campaign.
    queue: Option<Arc<QueueGauges>>,
}

impl Telemetry {
    /// Fresh counters for a campaign of `total` pending jobs.
    #[must_use]
    pub fn new(total: usize) -> Telemetry {
        Telemetry {
            total,
            start: Instant::now(),
            running: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            degraded: [const { AtomicUsize::new(0) }; 4],
            instructions: AtomicU64::new(0),
            queue: None,
        }
    }

    /// [`Telemetry::new`] plus queue gauges: every heartbeat line also
    /// reports queue depth, outstanding leases, and wait ages.
    #[must_use]
    pub fn with_queue(total: usize, gauges: Arc<QueueGauges>) -> Telemetry {
        Telemetry {
            queue: Some(gauges),
            ..Telemetry::new(total)
        }
    }

    /// A worker dequeued a job.
    pub fn job_started(&self) {
        self.running.fetch_add(1, Ordering::Relaxed);
    }

    /// An attempt failed and the job will try again (same rung or the next
    /// one down the ladder).
    pub fn attempt_retried(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A job reached a terminal record.
    pub fn job_finished(&self, record: &JobRecord) {
        self.running.fetch_sub(1, Ordering::Relaxed);
        self.done.fetch_add(1, Ordering::Relaxed);
        match record.status {
            JobStatus::Failed => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            JobStatus::Degraded => {
                if let Some(rung) = mode_index(record.final_mode) {
                    self.degraded[rung].fetch_add(1, Ordering::Relaxed);
                }
            }
            JobStatus::Completed => {}
        }
        if let Some(summary) = &record.summary {
            self.instructions
                .fetch_add(summary.instructions, Ordering::Relaxed);
        }
    }

    /// A job was abandoned without a record (campaign cancelled mid-job).
    pub fn job_abandoned(&self) {
        self.running.fetch_sub(1, Ordering::Relaxed);
    }

    /// One heartbeat line for the current counters and elapsed wall time.
    #[must_use]
    pub fn heartbeat_line(&self) -> String {
        self.line_at(self.start.elapsed())
    }

    /// [`Telemetry::heartbeat_line`] with an explicit elapsed time
    /// (deterministic rendering for tests).
    #[must_use]
    pub fn line_at(&self, elapsed: Duration) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let running = self.running.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let retries = self.retries.load(Ordering::Relaxed);
        let instructions = self.instructions.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        let mips = if secs > 0.0 {
            instructions as f64 / secs / 1e6
        } else {
            0.0
        };
        let mut line = format!(
            "campaign: {done}/{} done, {running} running, {retries} retries, {failed} failed",
            self.total
        );
        let degraded: Vec<String> = WrongPathMode::ALL
            .into_iter()
            .enumerate()
            .filter_map(|(i, mode)| {
                let n = self.degraded[i].load(Ordering::Relaxed);
                (n > 0).then(|| format!("{}={n}", mode.label()))
            })
            .collect();
        if !degraded.is_empty() {
            line.push_str(&format!(", degraded to {}", degraded.join(" ")));
        }
        line.push_str(&format!(" | {mips:.2} MIPS | {:.0}s", secs));
        if let Some(queue) = &self.queue {
            line.push_str(&format!(" | {}", queue.render()));
        }
        line
    }
}

/// Live queue gauges rendered into the heartbeat line during a queue
/// drain. The queue refreshes them under its own lock on every lifecycle
/// edge (enqueue, lease, commit, re-enqueue, reap); like the campaign
/// counters they are progress indication, not an audit log — the journal
/// is the source of truth.
#[derive(Debug, Default)]
pub struct QueueGauges {
    depth: AtomicUsize,
    leased: AtomicUsize,
    /// Age of the oldest outstanding lease, in milliseconds as of the last
    /// refresh ([`NO_AGE`] = no lease outstanding).
    oldest_lease_ms: AtomicU64,
    /// Longest wait among currently pending jobs, in milliseconds as of
    /// the last refresh ([`NO_AGE`] = nothing pending).
    longest_wait_ms: AtomicU64,
}

impl QueueGauges {
    /// Fresh gauges (empty queue, no leases).
    #[must_use]
    pub fn new() -> Arc<QueueGauges> {
        Arc::new(QueueGauges {
            oldest_lease_ms: AtomicU64::new(NO_AGE),
            longest_wait_ms: AtomicU64::new(NO_AGE),
            ..QueueGauges::default()
        })
    }

    /// Replaces the snapshot: pending depth, outstanding leases, age of
    /// the oldest lease, and the longest pending wait.
    pub fn set(
        &self,
        depth: usize,
        leased: usize,
        oldest_lease: Option<Duration>,
        longest_wait: Option<Duration>,
    ) {
        self.depth.store(depth, Ordering::Relaxed);
        self.leased.store(leased, Ordering::Relaxed);
        self.oldest_lease_ms
            .store(age_ms(oldest_lease), Ordering::Relaxed);
        self.longest_wait_ms
            .store(age_ms(longest_wait), Ordering::Relaxed);
    }

    /// The heartbeat-line fragment for the current snapshot.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!(
            "queue: {} pending, {} leased",
            self.depth.load(Ordering::Relaxed),
            self.leased.load(Ordering::Relaxed)
        );
        let lease = self.oldest_lease_ms.load(Ordering::Relaxed);
        if lease != NO_AGE {
            s.push_str(&format!(", oldest lease {:.1}s", lease as f64 / 1000.0));
        }
        let wait = self.longest_wait_ms.load(Ordering::Relaxed);
        if wait != NO_AGE {
            s.push_str(&format!(", longest wait {:.1}s", wait as f64 / 1000.0));
        }
        s
    }
}

fn age_ms(age: Option<Duration>) -> u64 {
    age.map_or(NO_AGE, |d| {
        u64::try_from(d.as_millis()).unwrap_or(NO_AGE - 1)
    })
}

/// The heartbeat thread: renders [`Telemetry::heartbeat_line`] to stderr
/// every period, and — unlike the previous inline loop, which raced the
/// condvar timeout and occasionally lost the last line — always flushes
/// one final heartbeat from inside the thread on cooperative shutdown,
/// after the stop flag is set. [`Heartbeat::stop`] (or drop) signals the
/// flag and joins, so by the time it returns the final line covering every
/// settled counter is on stderr.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns the heartbeat thread.
    #[must_use]
    pub fn spawn(telemetry: Arc<Telemetry>, period: Duration) -> Heartbeat {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("campaign-heartbeat".into())
            .spawn(move || {
                let (flag, cv) = &*thread_stop;
                let mut stopped = flag
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                loop {
                    if *stopped {
                        // The final flush: counters have settled (stop is
                        // signalled after the workers join), so this line
                        // reports the campaign's true end state.
                        eprintln!("{}", telemetry.heartbeat_line());
                        return;
                    }
                    let (guard, timeout) = cv
                        .wait_timeout(stopped, period)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    stopped = guard;
                    if timeout.timed_out() && !*stopped {
                        eprintln!("{}", telemetry.heartbeat_line());
                    }
                }
            })
            .expect("spawning the heartbeat thread cannot fail outside resource exhaustion");
        Heartbeat {
            stop,
            thread: Some(thread),
        }
    }

    /// Signals shutdown and waits for the final heartbeat to be flushed.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (flag, cv) = &*self.stop;
        *flag
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn mode_index(mode: WrongPathMode) -> Option<usize> {
    WrongPathMode::ALL.into_iter().position(|m| m == mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSummary;

    fn record(status: JobStatus, final_mode: WrongPathMode, instructions: u64) -> JobRecord {
        JobRecord {
            id: "j".into(),
            requested_mode: WrongPathMode::WrongPathEmulation,
            final_mode,
            status,
            attempts: vec![],
            summary: (status != JobStatus::Failed).then_some(JobSummary {
                instructions,
                cycles: instructions,
                wrong_path_instructions: 0,
                state_digest: 0,
            }),
            timing: None,
            cpi: None,
            cached: false,
            sim: None,
        }
    }

    #[test]
    fn default_config_is_off() {
        assert!(!TelemetryConfig::default().enabled);
    }

    #[test]
    fn counters_track_the_job_lifecycle() {
        let t = Telemetry::new(3);
        t.job_started();
        t.job_started();
        t.attempt_retried();
        t.job_finished(&record(
            JobStatus::Completed,
            WrongPathMode::WrongPathEmulation,
            2_000_000,
        ));
        t.job_finished(&record(
            JobStatus::Degraded,
            WrongPathMode::ConvergenceExploitation,
            1_000_000,
        ));
        t.job_started();
        t.job_finished(&record(JobStatus::Failed, WrongPathMode::NoWrongPath, 0));
        let line = t.line_at(Duration::from_secs(2));
        assert_eq!(
            line,
            "campaign: 3/3 done, 0 running, 1 retries, 1 failed, \
             degraded to conv=1 | 1.50 MIPS | 2s"
        );
    }

    #[test]
    fn queue_gauges_render_into_the_heartbeat_line() {
        let gauges = QueueGauges::new();
        gauges.set(
            3,
            2,
            Some(Duration::from_millis(1200)),
            Some(Duration::from_millis(300)),
        );
        let t = Telemetry::with_queue(5, gauges);
        let line = t.line_at(Duration::from_secs(1));
        assert_eq!(
            line,
            "campaign: 0/5 done, 0 running, 0 retries, 0 failed | 0.00 MIPS | 1s \
             | queue: 3 pending, 2 leased, oldest lease 1.2s, longest wait 0.3s"
        );
    }

    #[test]
    fn idle_queue_gauges_omit_the_age_fields() {
        let gauges = QueueGauges::new();
        gauges.set(0, 0, None, None);
        assert_eq!(gauges.render(), "queue: 0 pending, 0 leased");
    }

    #[test]
    fn heartbeat_stop_joins_after_the_final_flush() {
        // The final heartbeat is printed by the thread itself before it
        // exits; stop() returning proves the thread observed the flag and
        // flushed (the old inline loop could exit without the last line).
        let t = Arc::new(Telemetry::new(1));
        let hb = Heartbeat::spawn(Arc::clone(&t), Duration::from_secs(3600));
        t.job_started();
        t.job_finished(&record(
            JobStatus::Completed,
            WrongPathMode::WrongPathEmulation,
            1,
        ));
        hb.stop();
    }

    #[test]
    fn abandoned_jobs_leave_done_untouched() {
        let t = Telemetry::new(1);
        t.job_started();
        t.job_abandoned();
        let line = t.line_at(Duration::from_secs(1));
        assert!(line.starts_with("campaign: 0/1 done, 0 running"));
    }
}
