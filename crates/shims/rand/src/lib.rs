//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of exactly the API
//! surface the workloads use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen_range`, `gen`, and `gen_bool`.
//!
//! The generator is SplitMix64 — statistically solid for workload-data
//! synthesis and fully deterministic per seed, which the experiment harness
//! relies on. It is **not** the upstream `StdRng` (ChaCha12), so streams
//! differ from builds against the real crate; all in-repo results were
//! produced with this generator.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformSample: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Types that can be sampled from their "standard" distribution
/// (`gen::<T>()`): full range for integers, `[0, 1)` for floats.
pub trait StandardSample {
    /// Samples one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < 2^-64 per sample for every span this
                // workspace uses; acceptable for workload synthesis.
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
        impl StandardSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::sample(rng)
    }
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generation methods.
pub trait Rng {
    /// The raw 64-bit source all sampling derives from.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Samples from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for upstream `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
