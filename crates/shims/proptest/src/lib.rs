//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal property-testing harness with the same API shape the
//! in-repo property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, range / tuple / [`Just`] / [`any`] strategies, the
//! [`prop_oneof!`] union, and `collection::{vec, hash_set}`.
//!
//! Differences from upstream: no shrinking (failing inputs are reported
//! at full size), and case generation is deterministic per test name and
//! case index so CI failures always reproduce. The number of cases per
//! property defaults to 64 and can be overridden with `PROPTEST_CASES`.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! The deterministic random source driving case generation.

    /// SplitMix64 generator seeded from the test name and case index.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for case `case` of the test named `name`.
        pub fn deterministic(name: &str, case: u64) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// The next raw 64-bit sample.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A sample in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of one type.
///
/// Object-safe (so [`prop_oneof!`] can box heterogeneous strategies);
/// combinators requiring `Sized` are provided as defaulted methods.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// Boxes a strategy (used by [`prop_oneof!`] to unify branch types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between boxed strategies (the [`prop_oneof!`] macro).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integer and float ranges are strategies (uniform over the range).
pub trait RangeValue: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample(rng: &mut TestRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample(rng: &mut TestRng, low: Self, high: Self) -> Self {
                assert!(low < high, "range strategy: empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for f64 {
    fn sample(rng: &mut TestRng, low: Self, high: Self) -> Self {
        assert!(low < high, "range strategy: empty range");
        low + (high - low) * ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// A collection size specification: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            if self.0.start + 1 >= self.0.end {
                self.0.start
            } else {
                Strategy::new_value(&self.0, rng)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — a vector of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size from `size`.
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `hash_set(element, size_range)` — a set of distinct samples.
    ///
    /// Sampling retries on duplicates a bounded number of times, so the
    /// produced set may be smaller than the drawn target when the element
    /// domain is narrow (matching upstream's best-effort behaviour).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = HashSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 16 + 16 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

// Re-exported so `use proptest::prelude::*` brings in what tests need.
pub mod prelude {
    //! The customary glob import.
    pub use crate::{any, boxed, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs the
/// body for `PROPTEST_CASES` (default 64) deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u64 = std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(64);
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::deterministic("compose", 0);
        let s = (0u8..30, -1000i64..1000).prop_map(|(a, b)| (u64::from(a), b));
        for _ in 0..200 {
            let (a, b) = s.new_value(&mut rng);
            assert!(a < 30);
            assert!((-1000..1000).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let mut rng = TestRng::deterministic("oneof", 0);
        let s = prop_oneof![Just(1u64), Just(2), Just(4), Just(8)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::deterministic("vec", 0);
        let s = crate::collection::vec(0u64..10, 1..60);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..60).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn hash_set_distinct_and_bounded() {
        let mut rng = TestRng::deterministic("hs", 0);
        let s = crate::collection::hash_set(0u8..48, 0..16);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v.len() < 16);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = TestRng::deterministic("x", 3).next_u64();
        let b = TestRng::deterministic("x", 3).next_u64();
        let c = TestRng::deterministic("x", 4).next_u64();
        let d = TestRng::deterministic("y", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let y = if flip { x + 1 } else { x };
            prop_assert!(y <= 100);
        }
    }
}
