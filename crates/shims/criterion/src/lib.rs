//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal benchmarking harness with the same API shape the
//! in-repo benches use: [`Criterion::benchmark_group`], group
//! `throughput`/`sample_size`/`bench_function`/`bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock mean over a fixed number of timed
//! iterations after one warm-up — adequate for the relative-throughput
//! comparisons these benches make, with none of upstream's statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive (prevents the
    /// optimizer from deleting the measured work).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        std::hint::black_box(routine());
        let samples = self.samples.max(1);
        let start = Instant::now();
        for _ in 0..samples {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the amount of work per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let samples = b.samples.max(1);
        let per_iter = b.elapsed.as_secs_f64() / samples as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id:<32} {:>12.3} ms/iter{rate}",
            self.name,
            per_iter * 1e3,
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.run(&id.to_string(), f);
        self
    }

    /// Prints the final summary (a no-op for us).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value sink (re-export shape of upstream's `black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("add_loop", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter("x2"), &2u64, |b, &k| {
            b.iter(|| (0..100u64).map(|i| i * k).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn end_to_end_macro_expansion_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("wpemul").to_string(), "wpemul");
    }
}
