//! # ffsim-isa — instruction set for the wrong-path simulation stack
//!
//! A compact 64-bit RISC-style instruction set, shared by the functional
//! emulator ([`ffsim-emu`]) and the out-of-order timing model
//! ([`ffsim-core`]) of this repository's reproduction of *“Simulating
//! Wrong-Path Instructions in Decoupled Functional-First Simulation”*
//! (Eyerman et al., ISPASS 2023).
//!
//! The crate provides:
//!
//! * [`Instr`] and friends — the instruction definitions, with per-µop
//!   execution classes ([`ExecClass`]) and branch classification
//!   ([`BranchKind`]) for the timing model,
//! * [`Operands`] extraction — exactly the decode information the paper's
//!   *code cache* keeps (instruction address, type, input/output registers),
//! * [`Reg`]/[`FReg`]/[`ArchReg`]/[`RegSet`] — typed register names and a
//!   dense register set used for dependence ("dirty register") tracking by
//!   the convergence-exploitation technique,
//! * [`Program`] — an assembled code image, and
//! * [`Asm`] — a label-based assembler all bundled workloads are written in.
//!
//! # Examples
//!
//! ```
//! use ffsim_isa::{Asm, Reg};
//!
//! // sum = 0; for i in (1..=10) { sum += i }
//! let (sum, i) = (Reg::new(10), Reg::new(11));
//! let mut a = Asm::new();
//! a.li(sum, 0);
//! a.li(i, 10);
//! a.label("loop");
//! a.add(sum, sum, i);
//! a.addi(i, i, -1);
//! a.bnez(i, "loop");
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.len(), 6);
//! # Ok::<(), ffsim_isa::AsmError>(())
//! ```
//!
//! [`ffsim-emu`]: ../ffsim_emu/index.html
//! [`ffsim-core`]: ../ffsim_core/index.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod instr;
mod program;
mod reg;

pub use asm::{Asm, AsmError};
pub use instr::{
    Addr, AluOp, BranchCond, BranchKind, ExecClass, FpCmpOp, FpOp, Instr, MemWidth, Operands,
    INSTR_BYTES,
};
pub use program::{Program, DEFAULT_TEXT_BASE};
pub use reg::{ArchReg, FReg, Reg, RegSet, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};
