//! Architectural register names.
//!
//! The ISA has 32 integer registers (`x0`–`x31`, with `x0` hard-wired to
//! zero) and 16 floating-point registers (`f0`–`f15`). Two typed wrappers,
//! [`Reg`] and [`FReg`], keep integer and floating-point operands apart at
//! the API level, while [`ArchReg`] provides a flat numbering of the whole
//! architectural register file that dependence-tracking code (e.g. the
//! convergence-detection dirty-register set) can use as a dense bitset
//! index.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 16;
/// Total architectural registers (integer + floating point).
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// An integer register, `x0`–`x31`.
///
/// `x0` always reads as zero and writes to it are discarded, mirroring the
/// RISC convention. By software convention `x1` is the link register used by
/// [`crate::Instr::Jal`]-based calls and `x2` the stack pointer, but nothing
/// in the ISA enforces this.
///
/// # Examples
///
/// ```
/// use ffsim_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "x5");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Conventional link (return-address) register `x1`.
    pub const RA: Reg = Reg(1);
    /// Conventional stack pointer `x2`.
    pub const SP: Reg = Reg(2);

    /// Creates the integer register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < NUM_INT_REGS,
            "integer register index {index} out of range"
        );
        Reg(index)
    }

    /// The register's index within the integer register file.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register `x0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A floating-point register, `f0`–`f15`.
///
/// # Examples
///
/// ```
/// use ffsim_isa::FReg;
/// let f = FReg::new(3);
/// assert_eq!(f.to_string(), "f3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FReg(u8);

impl FReg {
    /// Creates the floating-point register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[must_use]
    pub fn new(index: u8) -> FReg {
        assert!(
            (index as usize) < NUM_FP_REGS,
            "fp register index {index} out of range"
        );
        FReg(index)
    }

    /// The register's index within the floating-point register file.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A flat identifier for any architectural register.
///
/// Integer registers occupy indices `0..32`, floating-point registers
/// `32..48`. The flat index is dense, so a 64-bit word can represent a set
/// of architectural registers — see [`RegSet`].
///
/// # Examples
///
/// ```
/// use ffsim_isa::{ArchReg, Reg, FReg};
/// assert_eq!(ArchReg::from(Reg::new(7)).flat_index(), 7);
/// assert_eq!(ArchReg::from(FReg::new(2)).flat_index(), 34);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates an `ArchReg` directly from a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= 48`.
    #[must_use]
    pub fn from_flat(flat: u8) -> ArchReg {
        assert!(
            (flat as usize) < NUM_ARCH_REGS,
            "flat register index {flat} out of range"
        );
        ArchReg(flat)
    }

    /// The dense flat index (`0..48`).
    #[must_use]
    pub fn flat_index(self) -> usize {
        self.0 as usize
    }

    /// Whether this identifies an integer register.
    #[must_use]
    pub fn is_int(self) -> bool {
        (self.0 as usize) < NUM_INT_REGS
    }

    /// The integer register, if this identifies one.
    #[must_use]
    pub fn as_int(self) -> Option<Reg> {
        self.is_int().then_some(Reg(self.0))
    }

    /// The floating-point register, if this identifies one.
    #[must_use]
    pub fn as_fp(self) -> Option<FReg> {
        (!self.is_int()).then(|| FReg(self.0 - NUM_INT_REGS as u8))
    }
}

impl From<Reg> for ArchReg {
    fn from(r: Reg) -> ArchReg {
        ArchReg(r.0)
    }
}

impl From<FReg> for ArchReg {
    fn from(f: FReg) -> ArchReg {
        ArchReg(f.0 + NUM_INT_REGS as u8)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(r) = self.as_int() {
            r.fmt(f)
        } else {
            self.as_fp().expect("non-int ArchReg is fp").fmt(f)
        }
    }
}

/// A set of architectural registers, stored as a 48-bit mask.
///
/// Used pervasively by dependence analysis: the convergence-exploitation
/// technique tracks which registers were written before the convergence
/// point ("dirty" registers) and refuses to recover memory addresses whose
/// source operands intersect the set.
///
/// # Examples
///
/// ```
/// use ffsim_isa::{ArchReg, Reg, RegSet};
/// let mut dirty = RegSet::new();
/// dirty.insert(Reg::new(4).into());
/// assert!(dirty.contains(Reg::new(4).into()));
/// assert!(!dirty.contains(Reg::new(5).into()));
/// assert_eq!(dirty.len(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct RegSet(u64);

impl RegSet {
    /// Creates an empty register set.
    #[must_use]
    pub fn new() -> RegSet {
        RegSet(0)
    }

    /// Inserts a register into the set.
    pub fn insert(&mut self, r: ArchReg) {
        self.0 |= 1u64 << r.flat_index();
    }

    /// Removes a register from the set.
    pub fn remove(&mut self, r: ArchReg) {
        self.0 &= !(1u64 << r.flat_index());
    }

    /// Whether the register is in the set.
    #[must_use]
    pub fn contains(self, r: ArchReg) -> bool {
        self.0 & (1u64 << r.flat_index()) != 0
    }

    /// Whether any register from `other` is also in `self`.
    #[must_use]
    pub fn intersects(self, other: RegSet) -> bool {
        self.0 & other.0 != 0
    }

    /// The union of two sets.
    #[must_use]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Number of registers in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the registers in the set in flat-index order.
    pub fn iter(self) -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS as u8)
            .filter(move |i| self.0 & (1u64 << i) != 0)
            .map(ArchReg)
    }
}

impl FromIterator<ArchReg> for RegSet {
    fn from_iter<I: IntoIterator<Item = ArchReg>>(iter: I) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<ArchReg> for RegSet {
    fn extend<I: IntoIterator<Item = ArchReg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_roundtrip() {
        for i in 0..NUM_INT_REGS as u8 {
            let r = Reg::new(i);
            assert_eq!(r.index(), i as usize);
            let a = ArchReg::from(r);
            assert_eq!(a.as_int(), Some(r));
            assert_eq!(a.as_fp(), None);
        }
    }

    #[test]
    fn fp_reg_roundtrip() {
        for i in 0..NUM_FP_REGS as u8 {
            let r = FReg::new(i);
            let a = ArchReg::from(r);
            assert_eq!(a.as_fp(), Some(r));
            assert_eq!(a.as_int(), None);
            assert_eq!(a.flat_index(), NUM_INT_REGS + i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_reg_out_of_range_panics() {
        let _ = FReg::new(16);
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::ZERO, Reg::new(0));
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::new(17).to_string(), "x17");
        assert_eq!(FReg::new(9).to_string(), "f9");
        assert_eq!(ArchReg::from(FReg::new(9)).to_string(), "f9");
        assert_eq!(ArchReg::from(Reg::new(3)).to_string(), "x3");
    }

    #[test]
    fn regset_insert_remove_contains() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        let a = ArchReg::from(Reg::new(10));
        let b = ArchReg::from(FReg::new(5));
        s.insert(a);
        s.insert(b);
        assert_eq!(s.len(), 2);
        assert!(s.contains(a) && s.contains(b));
        s.remove(a);
        assert!(!s.contains(a) && s.contains(b));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn regset_intersects_and_union() {
        let s1: RegSet = [ArchReg::from(Reg::new(1)), ArchReg::from(Reg::new(2))]
            .into_iter()
            .collect();
        let s2: RegSet = [ArchReg::from(Reg::new(2)), ArchReg::from(Reg::new(3))]
            .into_iter()
            .collect();
        let s3: RegSet = [ArchReg::from(FReg::new(0))].into_iter().collect();
        assert!(s1.intersects(s2));
        assert!(!s1.intersects(s3));
        assert_eq!(s1.union(s2).len(), 3);
    }

    #[test]
    fn regset_iter_in_order() {
        let regs = [
            ArchReg::from(Reg::new(30)),
            ArchReg::from(Reg::new(2)),
            ArchReg::from(FReg::new(1)),
        ];
        let s: RegSet = regs.into_iter().collect();
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(
            collected,
            vec![
                ArchReg::from(Reg::new(2)),
                ArchReg::from(Reg::new(30)),
                ArchReg::from(FReg::new(1))
            ]
        );
    }
}
