//! A label-based assembler / program builder.
//!
//! All workloads in this repository (GAP graph kernels, SPEC-like synthetic
//! kernels) are written against this builder. It provides one method per
//! mnemonic plus the usual pseudo-instructions, with string labels for
//! control-flow targets; [`Asm::assemble`] lays out the instructions from a
//! base address and patches every label reference.
//!
//! # Examples
//!
//! A count-down loop:
//!
//! ```
//! use ffsim_isa::{Asm, Reg};
//! let n = Reg::new(10);
//! let mut a = Asm::new();
//! a.li(n, 100);
//! a.label("loop");
//! a.addi(n, n, -1);
//! a.bnez(n, "loop");
//! a.halt();
//! let prog = a.assemble()?;
//! assert_eq!(prog.len(), 4);
//! # Ok::<(), ffsim_isa::AsmError>(())
//! ```

use crate::instr::{Addr, AluOp, BranchCond, FpCmpOp, FpOp, Instr, MemWidth, INSTR_BYTES};
use crate::program::{Program, DEFAULT_TEXT_BASE};
use crate::reg::{FReg, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors produced by [`Asm::assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The program contains no instructions.
    EmptyProgram,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "label `{l}` defined more than once"),
            AsmError::UndefinedLabel(l) => write!(f, "label `{l}` is referenced but never defined"),
            AsmError::EmptyProgram => write!(f, "program contains no instructions"),
        }
    }
}

impl Error for AsmError {}

/// Incremental program builder with label resolution.
///
/// See the crate-level documentation for an example. Every emit method
/// returns `&mut Self` so short sequences can be chained, while loops and
/// conditionals in generator code can use statement form.
#[derive(Clone, Default, Debug)]
pub struct Asm {
    base: Addr,
    instrs: Vec<Instr>,
    labels: HashMap<String, usize>,
    /// (instruction index, label) pairs whose target needs patching.
    fixups: Vec<(usize, String)>,
    entry_label: Option<String>,
}

impl Asm {
    /// Creates an empty builder with the default text base address.
    #[must_use]
    pub fn new() -> Asm {
        Asm::with_base(DEFAULT_TEXT_BASE)
    }

    /// Creates an empty builder with an explicit text base address.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    #[must_use]
    pub fn with_base(base: Addr) -> Asm {
        assert_eq!(base % INSTR_BYTES, 0, "text base must be 4-byte aligned");
        Asm {
            base,
            ..Asm::default()
        }
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The address the next emitted instruction will occupy.
    #[must_use]
    pub fn here(&self) -> Addr {
        self.base + self.instrs.len() as Addr * INSTR_BYTES
    }

    /// Defines a label at the current position. Labels may be defined before
    /// or after the branches that reference them.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        // Duplicates are reported at assemble() time so the builder API
        // stays infallible; remember the first definition and mark the
        // conflict with a sentinel re-insert.
        if self
            .labels
            .insert(name.clone(), self.instrs.len())
            .is_some()
        {
            self.fixups.push((usize::MAX, name));
        }
        self
    }

    /// Marks the entry point at a label (defaults to the first instruction).
    pub fn entry(&mut self, name: impl Into<String>) -> &mut Self {
        self.entry_label = Some(name.into());
        self
    }

    /// Emits a raw instruction.
    pub fn raw(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn emit_with_fixup(&mut self, i: Instr, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.into()));
        self.instrs.push(i);
        self
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if the program is empty, a label is duplicated,
    /// or a referenced label is undefined.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if self.instrs.is_empty() {
            return Err(AsmError::EmptyProgram);
        }
        let mut instrs = self.instrs.clone();
        for (idx, label) in &self.fixups {
            if *idx == usize::MAX {
                return Err(AsmError::DuplicateLabel(label.clone()));
            }
            let target_idx = *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            let target = self.base + target_idx as Addr * INSTR_BYTES;
            match &mut instrs[*idx] {
                Instr::Branch { target: t, .. } | Instr::Jal { target: t, .. } => *t = target,
                Instr::LoadImm { imm, .. } => *imm = target as i64,
                other => unreachable!("fixup on non-branch instruction {other}"),
            }
        }
        let entry = match &self.entry_label {
            Some(l) => {
                let idx = *self
                    .labels
                    .get(l)
                    .ok_or_else(|| AsmError::UndefinedLabel(l.clone()))?;
                self.base + idx as Addr * INSTR_BYTES
            }
            None => self.base,
        };
        Ok(Program::with_entry(self.base, entry, instrs))
    }
}

macro_rules! alu_rr {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                    self.raw(Instr::Alu { op: AluOp::$op, rd, rs1, rs2 })
                }
            )*
        }
    };
}

alu_rr! {
    /// `rd = rs1 + rs2`
    add => Add,
    /// `rd = rs1 - rs2`
    sub => Sub,
    /// `rd = rs1 & rs2`
    and_ => And,
    /// `rd = rs1 | rs2`
    or_ => Or,
    /// `rd = rs1 ^ rs2`
    xor => Xor,
    /// `rd = rs1 << rs2`
    sll => Sll,
    /// `rd = rs1 >> rs2` (logical)
    srl => Srl,
    /// `rd = rs1 >> rs2` (arithmetic)
    sra => Sra,
    /// `rd = (rs1 <s rs2) as u64`
    slt => Slt,
    /// `rd = (rs1 <u rs2) as u64`
    sltu => Sltu,
    /// `rd = rs1 * rs2`
    mul => Mul,
    /// `rd = rs1 / rs2` (signed)
    div => Div,
    /// `rd = rs1 % rs2` (signed)
    rem => Rem,
}

macro_rules! alu_ri {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
                    self.raw(Instr::AluImm { op: AluOp::$op, rd, rs1, imm })
                }
            )*
        }
    };
}

alu_ri! {
    /// `rd = rs1 + imm`
    addi => Add,
    /// `rd = rs1 & imm`
    andi => And,
    /// `rd = rs1 | imm`
    ori => Or,
    /// `rd = rs1 ^ imm`
    xori => Xor,
    /// `rd = rs1 << imm`
    slli => Sll,
    /// `rd = rs1 >> imm` (logical)
    srli => Srl,
    /// `rd = rs1 >> imm` (arithmetic)
    srai => Sra,
    /// `rd = (rs1 <s imm) as u64`
    slti => Slt,
    /// `rd = rs1 * imm`
    muli => Mul,
    /// `rd = rs1 / imm` (signed)
    divi => Div,
    /// `rd = rs1 % imm` (signed)
    remi => Rem,
}

macro_rules! loads {
    ($($(#[$doc:meta])* $name:ident => ($w:ident, $s:expr)),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, offset: i64, base: Reg) -> &mut Self {
                    self.raw(Instr::Load { rd, base, offset, width: MemWidth::$w, signed: $s })
                }
            )*
        }
    };
}

loads! {
    /// Load signed byte.
    lb => (B, true),
    /// Load unsigned byte.
    lbu => (B, false),
    /// Load signed half-word.
    lh => (H, true),
    /// Load unsigned half-word.
    lhu => (H, false),
    /// Load signed word.
    lw => (W, true),
    /// Load unsigned word.
    lwu => (W, false),
    /// Load double-word.
    ld => (D, true),
}

macro_rules! stores {
    ($($(#[$doc:meta])* $name:ident => $w:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, src: Reg, offset: i64, base: Reg) -> &mut Self {
                    self.raw(Instr::Store { src, base, offset, width: MemWidth::$w })
                }
            )*
        }
    };
}

stores! {
    /// Store byte.
    sb => B,
    /// Store half-word.
    sh => H,
    /// Store word.
    sw => W,
    /// Store double-word.
    sd => D,
}

macro_rules! fp_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
                    self.raw(Instr::FpAlu { op: FpOp::$op, fd, fs1, fs2 })
                }
            )*
        }
    };
}

fp_ops! {
    /// `fd = fs1 + fs2`
    fadd => Add,
    /// `fd = fs1 - fs2`
    fsub => Sub,
    /// `fd = fs1 * fs2`
    fmul => Mul,
    /// `fd = fs1 / fs2`
    fdiv => Div,
    /// `fd = min(fs1, fs2)`
    fmin => Min,
    /// `fd = max(fs1, fs2)`
    fmax => Max,
}

macro_rules! branches {
    ($($(#[$doc:meta])* $name:ident => $c:ident),* $(,)?) => {
        impl Asm {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
                    self.emit_with_fixup(
                        Instr::Branch { cond: BranchCond::$c, rs1, rs2, target: 0 },
                        label,
                    )
                }
            )*
        }
    };
}

branches! {
    /// Branch if equal.
    beq => Eq,
    /// Branch if not equal.
    bne => Ne,
    /// Branch if signed less-than.
    blt => Lt,
    /// Branch if signed greater-or-equal.
    bge => Ge,
    /// Branch if unsigned less-than.
    bltu => Ltu,
    /// Branch if unsigned greater-or-equal.
    bgeu => Geu,
}

impl Asm {
    /// Load a 64-bit immediate.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.raw(Instr::LoadImm { rd, imm })
    }

    /// Load the *address* of a label (materialized once assembled).
    pub fn la(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.emit_with_fixup(Instr::LoadImm { rd, imm: 0 }, label)
    }

    /// Register move (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// FP load (double).
    pub fn fld(&mut self, fd: FReg, offset: i64, base: Reg) -> &mut Self {
        self.raw(Instr::FpLoad { fd, base, offset })
    }

    /// FP store (double).
    pub fn fsd(&mut self, fs: FReg, offset: i64, base: Reg) -> &mut Self {
        self.raw(Instr::FpStore { fs, base, offset })
    }

    /// FP compare equal into integer register.
    pub fn feq(&mut self, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.raw(Instr::FpCmp {
            op: FpCmpOp::Eq,
            rd,
            fs1,
            fs2,
        })
    }

    /// FP compare less-than into integer register.
    pub fn flt(&mut self, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.raw(Instr::FpCmp {
            op: FpCmpOp::Lt,
            rd,
            fs1,
            fs2,
        })
    }

    /// FP compare less-or-equal into integer register.
    pub fn fle(&mut self, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.raw(Instr::FpCmp {
            op: FpCmpOp::Le,
            rd,
            fs1,
            fs2,
        })
    }

    /// Convert signed integer to double.
    pub fn fcvt_d_l(&mut self, fd: FReg, rs: Reg) -> &mut Self {
        self.raw(Instr::IntToFp { fd, rs })
    }

    /// Convert double to signed integer (truncating).
    pub fn fcvt_l_d(&mut self, rd: Reg, fs: FReg) -> &mut Self {
        self.raw(Instr::FpToInt { rd, fs })
    }

    /// Branch if `rs` is zero.
    pub fn beqz(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.beq(rs, Reg::ZERO, label)
    }

    /// Branch if `rs` is non-zero.
    pub fn bnez(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.bne(rs, Reg::ZERO, label)
    }

    /// Branch if `rs1 <= rs2` (signed); encoded as `bge rs2, rs1`.
    pub fn ble(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.bge(rs2, rs1, label)
    }

    /// Branch if `rs1 > rs2` (signed); encoded as `blt rs2, rs1`.
    pub fn bgt(&mut self, rs1: Reg, rs2: Reg, label: impl Into<String>) -> &mut Self {
        self.blt(rs2, rs1, label)
    }

    /// Unconditional direct jump.
    pub fn j(&mut self, label: impl Into<String>) -> &mut Self {
        self.emit_with_fixup(
            Instr::Jal {
                rd: Reg::ZERO,
                target: 0,
            },
            label,
        )
    }

    /// Direct jump-and-link with an explicit link register.
    pub fn jal(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.emit_with_fixup(Instr::Jal { rd, target: 0 }, label)
    }

    /// Call a label, linking in `x1`.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.jal(Reg::RA, label)
    }

    /// Return through `x1`.
    pub fn ret(&mut self) -> &mut Self {
        self.raw(Instr::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            offset: 0,
        })
    }

    /// Indirect jump through a register.
    pub fn jr(&mut self, base: Reg) -> &mut Self {
        self.raw(Instr::Jalr {
            rd: Reg::ZERO,
            base,
            offset: 0,
        })
    }

    /// Indirect jump-and-link.
    pub fn jalr(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.raw(Instr::Jalr { rd, base, offset })
    }

    /// No operation.
    pub fn nop(&mut self) -> &mut Self {
        self.raw(Instr::Nop)
    }

    /// Halt the program.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Instr::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let r = Reg::new(5);
        let mut a = Asm::new();
        a.li(r, 3);
        a.label("top");
        a.addi(r, r, -1);
        a.bnez(r, "top");
        a.j("done");
        a.nop();
        a.label("done");
        a.halt();
        let p = a.assemble().unwrap();
        // bnez at index 2 targets index 1.
        let b = p.instr_at(p.base() + 8).unwrap();
        assert_eq!(b.direct_target(), Some(p.base() + 4));
        // j at index 3 targets index 5.
        let j = p.instr_at(p.base() + 12).unwrap();
        assert_eq!(j.direct_target(), Some(p.base() + 20));
    }

    #[test]
    fn la_materializes_label_address() {
        let mut a = Asm::new();
        a.la(Reg::new(1), "data");
        a.halt();
        a.label("data");
        a.nop();
        let p = a.assemble().unwrap();
        match p.instr_at(p.base()).unwrap() {
            Instr::LoadImm { imm, .. } => assert_eq!(*imm, (p.base() + 8) as i64),
            other => panic!("expected li, got {other}"),
        }
    }

    #[test]
    fn undefined_label_is_reported() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_reported() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn empty_program_is_reported() {
        assert_eq!(Asm::new().assemble(), Err(AsmError::EmptyProgram));
    }

    #[test]
    fn entry_label() {
        let mut a = Asm::new();
        a.nop();
        a.label("start");
        a.halt();
        a.entry("start");
        let p = a.assemble().unwrap();
        assert_eq!(p.entry(), p.base() + 4);
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::with_base(0x2000);
        assert_eq!(a.here(), 0x2000);
        a.nop().nop();
        assert_eq!(a.here(), 0x2008);
    }

    #[test]
    fn call_and_ret_shapes() {
        let mut a = Asm::new();
        a.call("f");
        a.halt();
        a.label("f");
        a.ret();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.instr_at(p.base()).unwrap().branch_kind(),
            Some(crate::instr::BranchKind::DirectCall)
        );
        assert_eq!(
            p.instr_at(p.base() + 8).unwrap().branch_kind(),
            Some(crate::instr::BranchKind::Return)
        );
    }

    #[test]
    fn pseudo_branch_operand_swap() {
        let mut a = Asm::new();
        a.label("t");
        a.ble(Reg::new(1), Reg::new(2), "t");
        a.bgt(Reg::new(1), Reg::new(2), "t");
        let p = a.assemble().unwrap();
        match p.instr_at(p.base()).unwrap() {
            Instr::Branch {
                cond: BranchCond::Ge,
                rs1,
                rs2,
                ..
            } => {
                assert_eq!((rs1.index(), rs2.index()), (2, 1));
            }
            other => panic!("unexpected {other}"),
        }
        match p.instr_at(p.base() + 4).unwrap() {
            Instr::Branch {
                cond: BranchCond::Lt,
                rs1,
                rs2,
                ..
            } => {
                assert_eq!((rs1.index(), rs2.index()), (2, 1));
            }
            other => panic!("unexpected {other}"),
        }
    }
}
