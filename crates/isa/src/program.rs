//! Assembled programs: a contiguous code image plus entry point.

use crate::instr::{Addr, Instr, INSTR_BYTES};
use std::fmt;

/// Default base address for program text.
pub const DEFAULT_TEXT_BASE: Addr = 0x1_0000;

/// An assembled program: instructions laid out contiguously from a base
/// address, executed starting at [`Program::entry`].
///
/// The program counter is a byte address; instruction `i` lives at
/// `base + 4 * i`. Addresses outside the text image decode as invalid,
/// which a wrong-path fetch treats as a reconstruction/emulation stop.
///
/// # Examples
///
/// ```
/// use ffsim_isa::{Asm, Reg};
/// let mut asm = Asm::new();
/// asm.li(Reg::new(1), 42);
/// asm.halt();
/// let prog = asm.assemble()?;
/// assert_eq!(prog.len(), 2);
/// assert!(prog.instr_at(prog.entry()).is_some());
/// # Ok::<(), ffsim_isa::AsmError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    base: Addr,
    entry: Addr,
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program from raw instructions at a base address, entering
    /// at the first instruction.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned or `instrs` is empty.
    #[must_use]
    pub fn new(base: Addr, instrs: Vec<Instr>) -> Program {
        assert_eq!(base % INSTR_BYTES, 0, "text base must be 4-byte aligned");
        assert!(!instrs.is_empty(), "program must contain instructions");
        Program {
            base,
            entry: base,
            instrs,
        }
    }

    /// Creates a program with an explicit entry point.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Program::new`], or if `entry`
    /// does not address an instruction in the image.
    #[must_use]
    pub fn with_entry(base: Addr, entry: Addr, instrs: Vec<Instr>) -> Program {
        let mut p = Program::new(base, instrs);
        assert!(
            p.instr_at(entry).is_some(),
            "entry point {entry:#x} outside program text"
        );
        p.entry = entry;
        p
    }

    /// The address of the first instruction.
    #[must_use]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The entry-point address.
    #[must_use]
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Number of instructions in the image.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for a constructed program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// One-past-the-end address of the text image.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.base + self.instrs.len() as Addr * INSTR_BYTES
    }

    /// The instruction at byte address `pc`, or `None` if `pc` is unaligned
    /// or outside the image.
    #[must_use]
    pub fn instr_at(&self, pc: Addr) -> Option<&Instr> {
        if pc < self.base || !pc.is_multiple_of(INSTR_BYTES) {
            return None;
        }
        self.instrs.get(((pc - self.base) / INSTR_BYTES) as usize)
    }

    /// Whether `pc` addresses an instruction in the image.
    #[must_use]
    pub fn contains(&self, pc: Addr) -> bool {
        self.instr_at(pc).is_some()
    }

    /// Iterates over `(address, instruction)` pairs in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &Instr)> {
        self.instrs
            .iter()
            .enumerate()
            .map(move |(i, ins)| (self.base + i as Addr * INSTR_BYTES, ins))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (addr, ins) in self.iter() {
            let marker = if addr == self.entry { ">" } else { " " };
            writeln!(f, "{marker}{addr:#8x}: {ins}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn sample() -> Program {
        Program::new(0x1000, vec![Instr::Nop, Instr::Nop, Instr::Halt])
    }

    #[test]
    fn addressing_roundtrip() {
        let p = sample();
        assert_eq!(p.base(), 0x1000);
        assert_eq!(p.entry(), 0x1000);
        assert_eq!(p.len(), 3);
        assert_eq!(p.end(), 0x100c);
        assert_eq!(p.instr_at(0x1008), Some(&Instr::Halt));
        assert!(p.instr_at(0x100c).is_none());
        assert!(p.instr_at(0xffc).is_none());
        assert!(p.instr_at(0x1002).is_none(), "unaligned pc must not decode");
    }

    #[test]
    fn iter_yields_addresses_in_order() {
        let p = sample();
        let addrs: Vec<_> = p.iter().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x1000, 0x1004, 0x1008]);
    }

    #[test]
    fn explicit_entry() {
        let p = Program::with_entry(0x1000, 0x1004, vec![Instr::Nop, Instr::Halt]);
        assert_eq!(p.entry(), 0x1004);
    }

    #[test]
    #[should_panic(expected = "outside program text")]
    fn bad_entry_panics() {
        let _ = Program::with_entry(0x1000, 0x2000, vec![Instr::Nop]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_base_panics() {
        let _ = Program::new(0x1001, vec![Instr::Nop]);
    }

    #[test]
    fn display_marks_entry() {
        let p = sample();
        let text = p.to_string();
        assert!(text.contains("halt"));
        assert!(text.lines().next().unwrap().starts_with('>'));
    }
}
