//! Instruction definitions, operand extraction and disassembly.
//!
//! The ISA is a compact 64-bit RISC: integer ALU/multiply/divide, IEEE-754
//! double-precision floating point, sized loads and stores, conditional
//! branches, and direct/indirect jumps with an optional link register. It is
//! deliberately small — a functional-first performance simulator only needs
//! the dynamic stream of *instruction effects* (see the paper, §II) — but it
//! is complete enough to express real kernels (graph analytics, sorting,
//! hashing, streaming FP) with realistic control flow and memory behaviour.

use crate::reg::{ArchReg, FReg, Reg};
use std::fmt;

/// A byte address in the simulated machine (code or data).
pub type Addr = u64;

/// Size of one encoded instruction in bytes.
///
/// All instructions occupy one 4-byte slot; the program counter advances by
/// `INSTR_BYTES` per sequential instruction.
pub const INSTR_BYTES: u64 = 4;

/// Integer ALU operations (register-register and register-immediate forms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-less-than, signed: `rd = (rs1 < rs2) as u64`.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
    /// Wrapping multiplication (low 64 bits).
    Mul,
    /// Signed division (division by zero yields all-ones, as on RISC-V).
    Div,
    /// Signed remainder (remainder of division by zero yields the dividend).
    Rem,
}

impl AluOp {
    /// The execution class this operation occupies in the timing model.
    #[must_use]
    pub fn exec_class(self) -> ExecClass {
        match self {
            AluOp::Mul => ExecClass::IntMul,
            AluOp::Div | AluOp::Rem => ExecClass::IntDiv,
            _ => ExecClass::IntAlu,
        }
    }
}

/// Floating-point ALU operations (double precision).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum (propagates the non-NaN operand).
    Min,
    /// Maximum (propagates the non-NaN operand).
    Max,
}

impl FpOp {
    /// The execution class this operation occupies in the timing model.
    #[must_use]
    pub fn exec_class(self) -> ExecClass {
        match self {
            FpOp::Add | FpOp::Sub | FpOp::Min | FpOp::Max => ExecClass::FpAdd,
            FpOp::Mul => ExecClass::FpMul,
            FpOp::Div => ExecClass::FpDiv,
        }
    }
}

/// Floating-point comparison operations, producing 0/1 in an integer register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpCmpOp {
    /// Equal.
    Eq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
}

/// Conditions for conditional branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Memory access widths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// The access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Coarse µop classes used by the timing model to pick functional units,
/// latencies and queue resources.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExecClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder (unpipelined).
    IntDiv,
    /// FP add/sub/min/max/compare/convert.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide (unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Any control-flow instruction (conditional or unconditional).
    Branch,
}

/// Classification of control-flow instructions, used by the branch
/// predictor (BTB vs. indirect predictor vs. return-address stack).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// Conditional direct branch (taken / not-taken).
    Conditional,
    /// Unconditional direct jump (`jal x0`).
    DirectJump,
    /// Unconditional direct call (`jal` with a link register).
    DirectCall,
    /// Indirect jump through a register (`jalr x0`, not a return).
    Indirect,
    /// Indirect call (`jalr` with a link register).
    IndirectCall,
    /// Function return (`jalr x0, x1, 0` by convention).
    Return,
}

/// The static source/destination operands of an instruction.
///
/// At most two register sources and one register destination exist in this
/// ISA. The hard-wired zero register is never reported, because it carries
/// no dependence.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Operands {
    /// Source registers (dependences), in operand order.
    pub srcs: [Option<ArchReg>; 2],
    /// Destination register, if the instruction writes one.
    pub dst: Option<ArchReg>,
}

impl Operands {
    fn new(srcs: &[ArchReg], dst: Option<ArchReg>) -> Operands {
        let mut out = Operands::default();
        let mut n = 0;
        for &s in srcs {
            // x0 is not a dependence; writes to it are discarded.
            if s.as_int().is_some_and(Reg::is_zero) {
                continue;
            }
            out.srcs[n] = Some(s);
            n += 1;
        }
        out.dst = dst.filter(|d| !d.as_int().is_some_and(Reg::is_zero));
        out
    }

    /// Iterates over the (non-zero) source registers.
    pub fn src_iter(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

/// One machine instruction.
///
/// Branch and jump targets are stored as resolved absolute addresses — the
/// assembler ([`crate::Asm`]) patches label references during
/// [`crate::Asm::assemble`].
///
/// # Examples
///
/// ```
/// use ffsim_isa::{Instr, AluOp, Reg, ExecClass};
/// let i = Instr::Alu { op: AluOp::Add, rd: Reg::new(3), rs1: Reg::new(1), rs2: Reg::new(2) };
/// assert_eq!(i.exec_class(), ExecClass::IntAlu);
/// assert_eq!(i.to_string(), "add x3, x1, x2");
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Instr {
    /// Register-register integer ALU operation: `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate integer ALU operation: `rd = rs1 op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i64,
    },
    /// Load a 64-bit immediate: `rd = imm`.
    LoadImm {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Memory load: `rd = mem[rs(base) + offset]`.
    Load {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
        /// Sign-extend sub-64-bit loads when true, zero-extend when false.
        signed: bool,
    },
    /// Memory store: `mem[rs(base) + offset] = src`.
    Store {
        /// Value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width (stores the low `width` bytes).
        width: MemWidth,
    },
    /// Floating-point ALU operation: `fd = fs1 op fs2`.
    FpAlu {
        /// Operation.
        op: FpOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
    },
    /// Floating-point load (double): `fd = mem[base + offset]`.
    FpLoad {
        /// Destination.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Floating-point store (double): `mem[base + offset] = fs`.
    FpStore {
        /// Value to store.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Floating-point comparison into an integer register: `rd = fs1 cmp fs2`.
    FpCmp {
        /// Comparison.
        op: FpCmpOp,
        /// Destination (integer).
        rd: Reg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
    },
    /// Convert a signed integer to double: `fd = rs as f64`.
    IntToFp {
        /// Destination.
        fd: FReg,
        /// Source (integer).
        rs: Reg,
    },
    /// Convert a double to a signed integer (truncating): `rd = fs as i64`.
    FpToInt {
        /// Destination (integer).
        rd: Reg,
        /// Source.
        fs: FReg,
    },
    /// Conditional branch to an absolute target.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First comparison operand.
        rs1: Reg,
        /// Second comparison operand.
        rs2: Reg,
        /// Absolute target address when taken.
        target: Addr,
    },
    /// Direct jump-and-link: `rd = pc + 4; pc = target`.
    Jal {
        /// Link register (`x0` for a plain jump).
        rd: Reg,
        /// Absolute target address.
        target: Addr,
    },
    /// Indirect jump-and-link: `rd = pc + 4; pc = (base + offset) & !3`.
    Jalr {
        /// Link register (`x0` for a plain indirect jump).
        rd: Reg,
        /// Register holding the target address.
        base: Reg,
        /// Byte offset added to the register value.
        offset: i64,
    },
    /// No operation.
    Nop,
    /// Stop the program; the functional simulator ends the stream here.
    Halt,
}

impl Instr {
    /// The µop execution class, used by the timing model.
    #[must_use]
    pub fn exec_class(&self) -> ExecClass {
        match self {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => op.exec_class(),
            Instr::LoadImm { .. } | Instr::Nop | Instr::Halt => ExecClass::IntAlu,
            Instr::Load { .. } | Instr::FpLoad { .. } => ExecClass::Load,
            Instr::Store { .. } | Instr::FpStore { .. } => ExecClass::Store,
            Instr::FpAlu { op, .. } => op.exec_class(),
            Instr::FpCmp { .. } | Instr::IntToFp { .. } | Instr::FpToInt { .. } => ExecClass::FpAdd,
            Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } => ExecClass::Branch,
        }
    }

    /// Classifies control-flow instructions; `None` for non-branches.
    ///
    /// By convention `jalr x0, x1, 0` is a [`BranchKind::Return`]; `jal`/`jalr`
    /// with a non-zero link register are calls.
    #[must_use]
    pub fn branch_kind(&self) -> Option<BranchKind> {
        match *self {
            Instr::Branch { .. } => Some(BranchKind::Conditional),
            Instr::Jal { rd, .. } => Some(if rd.is_zero() {
                BranchKind::DirectJump
            } else {
                BranchKind::DirectCall
            }),
            Instr::Jalr { rd, base, offset } => Some(if !rd.is_zero() {
                BranchKind::IndirectCall
            } else if base == Reg::RA && offset == 0 {
                BranchKind::Return
            } else {
                BranchKind::Indirect
            }),
            _ => None,
        }
    }

    /// Whether this is any control-flow instruction.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.branch_kind().is_some()
    }

    /// Whether this instruction reads or writes memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::FpLoad { .. } | Instr::FpStore { .. }
        )
    }

    /// Whether this instruction writes memory.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::FpStore { .. })
    }

    /// Whether this instruction reads memory.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::FpLoad { .. })
    }

    /// The static register operands (sources and destination).
    ///
    /// This is exactly the decode information the paper's *code cache*
    /// stores: "instruction address, instruction type, input and output
    /// registers" (§III-A). The zero register is filtered out.
    #[must_use]
    pub fn operands(&self) -> Operands {
        use ArchReg as A;
        match *self {
            Instr::Alu { rd, rs1, rs2, .. } => {
                Operands::new(&[A::from(rs1), A::from(rs2)], Some(A::from(rd)))
            }
            Instr::AluImm { rd, rs1, .. } => Operands::new(&[A::from(rs1)], Some(A::from(rd))),
            Instr::LoadImm { rd, .. } => Operands::new(&[], Some(A::from(rd))),
            Instr::Load { rd, base, .. } => Operands::new(&[A::from(base)], Some(A::from(rd))),
            Instr::Store { src, base, .. } => Operands::new(&[A::from(src), A::from(base)], None),
            Instr::FpAlu { fd, fs1, fs2, .. } => {
                Operands::new(&[A::from(fs1), A::from(fs2)], Some(A::from(fd)))
            }
            Instr::FpLoad { fd, base, .. } => Operands::new(&[A::from(base)], Some(A::from(fd))),
            Instr::FpStore { fs, base, .. } => Operands::new(&[A::from(fs), A::from(base)], None),
            Instr::FpCmp { rd, fs1, fs2, .. } => {
                Operands::new(&[A::from(fs1), A::from(fs2)], Some(A::from(rd)))
            }
            Instr::IntToFp { fd, rs } => Operands::new(&[A::from(rs)], Some(A::from(fd))),
            Instr::FpToInt { rd, fs } => Operands::new(&[A::from(fs)], Some(A::from(rd))),
            Instr::Branch { rs1, rs2, .. } => Operands::new(&[A::from(rs1), A::from(rs2)], None),
            Instr::Jal { rd, .. } => Operands::new(&[], Some(A::from(rd))),
            Instr::Jalr { rd, base, .. } => Operands::new(&[A::from(base)], Some(A::from(rd))),
            Instr::Nop | Instr::Halt => Operands::default(),
        }
    }

    /// The direct branch/jump target, if statically known.
    #[must_use]
    pub fn direct_target(&self) -> Option<Addr> {
        match *self {
            Instr::Branch { target, .. } | Instr::Jal { target, .. } => Some(target),
            _ => None,
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op))
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(op))
            }
            Instr::LoadImm { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Load {
                rd,
                base,
                offset,
                width,
                signed,
            } => {
                let w = match (width, signed) {
                    (MemWidth::B, true) => "lb",
                    (MemWidth::B, false) => "lbu",
                    (MemWidth::H, true) => "lh",
                    (MemWidth::H, false) => "lhu",
                    (MemWidth::W, true) => "lw",
                    (MemWidth::W, false) => "lwu",
                    (MemWidth::D, _) => "ld",
                };
                write!(f, "{w} {rd}, {offset}({base})")
            }
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => {
                let w = match width {
                    MemWidth::B => "sb",
                    MemWidth::H => "sh",
                    MemWidth::W => "sw",
                    MemWidth::D => "sd",
                };
                write!(f, "{w} {src}, {offset}({base})")
            }
            Instr::FpAlu { op, fd, fs1, fs2 } => {
                let n = match op {
                    FpOp::Add => "fadd",
                    FpOp::Sub => "fsub",
                    FpOp::Mul => "fmul",
                    FpOp::Div => "fdiv",
                    FpOp::Min => "fmin",
                    FpOp::Max => "fmax",
                };
                write!(f, "{n} {fd}, {fs1}, {fs2}")
            }
            Instr::FpLoad { fd, base, offset } => write!(f, "fld {fd}, {offset}({base})"),
            Instr::FpStore { fs, base, offset } => write!(f, "fsd {fs}, {offset}({base})"),
            Instr::FpCmp { op, rd, fs1, fs2 } => {
                let n = match op {
                    FpCmpOp::Eq => "feq",
                    FpCmpOp::Lt => "flt",
                    FpCmpOp::Le => "fle",
                };
                write!(f, "{n} {rd}, {fs1}, {fs2}")
            }
            Instr::IntToFp { fd, rs } => write!(f, "fcvt.d.l {fd}, {rs}"),
            Instr::FpToInt { rd, fs } => write!(f, "fcvt.l.d {rd}, {fs}"),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let n = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{n} {rs1}, {rs2}, {target:#x}")
            }
            Instr::Jal { rd, target } => write!(f, "jal {rd}, {target:#x}"),
            Instr::Jalr { rd, base, offset } => write!(f, "jalr {rd}, {offset}({base})"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_class_mapping() {
        let add = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        };
        assert_eq!(add.exec_class(), ExecClass::IntAlu);
        let div = Instr::AluImm {
            op: AluOp::Div,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            imm: 3,
        };
        assert_eq!(div.exec_class(), ExecClass::IntDiv);
        let fdiv = Instr::FpAlu {
            op: FpOp::Div,
            fd: FReg::new(0),
            fs1: FReg::new(1),
            fs2: FReg::new(2),
        };
        assert_eq!(fdiv.exec_class(), ExecClass::FpDiv);
        let ld = Instr::Load {
            rd: Reg::new(1),
            base: Reg::new(2),
            offset: 0,
            width: MemWidth::D,
            signed: true,
        };
        assert_eq!(ld.exec_class(), ExecClass::Load);
        assert!(ld.is_load() && ld.is_mem() && !ld.is_store());
    }

    #[test]
    fn branch_kind_classification() {
        let b = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target: 0x100,
        };
        assert_eq!(b.branch_kind(), Some(BranchKind::Conditional));
        assert_eq!(
            Instr::Jal {
                rd: Reg::ZERO,
                target: 0x40
            }
            .branch_kind(),
            Some(BranchKind::DirectJump)
        );
        assert_eq!(
            Instr::Jal {
                rd: Reg::RA,
                target: 0x40
            }
            .branch_kind(),
            Some(BranchKind::DirectCall)
        );
        assert_eq!(
            Instr::Jalr {
                rd: Reg::ZERO,
                base: Reg::RA,
                offset: 0
            }
            .branch_kind(),
            Some(BranchKind::Return)
        );
        assert_eq!(
            Instr::Jalr {
                rd: Reg::ZERO,
                base: Reg::new(5),
                offset: 0
            }
            .branch_kind(),
            Some(BranchKind::Indirect)
        );
        assert_eq!(
            Instr::Jalr {
                rd: Reg::RA,
                base: Reg::new(5),
                offset: 0
            }
            .branch_kind(),
            Some(BranchKind::IndirectCall)
        );
        assert_eq!(Instr::Nop.branch_kind(), None);
    }

    #[test]
    fn operands_filter_zero_register() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::new(3),
        };
        let ops = i.operands();
        assert_eq!(ops.dst, None);
        assert_eq!(ops.src_iter().count(), 1);
        assert_eq!(ops.srcs[0], Some(ArchReg::from(Reg::new(3))));
    }

    #[test]
    fn operands_store_has_two_sources_no_dst() {
        let s = Instr::Store {
            src: Reg::new(4),
            base: Reg::new(5),
            offset: 8,
            width: MemWidth::W,
        };
        let ops = s.operands();
        assert_eq!(ops.dst, None);
        let srcs: Vec<_> = ops.src_iter().collect();
        assert_eq!(
            srcs,
            vec![ArchReg::from(Reg::new(4)), ArchReg::from(Reg::new(5))]
        );
    }

    #[test]
    fn operands_fp_cross_file() {
        let c = Instr::FpCmp {
            op: FpCmpOp::Lt,
            rd: Reg::new(7),
            fs1: FReg::new(1),
            fs2: FReg::new(2),
        };
        let ops = c.operands();
        assert_eq!(ops.dst, Some(ArchReg::from(Reg::new(7))));
        assert!(ops.src_iter().all(|r| r.as_fp().is_some()));
    }

    #[test]
    fn disassembly_smoke() {
        let cases: Vec<(Instr, &str)> = vec![
            (
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::new(1),
                    rs1: Reg::new(2),
                    imm: -4,
                },
                "addi x1, x2, -4",
            ),
            (
                Instr::Load {
                    rd: Reg::new(3),
                    base: Reg::new(4),
                    offset: 16,
                    width: MemWidth::W,
                    signed: false,
                },
                "lwu x3, 16(x4)",
            ),
            (
                Instr::Branch {
                    cond: BranchCond::Ne,
                    rs1: Reg::new(1),
                    rs2: Reg::ZERO,
                    target: 0x1000,
                },
                "bne x1, x0, 0x1000",
            ),
            (Instr::Halt, "halt"),
        ];
        for (i, s) in cases {
            assert_eq!(i.to_string(), s);
        }
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::H.bytes(), 2);
        assert_eq!(MemWidth::W.bytes(), 4);
        assert_eq!(MemWidth::D.bytes(), 8);
    }

    #[test]
    fn direct_target() {
        let j = Instr::Jal {
            rd: Reg::ZERO,
            target: 0x2000,
        };
        assert_eq!(j.direct_target(), Some(0x2000));
        assert_eq!(Instr::Nop.direct_target(), None);
        let jr = Instr::Jalr {
            rd: Reg::ZERO,
            base: Reg::new(3),
            offset: 0,
        };
        assert_eq!(jr.direct_target(), None);
    }
}
