//! Property-based tests for the ISA crate: instruction invariants, register
//! set semantics, and assembler label resolution.

use ffsim_isa::{
    Addr, AluOp, ArchReg, Asm, BranchCond, ExecClass, FReg, FpOp, Instr, MemWidth, Program, Reg,
    RegSet, INSTR_BYTES, NUM_ARCH_REGS,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..16).prop_map(FReg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
    ]
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::D)
    ]
}

/// Any instruction except control flow (branch targets need label context).
fn arb_straightline_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<i32>()).prop_map(|(op, rd, rs1, imm)| {
            Instr::AluImm {
                op,
                rd,
                rs1,
                imm: imm as i64,
            }
        }),
        (arb_reg(), any::<i64>()).prop_map(|(rd, imm)| Instr::LoadImm { rd, imm }),
        (
            arb_reg(),
            arb_reg(),
            any::<i16>(),
            arb_width(),
            any::<bool>()
        )
            .prop_map(|(rd, base, offset, width, signed)| Instr::Load {
                rd,
                base,
                offset: offset as i64,
                width,
                signed,
            }),
        (arb_reg(), arb_reg(), any::<i16>(), arb_width()).prop_map(|(src, base, offset, width)| {
            Instr::Store {
                src,
                base,
                offset: offset as i64,
                width,
            }
        }),
        (arb_freg(), arb_freg(), arb_freg()).prop_map(|(fd, fs1, fs2)| Instr::FpAlu {
            op: FpOp::Add,
            fd,
            fs1,
            fs2,
        }),
        (arb_freg(), arb_reg(), any::<i16>()).prop_map(|(fd, base, offset)| Instr::FpLoad {
            fd,
            base,
            offset: offset as i64,
        }),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// The zero register never appears as a source or destination operand.
    #[test]
    fn operands_never_contain_x0(i in arb_straightline_instr()) {
        let zero = ArchReg::from(Reg::ZERO);
        let ops = i.operands();
        prop_assert!(ops.src_iter().all(|r| r != zero));
        prop_assert!(ops.dst != Some(zero));
    }

    /// Every instruction has at most 2 sources and 1 destination, and all
    /// operand flat indices are in range.
    #[test]
    fn operand_arity_and_range(i in arb_straightline_instr()) {
        let ops = i.operands();
        prop_assert!(ops.src_iter().count() <= 2);
        for r in ops.src_iter().chain(ops.dst) {
            prop_assert!(r.flat_index() < NUM_ARCH_REGS);
        }
    }

    /// Disassembly is never empty and is stable (same instruction, same text).
    #[test]
    fn disassembly_nonempty_and_deterministic(i in arb_straightline_instr()) {
        let a = i.to_string();
        let b = i.to_string();
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, b);
    }

    /// Memory instructions are exactly the ones reporting `is_mem`, and
    /// loads/stores partition them.
    #[test]
    fn mem_classification_consistent(i in arb_straightline_instr()) {
        prop_assert_eq!(i.is_mem(), i.is_load() || i.is_store());
        prop_assert!(!(i.is_load() && i.is_store()));
        if i.is_load() {
            prop_assert_eq!(i.exec_class(), ExecClass::Load);
        }
        if i.is_store() {
            prop_assert_eq!(i.exec_class(), ExecClass::Store);
        }
    }

    /// `RegSet` behaves like a reference `HashSet` under a random
    /// insert/remove script.
    #[test]
    fn regset_matches_hashset(script in proptest::collection::vec((0u8..48, any::<bool>()), 0..64)) {
        let mut set = RegSet::new();
        let mut reference: HashSet<u8> = HashSet::new();
        for (idx, insert) in script {
            let r = ArchReg::from_flat(idx);
            if insert {
                set.insert(r);
                reference.insert(idx);
            } else {
                set.remove(r);
                reference.remove(&idx);
            }
        }
        prop_assert_eq!(set.len(), reference.len());
        for idx in 0..48u8 {
            prop_assert_eq!(set.contains(ArchReg::from_flat(idx)), reference.contains(&idx));
        }
        let iterated: Vec<u8> = set.iter().map(|r| r.flat_index() as u8).collect();
        let mut sorted_ref: Vec<u8> = reference.into_iter().collect();
        sorted_ref.sort_unstable();
        prop_assert_eq!(iterated, sorted_ref);
    }

    /// `intersects` agrees with a reference intersection check.
    #[test]
    fn regset_intersects_reference(
        a in proptest::collection::hash_set(0u8..48, 0..16),
        b in proptest::collection::hash_set(0u8..48, 0..16),
    ) {
        let sa: RegSet = a.iter().map(|&i| ArchReg::from_flat(i)).collect();
        let sb: RegSet = b.iter().map(|&i| ArchReg::from_flat(i)).collect();
        prop_assert_eq!(sa.intersects(sb), !a.is_disjoint(&b));
        prop_assert_eq!(sa.union(sb).len(), a.union(&b).count());
    }

    /// A program built from N straight-line instructions plus a random set of
    /// labeled backward/forward jumps assembles, and every jump target lands
    /// on a valid instruction boundary inside the image.
    #[test]
    fn assembler_resolves_all_targets(
        body in proptest::collection::vec(arb_straightline_instr(), 1..40),
        jump_points in proptest::collection::vec((0usize..40, 0usize..40), 0..8),
    ) {
        let mut a = Asm::new();
        // Define a label before every body instruction.
        for (idx, ins) in body.iter().enumerate() {
            a.label(format!("L{idx}"));
            a.raw(*ins);
        }
        a.label(format!("L{}", body.len()));
        for (from, to) in &jump_points {
            let _ = from; // position does not matter; jumps appended at end
            a.j(format!("L{}", to % (body.len() + 1)));
        }
        a.halt();
        let p = a.assemble().unwrap();
        for (_, ins) in p.iter() {
            if let Some(t) = ins.direct_target() {
                prop_assert!(p.contains(t), "target {t:#x} escapes image");
                prop_assert_eq!(t % INSTR_BYTES, 0);
            }
        }
    }

    /// `instr_at` is the inverse of layout order for arbitrary bases.
    #[test]
    fn program_addressing_inverse(
        base_words in 1u64..1_000_000,
        body in proptest::collection::vec(arb_straightline_instr(), 1..64),
    ) {
        let base: Addr = base_words * INSTR_BYTES;
        let p = Program::new(base, body.clone());
        for (i, ins) in body.iter().enumerate() {
            prop_assert_eq!(p.instr_at(base + i as Addr * INSTR_BYTES), Some(ins));
        }
        prop_assert!(p.instr_at(p.end()).is_none());
    }

    /// Branch conditions on identical operands: Eq always taken, Ne never.
    #[test]
    fn branch_cond_smoke(r in arb_reg()) {
        // This is an ISA-level structural test: conditions are distinct.
        let conds = [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt,
                     BranchCond::Ge, BranchCond::Ltu, BranchCond::Geu];
        let instrs: Vec<Instr> = conds
            .iter()
            .map(|&cond| Instr::Branch { cond, rs1: r, rs2: r, target: 0x1000 })
            .collect();
        let unique: HashSet<String> = instrs.iter().map(|i| i.to_string()).collect();
        prop_assert_eq!(unique.len(), conds.len());
    }
}
