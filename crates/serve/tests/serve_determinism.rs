//! Property test for the campaign service's headline invariant: for an
//! identical submit sequence, the drained report is byte-identical to an
//! uninterrupted direct-queue reference — whatever transport fault hits
//! each submit (torn request frame, reply lost before the ack, clean
//! runs), and however many times the client retries. Every submit lands
//! in the journal exactly once.

use ffsim_core::WrongPathMode;
use ffsim_driver::{
    report, CampaignSpec, Enqueued, Job, JobQueue, QueueConfig, RetryPolicy, TelemetryConfig,
    WorkloadFn,
};
use ffsim_emu::Memory;
use ffsim_isa::{Asm, Reg};
use ffsim_serve::{
    CampaignServer, Conn, Connector, FaultyTransport, JobFactory, JobSpec, ServeClient,
    ServeConfig, SubmitOutcome,
};
use ffsim_uarch::CoreConfig;
use proptest::collection::vec;
use proptest::prelude::*;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn workload(trips: i64) -> WorkloadFn {
    Arc::new(move || {
        let i = Reg::new(1);
        let mut a = Asm::new();
        a.li(i, trips);
        a.label("loop");
        a.addi(i, i, -1);
        a.bnez(i, "loop");
        a.halt();
        Ok((a.assemble()?, Memory::new()))
    })
}

fn factory() -> JobFactory {
    Arc::new(|spec: &JobSpec| {
        if spec.workload != "countdown" {
            return Err(format!("unknown workload `{}`", spec.workload));
        }
        Ok(Job::new(
            &spec.id,
            WrongPathMode::WrongPathEmulation,
            workload(spec.arg),
        )
        .with_core(CoreConfig::tiny_for_tests())
        .with_priority(spec.priority))
    })
}

fn qcfg(dir: &Path, workers: usize) -> QueueConfig {
    QueueConfig {
        workers,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        default_timeout: Some(Duration::from_secs(60)),
        compact_every: 5,
        telemetry: TelemetryConfig::default(),
        ..QueueConfig::new(dir)
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// The fixed two-campaign fixture; only the per-job trip counts vary.
fn specs(trips: &[i64]) -> Vec<(&'static str, JobSpec)> {
    let spec = |id: String, trips: i64| JobSpec {
        id,
        mode: "wpemul".into(),
        workload: "countdown".into(),
        arg: trips,
        priority: 0,
    };
    trips
        .iter()
        .enumerate()
        .map(|(index, &t)| {
            let campaign = if index % 2 == 0 { "alpha" } else { "beta" };
            (campaign, spec(format!("{campaign}/j{index}"), t))
        })
        .collect()
}

/// The uninterrupted reference: the same jobs through the queue API
/// directly, no wire, no faults.
fn reference_report(name: &str, trips: &[i64], workers: usize) -> String {
    let dir = tmp_dir(name);
    let queue = JobQueue::open(qcfg(&dir, workers)).expect("queue opens");
    queue.register(&CampaignSpec::new("alpha")).expect("alpha");
    queue.register(&CampaignSpec::new("beta")).expect("beta");
    let build = factory();
    for (campaign, spec) in specs(trips) {
        let job = build(&spec).expect("factory");
        assert_eq!(
            queue.enqueue(campaign, job).expect("enqueue"),
            Enqueued::Accepted
        );
    }
    let outcome = queue.drain().expect("reference drain");
    assert_eq!(outcome.records.len(), trips.len());
    report::render(&outcome.records)
}

/// A transport fault to inject into one submit's *first* connection;
/// every reconnect after it is clean.
#[derive(Clone, Copy, Debug)]
enum Fault {
    /// No fault: the control case.
    None,
    /// Break the pipe after `n` written bytes: the request frame tears
    /// mid-flight and the server never sees the submit.
    CutWrite(u64),
    /// Reset the connection after `n` read bytes: the request was
    /// applied but the ack is lost (n = 0 is disconnect-before-ack).
    CutRead(u64),
}

fn fault_from(kind: u8, offset: u64) -> Fault {
    match kind {
        0 => Fault::None,
        // The submit request frame is 17 header + ~200 payload bytes, so
        // 1..=60 always tears mid-frame.
        1 => Fault::CutWrite(1 + offset % 60),
        // The reply frame header is 17 bytes; 0..17 loses the ack
        // mid-header (or before any byte of it).
        _ => Fault::CutRead(offset % 17),
    }
}

/// A client whose first connection carries `fault`; reconnects are clean.
fn faulty_client(addr: &str, fault: Fault) -> ServeClient {
    let addr = addr.to_string();
    let mut first = true;
    let connector: Connector = Box::new(move || {
        let stream = TcpStream::connect(&addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let arm = std::mem::replace(&mut first, false);
        Ok(match fault {
            Fault::CutWrite(n) if arm => {
                Box::new(FaultyTransport::new(stream).cut_write_after(n)) as Box<dyn Conn>
            }
            Fault::CutRead(n) if arm => {
                Box::new(FaultyTransport::new(stream).cut_read_after(n)) as Box<dyn Conn>
            }
            _ => Box::new(stream) as Box<dyn Conn>,
        })
    });
    ServeClient::new(
        connector,
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
    )
}

/// Runs the wire path: one faulted submit round, one clean duplicate
/// round, graceful shutdown. Returns (final report, committed count).
fn serve_round(name: &str, trips: &[i64], faults: &[Fault], workers: usize) -> (String, usize) {
    let dir = tmp_dir(name);
    let queue = JobQueue::open(qcfg(&dir, workers)).expect("queue opens");
    let server = CampaignServer::new(queue, factory(), ServeConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();

    let outcome = std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(listener));

        let mut control = faulty_client(&addr, Fault::None);
        control.register("alpha", 1, 0, None).expect("register");
        control.register("beta", 1, 0, None).expect("register");

        // Round one: each submit through its own connection with its
        // drawn fault. Whatever happens on the wire, the submit must
        // land exactly once.
        for (index, (campaign, spec)) in specs(trips).into_iter().enumerate() {
            let mut client = faulty_client(&addr, faults[index]);
            let (outcome, _) = client.submit(campaign, spec).expect("faulted submit");
            assert_ne!(outcome, SubmitOutcome::Poisoned);
        }

        // Round two: a full clean duplicate pass — the dedup map (or the
        // journal, for anything already terminal) must absorb every one.
        for (campaign, spec) in specs(trips) {
            let (outcome, _) = control.submit(campaign, spec).expect("duplicate submit");
            assert_ne!(outcome, SubmitOutcome::Poisoned);
        }

        control.shutdown().expect("shutdown");
        running.join().expect("no panic").expect("run")
    });

    let committed = server.queue().stats().committed;
    (outcome.report, committed)
}

proptest! {
    #[test]
    fn faulted_submits_land_exactly_once_with_identical_report(
        trips in vec(10i64..40, 4..5),
        draws in vec((0u8..3, 0u64..60), 4..5),
        workers in 1usize..3,
    ) {
        let faults: Vec<Fault> = draws.iter().map(|&(k, o)| fault_from(k, o)).collect();
        let reference = reference_report("sprop_ref", &trips, workers);
        let (served, committed) = serve_round("sprop_served", &trips, &faults, workers);
        prop_assert_eq!(committed, trips.len(), "exactly-once: {:?}", faults);
        prop_assert_eq!(served, reference, "byte-identity under {:?}", faults);
    }
}

#[test]
fn harness_smoke_every_fault_kind() {
    // One fixed case per fault kind outside the proptest loop, so a
    // failure gives a readable panic rather than a generated case id:
    // torn request, disconnect-before-ack, ack lost mid-header, clean.
    let trips = [12i64, 18, 24, 30];
    let faults = [
        Fault::CutWrite(9),
        Fault::CutRead(0),
        Fault::CutRead(11),
        Fault::None,
    ];
    let reference = reference_report("sprop_smoke_ref", &trips, 2);
    let (served, committed) = serve_round("sprop_smoke_served", &trips, &faults, 2);
    assert_eq!(committed, trips.len());
    assert_eq!(served, reference);
}
