//! Fault injection for the wire: the transport twin of the driver's
//! `FaultyIo`.
//!
//! [`FaultyTransport`] wraps any `Read + Write` stream and injects the
//! failure modes a real network produces — short writes that tear a
//! frame, disconnects before the reply, delayed ACKs that trip read
//! deadlines — at deterministic byte offsets. Tests pick a fault point,
//! run the client's submit path against it, and assert the exactly-once
//! invariant, the same way the queue's crash matrix walks `KillAtNth`
//! over journal appends.

use std::io::{self, Read, Write};
use std::time::Duration;

/// A `Read + Write` wrapper that injects transport faults at
/// deterministic byte offsets.
///
/// All counters are byte-granular and monotonic over the life of the
/// wrapper, so a fault point is reproducible from the test's parameters
/// alone — no timing races, no randomness.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    /// After this many written bytes, every write reports a broken
    /// pipe. A mid-frame cutoff tears the frame on the peer's side.
    pub write_cutoff: Option<u64>,
    /// After this many read bytes, every read reports a connection
    /// reset: the disconnect-before-ACK fault (the request arrived; the
    /// reply never did).
    pub read_cutoff: Option<u64>,
    /// Sleep this long before the first read: a delayed ACK, for
    /// exercising read deadlines.
    pub read_delay: Option<Duration>,
    /// Cap each individual `write` call to this many bytes: chops one
    /// `write_all` into many small writes, exercising partial-write
    /// handling without tearing anything.
    pub write_chunk: Option<usize>,
    written: u64,
    read: u64,
    delayed: bool,
}

impl<T> FaultyTransport<T> {
    /// Wraps a stream with no faults armed; arm them via the public
    /// fields or the builder helpers.
    pub fn new(inner: T) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            write_cutoff: None,
            read_cutoff: None,
            read_delay: None,
            write_chunk: None,
            written: 0,
            read: 0,
            delayed: false,
        }
    }

    /// Breaks the pipe after `bytes` written bytes (short write / torn
    /// frame).
    #[must_use]
    pub fn cut_write_after(mut self, bytes: u64) -> FaultyTransport<T> {
        self.write_cutoff = Some(bytes);
        self
    }

    /// Resets the connection after `bytes` read bytes
    /// (disconnect-before-ACK when `bytes` is 0).
    #[must_use]
    pub fn cut_read_after(mut self, bytes: u64) -> FaultyTransport<T> {
        self.read_cutoff = Some(bytes);
        self
    }

    /// Delays the first read by `delay` (a delayed ACK).
    #[must_use]
    pub fn delay_reads(mut self, delay: Duration) -> FaultyTransport<T> {
        self.read_delay = Some(delay);
        self
    }

    /// Caps each write call to `bytes` bytes.
    #[must_use]
    pub fn chunk_writes(mut self, bytes: usize) -> FaultyTransport<T> {
        self.write_chunk = Some(bytes.max(1));
        self
    }

    /// Bytes successfully written so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Consumes the wrapper, returning the inner stream.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Read> Read for FaultyTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(delay) = self.read_delay {
            if !self.delayed {
                self.delayed = true;
                std::thread::sleep(delay);
            }
        }
        if let Some(cutoff) = self.read_cutoff {
            if self.read >= cutoff {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected: connection reset before reply",
                ));
            }
            let room = usize::try_from(cutoff - self.read).unwrap_or(usize::MAX);
            let len = buf.len().min(room);
            let n = self.inner.read(&mut buf[..len])?;
            self.read += n as u64;
            return Ok(n);
        }
        let n = self.inner.read(buf)?;
        self.read += n as u64;
        Ok(n)
    }
}

impl<T: Write> Write for FaultyTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut len = buf.len();
        if let Some(cutoff) = self.write_cutoff {
            if self.written >= cutoff {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected: broken pipe mid-frame",
                ));
            }
            len = len.min(usize::try_from(cutoff - self.written).unwrap_or(usize::MAX));
        }
        if let Some(chunk) = self.write_chunk {
            len = len.min(chunk);
        }
        let n = self.inner.write(&buf[..len])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_frame, write_frame, FrameError};
    use std::io::Cursor;

    #[test]
    fn write_cutoff_tears_the_frame_on_the_peer_side() {
        // Cut 5 bytes into the frame: the writer sees BrokenPipe, and
        // whatever made it across reads back as a torn frame.
        let mut t = FaultyTransport::new(Vec::new()).cut_write_after(5);
        let err = write_frame(&mut t, b"payload").expect_err("cut");
        assert!(matches!(err, FrameError::Io(_)), "got {err:?}");
        let wire = t.into_inner();
        assert_eq!(wire.len(), 5, "exactly the cutoff crossed");
        assert_eq!(read_frame(&mut Cursor::new(wire)), Err(FrameError::Torn));
    }

    #[test]
    fn chunked_writes_still_deliver_whole_frames() {
        let mut t = FaultyTransport::new(Vec::new()).chunk_writes(3);
        write_frame(&mut t, b"chunked but intact").expect("write_all loops");
        let wire = t.into_inner();
        assert_eq!(
            read_frame(&mut Cursor::new(wire)).expect("intact"),
            b"chunked but intact"
        );
    }

    #[test]
    fn read_cutoff_is_a_reset_not_an_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"reply").expect("write");
        // Reset after 3 delivered bytes: mid-header.
        let mut t = FaultyTransport::new(Cursor::new(wire)).cut_read_after(3);
        let err = read_frame(&mut t).expect_err("reset");
        assert!(matches!(err, FrameError::Io(_)), "got {err:?}");
    }

    #[test]
    fn zero_byte_read_cutoff_models_disconnect_before_ack() {
        let mut t = FaultyTransport::new(Cursor::new(Vec::new())).cut_read_after(0);
        let mut buf = [0u8; 4];
        let err = t.read(&mut buf).expect_err("reset");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}
