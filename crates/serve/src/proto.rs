//! The wire protocol: length-prefixed, checksum-framed messages and the
//! typed request/response vocabulary.
//!
//! # Frame format
//!
//! ```text
//! +------+---------+----------+-------------+---------·········+
//! | FFSP | version | len (u32 | fnv1a (u64  | payload (len     |
//! | (4B) | (1B)    | LE, 4B)  | LE, 8B)     | bytes, JSON)     |
//! +------+---------+----------+-------------+---------·········+
//! ```
//!
//! The checksum covers the payload with the same FNV-1a hash the
//! manifest seals use, so a frame damaged anywhere surfaces as a typed
//! [`FrameError`] — and a connection that dies mid-frame surfaces as
//! [`FrameError::Torn`], the transport twin of the queue journal's torn
//! tail. Whole frames are written with a single `write_all`, so an
//! injected short write tears mid-frame exactly like a real disconnect.
//!
//! # Idempotency keys
//!
//! A submit's `request_id` is not a random nonce: it is the FNV-1a
//! digest of the request *content* ([`JobSpec::digest`]), mirroring the
//! result cache's content-addressing. A client retry after a torn frame
//! recomputes the same id, the server recomputes and verifies it, and
//! the dedup map turns the retry into a no-op instead of a double
//! enqueue.

use ffsim_driver::fnv::{fnv1a, Fnv1a};
use ffsim_driver::json::{parse, Value};
use ffsim_driver::PoisonJob;
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FFSP";
/// Protocol version byte; bumped on incompatible changes.
pub const PROTO_VERSION: u8 = 1;
/// Frame header length: magic + version + payload length + checksum.
const HEADER_LEN: usize = 4 + 1 + 4 + 8;
/// Maximum payload length a peer will accept (16 MiB): a corrupted
/// length field must never drive an unbounded allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be read or written. Every variant is a typed,
/// recoverable condition: the peer closes the connection and the client
/// retries with the same idempotent request id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended cleanly between frames (peer hung up).
    Closed,
    /// The stream ended (or the read deadline fired) mid-frame: the
    /// transport twin of the journal's torn tail.
    Torn,
    /// No bytes arrived before the read deadline; for a server this is
    /// an idle poll, not damage.
    TimedOut,
    /// The frame did not start with the protocol magic.
    BadMagic,
    /// The peer speaks an incompatible protocol version.
    BadVersion(u8),
    /// The declared payload length exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload checksum did not match: damage in flight.
    ChecksumMismatch,
    /// An underlying transport error (reset, refused, broken pipe, ...).
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Torn => write!(f, "torn frame (stream ended mid-frame)"),
            FrameError::TimedOut => write!(f, "read deadline expired"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            FrameError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (header + payload) with a single `write_all`, then
/// flushes.
///
/// # Errors
///
/// [`FrameError::TooLarge`] for an oversized payload, [`FrameError::Io`]
/// for transport failures (a short write surfaces here and tears the
/// frame on the peer's side).
pub fn write_frame(w: &mut (impl Write + ?Sized), payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len()));
    }
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(PROTO_VERSION);
    buf.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("bounded above")
            .to_le_bytes(),
    );
    buf.extend_from_slice(&fnv1a(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
        .map_err(|e| FrameError::Io(e.to_string()))?;
    w.flush().map_err(|e| FrameError::Io(e.to_string()))?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes. EOF before the first byte is the
/// `clean_eof` error (frame boundary: the peer just hung up); EOF or a
/// read deadline after it is [`FrameError::Torn`] (mid-frame).
fn fill(
    r: &mut (impl Read + ?Sized),
    buf: &mut [u8],
    clean_eof: FrameError,
) -> Result<(), FrameError> {
    let mut off = 0usize;
    while off < buf.len() {
        match r.read(&mut buf[off..]) {
            Ok(0) => {
                return Err(if off == 0 {
                    clean_eof
                } else {
                    FrameError::Torn
                });
            }
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(if off == 0 {
                    FrameError::TimedOut
                } else {
                    FrameError::Torn
                });
            }
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads one frame and returns its verified payload.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean hang-up between frames,
/// [`FrameError::TimedOut`] when the read deadline fires before the
/// first byte (an idle poll), and the corruption variants
/// ([`Torn`](FrameError::Torn), [`BadMagic`](FrameError::BadMagic),
/// [`ChecksumMismatch`](FrameError::ChecksumMismatch), ...) otherwise.
pub fn read_frame(r: &mut (impl Read + ?Sized)) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    fill(r, &mut header, FrameError::Closed)?;
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if header[4] != PROTO_VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let checksum = u64::from_le_bytes(header[9..17].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len];
    fill(r, &mut payload, FrameError::Torn)?;
    if fnv1a(&payload) != checksum {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok(payload)
}

// ----------------------------------------------------------------------
// The request/response vocabulary.
// ----------------------------------------------------------------------

/// A wire-encodable job description. Workload closures cannot cross the
/// wire, so a spec names a workload in the server's registry (the
/// [`JobFactory`](crate::server::JobFactory)) plus its parameter —
/// exactly the information a restarted service needs to re-attach
/// payloads to recovered journal entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The job id (unique within the queue, conventionally prefixed by
    /// the campaign).
    pub id: String,
    /// Wrong-path technique label (`nowp`, `instrec`, `conv`, `wpemul`).
    pub mode: String,
    /// Workload registry name the server's factory resolves.
    pub workload: String,
    /// Workload parameter (loop trips or equivalent).
    pub arg: i64,
    /// Job priority offset over the campaign base.
    pub priority: i32,
}

impl JobSpec {
    /// The content digest used as the idempotent request id: an FNV-1a
    /// hash over every field plus the campaign, mirroring the result
    /// cache's content-addressing. Identical submits — and only
    /// identical submits — share a digest.
    #[must_use]
    pub fn digest(&self, campaign: &str) -> String {
        let h = Fnv1a::new()
            .update(campaign.as_bytes())
            .update(&[0])
            .update(self.id.as_bytes())
            .update(&[0])
            .update(self.mode.as_bytes())
            .update(&[0])
            .update(self.workload.as_bytes())
            .update(&[0])
            .update(&self.arg.to_le_bytes())
            .update(&self.priority.to_le_bytes())
            .finish();
        format!("{h:016x}")
    }

    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("mode".into(), Value::Str(self.mode.clone())),
            ("workload".into(), Value::Str(self.workload.clone())),
            ("arg".into(), Value::Int(self.arg)),
            ("priority".into(), Value::Int(i64::from(self.priority))),
        ])
    }

    fn from_value(doc: &Value) -> Result<JobSpec, String> {
        Ok(JobSpec {
            id: str_field(doc, "id")?,
            mode: str_field(doc, "mode")?,
            workload: str_field(doc, "workload")?,
            arg: int_field(doc, "arg")?,
            priority: i32::try_from(int_field(doc, "priority")?)
                .map_err(|_| "priority out of range".to_string())?,
        })
    }
}

fn str_field(doc: &Value, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn int_field(doc: &Value, key: &str) -> Result<i64, String> {
    doc.get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn uint_field(doc: &Value, key: &str) -> Result<u64, String> {
    u64::try_from(int_field(doc, key)?).map_err(|_| format!("field `{key}` must be non-negative"))
}

/// A request the campaign server understands. Each maps onto one queue
/// API: `Register` → `register`, `Submit` → `enqueue`, `Status` →
/// `stats`, `Cancel` → `cancel_token`, `PoisonList` → `poison_jobs`,
/// `DrainReport` → the merged deterministic report, `Shutdown` → the
/// graceful drain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Register (or re-register) a campaign, optionally with a
    /// per-campaign admission quota on live jobs.
    Register {
        /// Campaign id.
        campaign: String,
        /// Deficit-round-robin weight (≥ 1).
        weight: u32,
        /// Base priority added to each job's own.
        priority: i32,
        /// Admission quota on live (pending + leased) jobs, layered
        /// under the queue's global capacity. `None` = no quota.
        quota: Option<u64>,
    },
    /// Submit one job under a campaign, idempotently.
    Submit {
        /// Content digest of (campaign, job); see [`JobSpec::digest`].
        request_id: String,
        /// Campaign id.
        campaign: String,
        /// The job description.
        job: JobSpec,
    },
    /// Aggregate queue counters.
    Status,
    /// Fire the service-wide stop token (abandons in-flight work; the
    /// durable state is intact and a restart resumes it).
    Cancel,
    /// The id-sorted poison-job list.
    PoisonList,
    /// The deterministic merged campaign report, renderable mid-flight.
    DrainReport,
    /// Graceful drain: stop accepting submits, finish leased jobs,
    /// flush the journal, emit the final report, exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as canonical JSON bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let obj = match self {
            Request::Register {
                campaign,
                weight,
                priority,
                quota,
            } => {
                let mut fields = vec![
                    ("request".into(), Value::Str("register".into())),
                    ("campaign".into(), Value::Str(campaign.clone())),
                    ("weight".into(), Value::Int(i64::from(*weight))),
                    ("priority".into(), Value::Int(i64::from(*priority))),
                ];
                if let Some(quota) = quota {
                    fields.push((
                        "quota".into(),
                        Value::Int(i64::try_from(*quota).unwrap_or(i64::MAX)),
                    ));
                }
                Value::Obj(fields)
            }
            Request::Submit {
                request_id,
                campaign,
                job,
            } => Value::Obj(vec![
                ("request".into(), Value::Str("submit".into())),
                ("request_id".into(), Value::Str(request_id.clone())),
                ("campaign".into(), Value::Str(campaign.clone())),
                ("job".into(), job.to_value()),
            ]),
            Request::Status => tag_only("request", "status"),
            Request::Cancel => tag_only("request", "cancel"),
            Request::PoisonList => tag_only("request", "poison-list"),
            Request::DrainReport => tag_only("request", "drain-report"),
            Request::Shutdown => tag_only("request", "shutdown"),
        };
        obj.to_json().into_bytes()
    }

    /// Decodes a request from payload bytes.
    ///
    /// # Errors
    ///
    /// A description of the malformation; the server answers with a
    /// typed [`Response::Error`] and keeps the connection.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("payload not UTF-8: {e}"))?;
        let doc = parse(text)?;
        let tag = str_field(&doc, "request")?;
        Ok(match tag.as_str() {
            "register" => Request::Register {
                campaign: str_field(&doc, "campaign")?,
                weight: u32::try_from(int_field(&doc, "weight")?)
                    .map_err(|_| "weight out of range".to_string())?,
                priority: i32::try_from(int_field(&doc, "priority")?)
                    .map_err(|_| "priority out of range".to_string())?,
                quota: match doc.get("quota") {
                    Some(v) => Some(
                        v.as_int()
                            .and_then(|q| u64::try_from(q).ok())
                            .ok_or_else(|| "quota must be a non-negative integer".to_string())?,
                    ),
                    None => None,
                },
            },
            "submit" => Request::Submit {
                request_id: str_field(&doc, "request_id")?,
                campaign: str_field(&doc, "campaign")?,
                job: JobSpec::from_value(doc.get("job").ok_or_else(|| "missing job".to_string())?)?,
            },
            "status" => Request::Status,
            "cancel" => Request::Cancel,
            "poison-list" => Request::PoisonList,
            "drain-report" => Request::DrainReport,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request `{other}`")),
        })
    }
}

fn tag_only(key: &str, tag: &str) -> Value {
    Value::Obj(vec![(key.to_string(), Value::Str(tag.to_string()))])
}

/// What the queue did with a submitted job (the wire form of the
/// driver's `Enqueued`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued (or re-attached to a recovered pending entry).
    Accepted,
    /// A durable result already exists; no re-run.
    AlreadyComplete,
    /// Quarantined as poison from an earlier run; reported, not re-run.
    Poisoned,
}

impl SubmitOutcome {
    /// Stable wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SubmitOutcome::Accepted => "accepted",
            SubmitOutcome::AlreadyComplete => "already-complete",
            SubmitOutcome::Poisoned => "poisoned",
        }
    }

    fn from_label(label: &str) -> Option<SubmitOutcome> {
        Some(match label {
            "accepted" => SubmitOutcome::Accepted,
            "already-complete" => SubmitOutcome::AlreadyComplete,
            "poisoned" => SubmitOutcome::Poisoned,
            _ => return None,
        })
    }
}

/// Aggregate queue counters over the wire (the `Status` reply body).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusReply {
    /// Jobs pending with a payload.
    pub pending: u64,
    /// Jobs currently leased to workers.
    pub leased: u64,
    /// Jobs with a durable `Committed` state.
    pub committed: u64,
    /// Jobs with a durable `Failed` state.
    pub failed: u64,
    /// Poison jobs quarantined.
    pub quarantined: u64,
}

impl StatusReply {
    /// Whether every submitted job has reached a terminal state.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.pending == 0 && self.leased == 0
    }

    /// Terminal jobs (committed + failed + quarantined).
    #[must_use]
    pub fn terminal(&self) -> u64 {
        self.committed + self.failed + self.quarantined
    }
}

/// One poison job over the wire (mirrors the driver's `PoisonJob`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoisonEntry {
    /// The job id.
    pub id: String,
    /// The campaign it belonged to.
    pub campaign: String,
    /// Identical failures accumulated.
    pub failures: u64,
    /// The recorded last error.
    pub error: String,
}

impl From<&PoisonJob> for PoisonEntry {
    fn from(job: &PoisonJob) -> PoisonEntry {
        PoisonEntry {
            id: job.id.clone(),
            campaign: job.campaign.clone(),
            failures: u64::from(job.failures),
            error: job.error.clone(),
        }
    }
}

/// A typed server response. Backpressure (`Saturated`, `Overloaded`,
/// `QuotaExceeded`, `Draining`) is vocabulary, not an error string: the
/// client's retry policy can tell "try again later" from "never".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The request was applied.
    Ok,
    /// A submit resolved.
    Submitted {
        /// What the queue did.
        outcome: SubmitOutcome,
        /// Whether this reply came from the idempotency dedup map (a
        /// retry of an already-applied submit).
        deduped: bool,
    },
    /// The queue is at global capacity (the depth/capacity the driver's
    /// `Saturated` error now carries, passed through verbatim).
    Saturated {
        /// Live jobs at the moment of rejection.
        depth: u64,
        /// The configured capacity.
        capacity: u64,
    },
    /// The campaign is at its admission quota.
    QuotaExceeded {
        /// The campaign.
        campaign: String,
        /// Its live jobs at the moment of rejection.
        live: u64,
        /// Its configured quota.
        quota: u64,
    },
    /// The server is at its connection bound.
    Overloaded {
        /// Open connections.
        active: u64,
        /// The configured bound.
        max: u64,
    },
    /// The server is draining; no new submits are admitted.
    Draining,
    /// Aggregate queue counters.
    Stats(StatusReply),
    /// The poison-job list.
    Poison(Vec<PoisonEntry>),
    /// The deterministic merged campaign report.
    Report(String),
    /// The request was malformed or unapplicable.
    Error(String),
}

impl Response {
    /// Encodes the response as canonical JSON bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let int = |v: u64| Value::Int(i64::try_from(v).unwrap_or(i64::MAX));
        let obj = match self {
            Response::Ok => tag_only("response", "ok"),
            Response::Submitted { outcome, deduped } => Value::Obj(vec![
                ("response".into(), Value::Str("submitted".into())),
                ("enqueued".into(), Value::Str(outcome.label().into())),
                ("deduped".into(), Value::Int(i64::from(*deduped))),
            ]),
            Response::Saturated { depth, capacity } => Value::Obj(vec![
                ("response".into(), Value::Str("saturated".into())),
                ("depth".into(), int(*depth)),
                ("capacity".into(), int(*capacity)),
            ]),
            Response::QuotaExceeded {
                campaign,
                live,
                quota,
            } => Value::Obj(vec![
                ("response".into(), Value::Str("quota-exceeded".into())),
                ("campaign".into(), Value::Str(campaign.clone())),
                ("live".into(), int(*live)),
                ("quota".into(), int(*quota)),
            ]),
            Response::Overloaded { active, max } => Value::Obj(vec![
                ("response".into(), Value::Str("overloaded".into())),
                ("active".into(), int(*active)),
                ("max".into(), int(*max)),
            ]),
            Response::Draining => tag_only("response", "draining"),
            Response::Stats(s) => Value::Obj(vec![
                ("response".into(), Value::Str("stats".into())),
                ("pending".into(), int(s.pending)),
                ("leased".into(), int(s.leased)),
                ("committed".into(), int(s.committed)),
                ("failed".into(), int(s.failed)),
                ("quarantined".into(), int(s.quarantined)),
            ]),
            Response::Poison(jobs) => Value::Obj(vec![
                ("response".into(), Value::Str("poison".into())),
                (
                    "jobs".into(),
                    Value::Arr(
                        jobs.iter()
                            .map(|j| {
                                Value::Obj(vec![
                                    ("id".into(), Value::Str(j.id.clone())),
                                    ("campaign".into(), Value::Str(j.campaign.clone())),
                                    ("failures".into(), int(j.failures)),
                                    ("error".into(), Value::Str(j.error.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Report(text) => Value::Obj(vec![
                ("response".into(), Value::Str("report".into())),
                ("text".into(), Value::Str(text.clone())),
            ]),
            Response::Error(message) => Value::Obj(vec![
                ("response".into(), Value::Str("error".into())),
                ("message".into(), Value::Str(message.clone())),
            ]),
        };
        obj.to_json().into_bytes()
    }

    /// Decodes a response from payload bytes.
    ///
    /// # Errors
    ///
    /// A description of the malformation.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("payload not UTF-8: {e}"))?;
        let doc = parse(text)?;
        let tag = str_field(&doc, "response")?;
        Ok(match tag.as_str() {
            "ok" => Response::Ok,
            "submitted" => Response::Submitted {
                outcome: SubmitOutcome::from_label(&str_field(&doc, "enqueued")?)
                    .ok_or_else(|| "unknown enqueue outcome".to_string())?,
                deduped: int_field(&doc, "deduped")? != 0,
            },
            "saturated" => Response::Saturated {
                depth: uint_field(&doc, "depth")?,
                capacity: uint_field(&doc, "capacity")?,
            },
            "quota-exceeded" => Response::QuotaExceeded {
                campaign: str_field(&doc, "campaign")?,
                live: uint_field(&doc, "live")?,
                quota: uint_field(&doc, "quota")?,
            },
            "overloaded" => Response::Overloaded {
                active: uint_field(&doc, "active")?,
                max: uint_field(&doc, "max")?,
            },
            "draining" => Response::Draining,
            "stats" => Response::Stats(StatusReply {
                pending: uint_field(&doc, "pending")?,
                leased: uint_field(&doc, "leased")?,
                committed: uint_field(&doc, "committed")?,
                failed: uint_field(&doc, "failed")?,
                quarantined: uint_field(&doc, "quarantined")?,
            }),
            "poison" => {
                let jobs = doc
                    .get("jobs")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| "missing jobs array".to_string())?;
                Response::Poison(
                    jobs.iter()
                        .map(|j| {
                            Ok(PoisonEntry {
                                id: str_field(j, "id")?,
                                campaign: str_field(j, "campaign")?,
                                failures: uint_field(j, "failures")?,
                                error: str_field(j, "error")?,
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                )
            }
            "report" => Response::Report(str_field(&doc, "text")?),
            "error" => Response::Error(str_field(&doc, "message")?),
            other => return Err(format!("unknown response `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn spec() -> JobSpec {
        JobSpec {
            id: "alpha/j0".into(),
            mode: "wpemul".into(),
            workload: "countdown".into(),
            arg: 40,
            priority: 1,
        }
    }

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        write_frame(&mut wire, b"").expect("empty payloads are legal");
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r).expect("first"), b"hello");
        assert_eq!(read_frame(&mut r).expect("second"), b"");
        assert_eq!(read_frame(&mut r), Err(FrameError::Closed));
    }

    #[test]
    fn torn_and_damaged_frames_are_typed_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").expect("write");

        // Torn anywhere mid-frame: header or payload.
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3] {
            let mut r = Cursor::new(wire[..cut].to_vec());
            assert_eq!(read_frame(&mut r), Err(FrameError::Torn), "cut at {cut}");
        }

        // A flipped payload byte is a checksum mismatch, never a panic.
        let mut corrupt = wire.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert_eq!(
            read_frame(&mut Cursor::new(corrupt)),
            Err(FrameError::ChecksumMismatch)
        );

        // Bad magic and a hostile length field are refused up front.
        let mut bad_magic = wire.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            read_frame(&mut Cursor::new(bad_magic)),
            Err(FrameError::BadMagic)
        );
        let mut huge = wire;
        huge[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(huge)),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn requests_roundtrip() {
        let requests = [
            Request::Register {
                campaign: "alpha".into(),
                weight: 2,
                priority: -1,
                quota: Some(16),
            },
            Request::Register {
                campaign: "beta".into(),
                weight: 1,
                priority: 0,
                quota: None,
            },
            Request::Submit {
                request_id: spec().digest("alpha"),
                campaign: "alpha".into(),
                job: spec(),
            },
            Request::Status,
            Request::Cancel,
            Request::PoisonList,
            Request::DrainReport,
            Request::Shutdown,
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).expect("decode");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let responses = [
            Response::Ok,
            Response::Submitted {
                outcome: SubmitOutcome::AlreadyComplete,
                deduped: true,
            },
            Response::Saturated {
                depth: 4096,
                capacity: 4096,
            },
            Response::QuotaExceeded {
                campaign: "alpha".into(),
                live: 8,
                quota: 8,
            },
            Response::Overloaded {
                active: 32,
                max: 32,
            },
            Response::Draining,
            Response::Stats(StatusReply {
                pending: 1,
                leased: 2,
                committed: 3,
                failed: 0,
                quarantined: 1,
            }),
            Response::Poison(vec![PoisonEntry {
                id: "a/x".into(),
                campaign: "a".into(),
                failures: 3,
                error: "lease expired".into(),
            }]),
            Response::Report("job  mode\n".into()),
            Response::Error("unknown campaign".into()),
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).expect("decode");
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn digest_is_content_addressed() {
        let a = spec();
        assert_eq!(a.digest("alpha"), a.digest("alpha"), "deterministic");
        assert_ne!(a.digest("alpha"), a.digest("beta"), "campaign matters");
        let mut b = spec();
        b.arg += 1;
        assert_ne!(a.digest("alpha"), b.digest("alpha"), "content matters");
    }
}
