//! # ffsim-serve — the network half of the durable campaign queue
//!
//! [`ffsim-driver`](../ffsim_driver/index.html)'s `JobQueue` made the
//! *storage* side of campaign ingest crash-consistent: journaled
//! enqueues, lease-based ownership, kill-9-proof resume. This crate adds
//! the matching *transport* side, with the same discipline: in long
//! remote campaigns it is the wire, not the engine, that fails —
//! half-written requests, dead clients holding work, overload cascades.
//!
//! - [`proto`]: a dependency-free, length-prefixed, FNV-checksummed
//!   frame format over any byte stream, plus the typed
//!   request/response vocabulary (hand-rolled JSON payloads, like every
//!   durable artifact in the workspace). A torn or corrupted frame is a
//!   *typed* error, never a panic and never a half-applied request.
//! - [`transport`]: the [`FaultyTransport`] injection seam mirroring the
//!   driver's `FaultyIo` — short writes, disconnects before the ACK,
//!   delayed ACKs — so every fault point is a unit test, not an outage.
//! - [`server`]: [`CampaignServer`] maps `submit` / `status` / `cancel`
//!   / `poison-list` / `drain-report` onto the queue's `register` /
//!   `enqueue` / `stats` / `cancel_token` / `poison_jobs`. Robustness
//!   features: per-connection read/write deadlines, idempotent submits
//!   deduplicated by content digest (a client retry after a torn frame
//!   never double-enqueues), bounded connections with typed
//!   `Overloaded` / `Saturated` responses, per-campaign admission
//!   quotas over the global capacity, a periodic expired-lease reap
//!   tick, and graceful drain (stop accepting, finish leased jobs,
//!   emit the final report).
//! - [`client`]: [`ServeClient`] with deterministic FNV-jittered
//!   exponential backoff (the driver's [`RetryPolicy`] verbatim); every
//!   retry carries the same content-derived request id, so the
//!   server-side dedup makes the submit path exactly-once end to end.
//!
//! The headline invariant matches the queue's own: for an identical
//! submit sequence, the merged campaign report is byte-identical
//! whatever transport faults, server kills, and client retries happened
//! along the way.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod proto;
pub mod server;
pub mod transport;

pub use client::{ClientError, Conn, Connector, ServeClient};
pub use ffsim_driver::RetryPolicy;
pub use proto::{
    read_frame, write_frame, FrameError, JobSpec, PoisonEntry, Request, Response, StatusReply,
    SubmitOutcome, MAX_FRAME, PROTO_VERSION,
};
pub use server::{CampaignServer, JobFactory, ServeConfig, ServeOutcome};
pub use transport::FaultyTransport;
