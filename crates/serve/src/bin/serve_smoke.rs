//! Campaign-service smoke used by CI and by hand: a wire-protocol
//! client submits two campaigns to a [`CampaignServer`] over TCP, the
//! server drains them through the durable queue, and the final report is
//! diffed against the committed golden.
//!
//! The report is byte-deterministic: independent of worker count,
//! scheduling, transport faults, client retries, and how many times the
//! server was killed and restarted. The committed copy lives at
//! `results_serve_smoke.txt` and is verified by `results_check`.
//!
//! ```text
//! serve_smoke                                   # in-process demo (golden)
//! serve_smoke serve --dir PATH --addr HOST:PORT [--workers N] [--report PATH]
//! serve_smoke client submit --addr HOST:PORT [--chaos]
//! serve_smoke client wait --addr HOST:PORT [--jobs N] [--budget-secs S]
//! serve_smoke client report --addr HOST:PORT [--out PATH]
//! serve_smoke client shutdown --addr HOST:PORT
//! serve_smoke client cancel --addr HOST:PORT
//! ```
//!
//! The no-argument demo runs server and client in one process over a
//! loopback socket with a throwaway queue directory and prints the final
//! report to stdout. The `serve`/`client` subcommands split the two
//! halves across processes so CI can `kill -9` the server mid-drain,
//! restart it against the same `--dir`, re-run the client, and assert
//! the report is byte-identical to the uninterrupted demo. `--chaos`
//! tears the first connection of every other submit mid-frame, proving
//! the retry-plus-dedup path over a real socket.

use ffsim_driver::{mode_from_label, Job, JobQueue, QueueConfig, RetryPolicy, WorkloadFn};
use ffsim_emu::{FaultPolicy, Memory};
use ffsim_isa::{Asm, Program, Reg};
use ffsim_serve::{
    CampaignServer, Conn, Connector, FaultyTransport, JobFactory, JobSpec, ServeClient,
    ServeConfig, SubmitOutcome,
};
use ffsim_uarch::CoreConfig;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Loop trips: sized so a CI `kill -9` lands while later jobs are still
/// pending, but the no-argument `results_check` run stays fast.
const TRIPS: i64 = 20_000;

/// Jobs across both campaigns (the `client wait` default).
const TOTAL_JOBS: u64 = 8;

fn countdown_div(trips: i64) -> Result<Program, ffsim_core::SimError> {
    let (i, c, q) = (Reg::new(1), Reg::new(2), Reg::new(3));
    let mut a = Asm::new();
    a.li(i, trips);
    a.li(c, 1_000_003);
    a.label("loop");
    a.div(q, c, i);
    a.addi(i, i, -1);
    a.bnez(i, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn countup_load(trips: i64) -> Result<Program, ffsim_core::SimError> {
    let (i, n, base, t, v) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
    );
    let mut a = Asm::new();
    a.li(i, 0);
    a.li(n, trips);
    a.li(base, 0x1000_0000);
    a.label("loop");
    a.slli(t, i, 3);
    a.add(t, t, base);
    a.ld(v, 0, t);
    a.addi(i, i, 1);
    a.blt(i, n, "loop");
    a.halt();
    Ok(a.assemble()?)
}

fn workload(program: fn(i64) -> Result<Program, ffsim_core::SimError>, trips: i64) -> WorkloadFn {
    Arc::new(move || Ok((program(trips)?, Memory::new())))
}

/// The server-side workload registry: the names a [`JobSpec`] may carry
/// and the payloads they re-attach. This is the factory a restarted
/// server rebuilds jobs from, so it must cover every workload CI ever
/// submits against a durable directory.
fn factory() -> JobFactory {
    Arc::new(|spec: &JobSpec| {
        let mode =
            mode_from_label(&spec.mode).ok_or_else(|| format!("unknown mode `{}`", spec.mode))?;
        let job = match spec.workload.as_str() {
            "countdown-div" => Job::new(&spec.id, mode, workload(countdown_div, spec.arg)),
            "countup-load" => Job::new(&spec.id, mode, workload(countup_load, spec.arg)),
            // Divide-by-zero trapping under the abort policy faults the
            // wrong path under full emulation only: the job degrades
            // wpemul -> conv and the report shows the ladder.
            "countdown-div-abort" => Job::new(&spec.id, mode, workload(countdown_div, spec.arg))
                .with_tweak(Arc::new(|cfg| {
                    cfg.fault_model.trap_div_zero = true;
                    cfg.fault_policy = FaultPolicy::AbortRun;
                })),
            other => return Err(format!("unknown workload `{other}`")),
        };
        Ok(job
            .with_core(CoreConfig::tiny_for_tests())
            .with_priority(spec.priority))
    })
}

/// A campaign registration plus its job specs, as the client submits
/// them over the wire.
struct CampaignPlan {
    id: &'static str,
    weight: u32,
    priority: i32,
    quota: Option<u64>,
    jobs: Vec<JobSpec>,
}

/// Two campaigns with different weights and priorities, mirroring the
/// queue smoke's fixture shape but with service-distinct job ids, so
/// the two goldens stay independent artifacts. A quota on `beta` keeps
/// the admission-quota path exercised (sized to never reject here).
fn plans() -> Vec<CampaignPlan> {
    let spec = |id: String, mode: &str, workload: &str, priority: i32| JobSpec {
        id,
        mode: mode.to_string(),
        workload: workload.to_string(),
        arg: TRIPS,
        priority,
    };
    let alpha = ["nowp", "instrec", "conv", "wpemul"]
        .into_iter()
        .map(|mode| spec(format!("alpha-countdown/{mode}"), mode, "countdown-div", 0))
        .collect();
    let mut beta: Vec<JobSpec> = ["nowp", "conv", "wpemul"]
        .into_iter()
        .map(|mode| {
            // One job outranks its campaign siblings, putting the
            // scheduler's priority tier (not just DRR weight) on the
            // smoke path.
            let priority = i32::from(mode == "wpemul") * 2;
            spec(
                format!("beta-countup/{mode}"),
                mode,
                "countup-load",
                priority,
            )
        })
        .collect();
    beta.push(spec(
        "beta-divzero/wpemul".to_string(),
        "wpemul",
        "countdown-div-abort",
        0,
    ));
    vec![
        CampaignPlan {
            id: "alpha",
            weight: 2,
            priority: 0,
            quota: None,
            jobs: alpha,
        },
        CampaignPlan {
            id: "beta",
            weight: 1,
            priority: 1,
            quota: Some(TOTAL_JOBS),
            jobs: beta,
        },
    ]
}

/// The client retry policy: deterministic jittered exponential backoff
/// patient enough to ride out a server restart between attempts.
fn client_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(100),
        max_backoff: Duration::from_secs(2),
    }
}

const IO_TIMEOUT: Duration = Duration::from_secs(10);

fn client(addr: &str) -> ServeClient {
    ServeClient::tcp(addr.to_string(), IO_TIMEOUT, client_retry())
}

/// A client whose every odd-numbered connection tears mid-frame: each
/// first submit attempt dies partway into the request, and the retry on
/// a fresh connection must land exactly once server-side.
fn chaos_client(addr: &str) -> ServeClient {
    let addr = addr.to_string();
    let mut connections = 0u32;
    let connector: Connector = Box::new(move || {
        connections += 1;
        let stream = TcpStream::connect(&addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        Ok(if connections % 2 == 1 {
            Box::new(FaultyTransport::new(stream).cut_write_after(9)) as Box<dyn Conn>
        } else {
            Box::new(stream) as Box<dyn Conn>
        })
    });
    ServeClient::new(connector, client_retry())
}

fn queue_config(dir: &PathBuf, workers: usize) -> QueueConfig {
    QueueConfig {
        workers,
        default_timeout: Some(Duration::from_secs(120)),
        // Small enough that CI kills interleave with compaction, so the
        // snapshot+tail replay path is on the smoke path too.
        compact_every: 8,
        ..QueueConfig::new(dir)
    }
}

/// Registers every campaign and submits every job; idempotent across
/// retries, chaos, and server restarts.
fn submit_all(client: &mut ServeClient) -> Result<(), String> {
    for plan in plans() {
        client
            .register(plan.id, plan.weight, plan.priority, plan.quota)
            .map_err(|e| format!("register {}: {e}", plan.id))?;
        for job in plan.jobs {
            let id = job.id.clone();
            let (outcome, deduped) = client
                .submit(plan.id, job)
                .map_err(|e| format!("submit {id}: {e}"))?;
            eprintln!(
                "serve_smoke: submit {id}: {}{}",
                outcome.label(),
                if deduped { " (deduped)" } else { "" }
            );
            if outcome == SubmitOutcome::Poisoned {
                return Err(format!(
                    "{id} is quarantined as poison; inspect the queue dir"
                ));
            }
        }
    }
    // One deliberate duplicate: the dedup map must answer it without a
    // second enqueue, whatever state the job is in by now.
    let duplicate = plans().remove(0).jobs.remove(0);
    let id = duplicate.id.clone();
    let (outcome, deduped) = client
        .submit("alpha", duplicate)
        .map_err(|e| format!("duplicate submit {id}: {e}"))?;
    eprintln!(
        "serve_smoke: duplicate submit {id}: {} (deduped: {deduped})",
        outcome.label()
    );
    Ok(())
}

/// Polls status until every job reaches a terminal state, tolerating
/// connection failures (the server may be restarting) within the budget.
fn wait_drained(addr: &str, jobs: u64, budget: Duration) -> Result<(), String> {
    let deadline = Instant::now() + budget;
    loop {
        match client(addr).status() {
            Ok(stats) => {
                eprintln!(
                    "serve_smoke: status: {} pending, {} leased, {} committed, {} failed, {} quarantined",
                    stats.pending, stats.leased, stats.committed, stats.failed, stats.quarantined
                );
                if stats.drained() && stats.terminal() >= jobs {
                    return Ok(());
                }
            }
            Err(e) => eprintln!("serve_smoke: status unavailable ({e}); retrying"),
        }
        if Instant::now() >= deadline {
            return Err(format!("queue not drained within {budget:?}"));
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}

/// The in-process demo: server and client over a loopback socket, a
/// throwaway queue directory, and the deterministic report on stdout.
/// With `chaos`, every other client connection tears mid-frame and the
/// report must come out identical anyway.
fn demo(report_path: Option<&PathBuf>, chaos: bool) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("serve_smoke.{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let queue = JobQueue::open(queue_config(&dir, 0)).map_err(|e| e.to_string())?;
    let server = CampaignServer::new(queue, factory(), ServeConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();

    let outcome = std::thread::scope(|scope| {
        let running = scope.spawn(|| server.run(listener));
        let mut client = if chaos {
            chaos_client(&addr)
        } else {
            client(&addr)
        };
        submit_all(&mut client)?;
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        running
            .join()
            .map_err(|_| "server panicked".to_string())?
            .map_err(|e| e.to_string())
    })?;

    // Request counts and wait distributions depend on retry and worker
    // timing: stderr, never the report artifact.
    eprintln!(
        "serve_smoke: {} requests, {} dedup hits, cancelled: {}",
        outcome.requests, outcome.dedup_hits, outcome.cancelled
    );
    let waits = ffsim_driver::report::render_queue_waits(&outcome.waits, &outcome.quota_rejections);
    if !waits.is_empty() {
        eprint!("{waits}");
    }
    match report_path {
        Some(path) => std::fs::write(path, &outcome.report)
            .map_err(|e| format!("writing {}: {e}", path.display()))?,
        None => print!("{}", outcome.report),
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

/// The server half: open the durable queue at `--dir` and serve until a
/// graceful shutdown (or a `kill -9`, which is the point of the CI leg).
fn serve(
    dir: &PathBuf,
    addr: &str,
    workers: usize,
    report: Option<&PathBuf>,
) -> Result<(), String> {
    let queue = JobQueue::open(queue_config(dir, workers))
        .map_err(|e| format!("opening queue at {}: {e}", dir.display()))?;
    let recovery = queue.recovery();
    eprintln!(
        "serve_smoke: recovery: {} re-leased, torn tail dropped: {}",
        recovery.re_leased, recovery.torn_tail_dropped
    );
    for quarantine in &recovery.quarantines {
        eprintln!("serve_smoke: {quarantine}");
    }
    let server = CampaignServer::new(queue, factory(), ServeConfig::default());
    let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    eprintln!("serve_smoke: serving on {addr}, queue at {}", dir.display());
    let outcome = server.run(listener).map_err(|e| e.to_string())?;
    eprintln!(
        "serve_smoke: drained: {} requests, {} dedup hits, cancelled: {}",
        outcome.requests, outcome.dedup_hits, outcome.cancelled
    );
    let waits = ffsim_driver::report::render_queue_waits(&outcome.waits, &outcome.quota_rejections);
    if !waits.is_empty() {
        eprint!("{waits}");
    }
    if let Some(path) = report {
        std::fs::write(path, &outcome.report)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(())
}

struct Flags {
    addr: Option<String>,
    dir: Option<PathBuf>,
    workers: usize,
    report: Option<PathBuf>,
    out: Option<PathBuf>,
    jobs: u64,
    budget_secs: u64,
    chaos: bool,
}

fn parse_flags(argv: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut flags = Flags {
        addr: None,
        dir: None,
        workers: 0,
        report: None,
        out: None,
        jobs: TOTAL_JOBS,
        budget_secs: 120,
        chaos: false,
    };
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => flags.addr = Some(value("--addr")?),
            "--dir" => flags.dir = Some(PathBuf::from(value("--dir")?)),
            "--workers" => {
                flags.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--report" => flags.report = Some(PathBuf::from(value("--report")?)),
            "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
            "--jobs" => {
                flags.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--budget-secs" => {
                flags.budget_secs = value("--budget-secs")?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?;
            }
            "--chaos" => flags.chaos = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(flags)
}

fn addr_of(flags: &Flags) -> Result<&str, String> {
    flags
        .addr
        .as_deref()
        .ok_or_else(|| "--addr is required".to_string())
}

fn dispatch() -> Result<(), String> {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        None => demo(None, false),
        Some("serve") => {
            let flags = parse_flags(argv)?;
            let dir = flags.dir.clone().ok_or("serve needs --dir")?;
            serve(&dir, addr_of(&flags)?, flags.workers, flags.report.as_ref())
        }
        Some("client") => {
            let verb = argv.next().ok_or("client needs a verb")?;
            let flags = parse_flags(argv)?;
            let addr = addr_of(&flags)?;
            match verb.as_str() {
                "submit" => {
                    let mut client = if flags.chaos {
                        chaos_client(addr)
                    } else {
                        client(addr)
                    };
                    submit_all(&mut client)
                }
                "wait" => wait_drained(addr, flags.jobs, Duration::from_secs(flags.budget_secs)),
                "report" => {
                    let text = client(addr).report().map_err(|e| e.to_string())?;
                    match &flags.out {
                        Some(path) => std::fs::write(path, &text)
                            .map_err(|e| format!("writing {}: {e}", path.display()))?,
                        None => print!("{text}"),
                    }
                    Ok(())
                }
                "shutdown" => client(addr).shutdown().map_err(|e| e.to_string()),
                "cancel" => client(addr).cancel().map_err(|e| e.to_string()),
                other => Err(format!("unknown client verb `{other}`")),
            }
        }
        Some(other) => {
            // Allow `serve_smoke --report PATH [--chaos]` for the bare
            // demo too.
            if other.starts_with("--") {
                let args: Vec<String> = std::iter::once(other.to_string()).chain(argv).collect();
                let flags = parse_flags(args.into_iter())?;
                demo(flags.report.as_ref(), flags.chaos)
            } else {
                Err(format!("unknown subcommand `{other}`"))
            }
        }
    }
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_smoke: {e}");
            eprintln!(
                "usage: serve_smoke [serve --dir PATH --addr HOST:PORT [--workers N] \
                 [--report PATH] | client (submit [--chaos] | wait [--jobs N] \
                 [--budget-secs S] | report [--out PATH] | shutdown | cancel) \
                 --addr HOST:PORT]"
            );
            ExitCode::FAILURE
        }
    }
}
