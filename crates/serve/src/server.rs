//! The campaign server: the wire protocol's request vocabulary mapped
//! onto the durable [`JobQueue`].
//!
//! Every robustness decision here leans on the queue's crash
//! consistency rather than re-inventing it:
//!
//! - **Exactly-once submits.** The first line of defence is an
//!   in-memory dedup map keyed by the content-derived request id; a
//!   retry of an applied submit replays the recorded decision. The map
//!   dies with the process, so the second line is the journal itself: a
//!   post-restart retry of an already-journaled submit surfaces as the
//!   queue's `DuplicateJob` (live) or `AlreadyComplete` (terminal), both
//!   of which the server folds back into an idempotent success.
//! - **Backpressure is vocabulary.** Global capacity maps to the typed
//!   [`Response::Saturated`] (carrying the queue's own depth/capacity
//!   numbers), per-campaign admission quotas to
//!   [`Response::QuotaExceeded`], and the connection bound to
//!   [`Response::Overloaded`]. None of these is recorded in the dedup
//!   map: a retry after backpressure re-attempts for real.
//! - **Leases stay honest.** A reap tick calls
//!   [`JobQueue::reap_expired`] on a fixed cadence so work owned by dead
//!   clients returns to the pool even while the drain loop is idle, and
//!   the server compares the configured lease deadline against the
//!   p99-derived [`JobQueue::suggested_lease`], raising it (with a
//!   warning) when a user configured a deadline shorter than observed
//!   run times — the classic self-inflicted lease-expiry storm.
//! - **Graceful drain.** A `Shutdown` request stops admission
//!   ([`Response::Draining`]), lets leased jobs finish, flushes the
//!   journal, and returns the final deterministic report.

use crate::proto::{
    read_frame, write_frame, FrameError, JobSpec, PoisonEntry, Request, Response, StatusReply,
    SubmitOutcome,
};
use ffsim_driver::{
    hostobs, report, CampaignSpec, Enqueued, Job, JobQueue, QueueError, QueueStats,
};
use ffsim_obs::prof::Phase;
use ffsim_obs::Log2Hist;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Builds a runnable [`Job`] from a wire [`JobSpec`]: the server-side
/// workload registry. Closures cannot cross the wire, so the factory is
/// where names become payloads — the same re-attachment a restarted
/// queue consumer performs for recovered journal entries.
pub type JobFactory = Arc<dyn Fn(&JobSpec) -> Result<Job, String> + Send + Sync>;

/// Poll quantum for connection reads and the idle drain loop: short
/// enough that shutdown is responsive, long enough to stay off the CPU.
const POLL: Duration = Duration::from_millis(50);

/// Server tuning knobs. The defaults suit a local smoke test; long
/// campaigns raise the read timeout.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Connection bound; accepts beyond it get a typed
    /// [`Response::Overloaded`] and are closed.
    pub max_connections: usize,
    /// Per-connection read deadline: a connection idle this long is
    /// closed (the client reconnects on its next request).
    pub read_timeout: Duration,
    /// Per-connection write deadline: a peer that stops draining its
    /// socket for this long forfeits the connection instead of wedging
    /// a handler thread.
    pub write_timeout: Duration,
    /// Cadence of the expired-lease reap tick.
    pub reap_interval: Duration,
    /// Dedup-map entry bound; on overflow the map is cleared (the
    /// journal still guarantees exactly-once, just via the
    /// `DuplicateJob`/`AlreadyComplete` slow path).
    pub dedup_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_connections: 32,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            reap_interval: Duration::from_millis(250),
            dedup_capacity: 65_536,
        }
    }
}

/// What a completed [`CampaignServer::run`] observed.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The final deterministic report: merged records + poison appendix
    /// + quarantine appendix, byte-identical to an uninterrupted run.
    pub report: String,
    /// Requests handled over the server's lifetime.
    pub requests: u64,
    /// Submits answered from the idempotency dedup map.
    pub dedup_hits: u64,
    /// Per-campaign admission-quota rejections (distinct from global
    /// saturation; rendered in the queue-wait appendix).
    pub quota_rejections: BTreeMap<String, u64>,
    /// Per-campaign queue-wait distributions for the stderr appendix.
    pub waits: BTreeMap<String, Log2Hist>,
    /// Whether the run ended on the service stop token rather than a
    /// graceful drain.
    pub cancelled: bool,
}

/// Mutable server state behind one lock: the idempotency dedup map and
/// the per-campaign admission quotas.
#[derive(Default)]
struct ServeState {
    /// request id → the recorded terminal submit decision.
    dedup: HashMap<String, Response>,
    /// campaign → admission quota on live jobs.
    quotas: HashMap<String, u64>,
    /// campaign → submits rejected by quota (reported distinctly from
    /// global saturation).
    quota_rejections: BTreeMap<String, u64>,
}

/// The wire front over a [`JobQueue`]. [`handle`](CampaignServer::handle)
/// is the pure request→response map (directly unit-testable);
/// [`run`](CampaignServer::run) adds the sockets, the worker drain loop,
/// and the reap tick.
pub struct CampaignServer {
    queue: JobQueue,
    factory: JobFactory,
    cfg: ServeConfig,
    state: Mutex<ServeState>,
    /// `Shutdown` was requested: no new submits, finish what is queued.
    draining: AtomicBool,
    /// The run is over: every helper thread exits at its next poll.
    done: AtomicBool,
    active: AtomicUsize,
    requests: AtomicU64,
    dedup_hits: AtomicU64,
}

impl fmt::Debug for CampaignServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignServer")
            .field("cfg", &self.cfg)
            .field("draining", &self.draining)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

impl CampaignServer {
    /// Wraps a queue and a workload factory with the given tuning.
    #[must_use]
    pub fn new(queue: JobQueue, factory: JobFactory, cfg: ServeConfig) -> CampaignServer {
        CampaignServer {
            queue,
            factory,
            cfg,
            state: Mutex::new(ServeState::default()),
            draining: AtomicBool::new(false),
            done: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
        }
    }

    /// The underlying queue (tests and embedders).
    #[must_use]
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// Whether a `Shutdown` request has been received.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    fn state(&self) -> MutexGuard<'_, ServeState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // ------------------------------------------------------------------
    // Request dispatch (socket-free; the unit-testable core).
    // ------------------------------------------------------------------

    /// Maps one request to its response, attributing the wall time to
    /// the `serve_request` phase.
    pub fn handle(&self, request: &Request) -> Response {
        hostobs::timed(Phase::ServeRequest, "serve_request_ns", || {
            self.dispatch(request)
        })
    }

    fn dispatch(&self, request: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        hostobs::inc("serve_requests_total");
        match request {
            Request::Register {
                campaign,
                weight,
                priority,
                quota,
            } => self.register(campaign, *weight, *priority, *quota),
            Request::Submit {
                request_id,
                campaign,
                job,
            } => self.submit(request_id, campaign, job),
            Request::Status => Response::Stats(status_of(&self.queue.stats())),
            Request::Cancel => {
                self.queue.cancel_token().cancel();
                Response::Ok
            }
            Request::PoisonList => Response::Poison(
                self.queue
                    .poison_jobs()
                    .iter()
                    .map(PoisonEntry::from)
                    .collect(),
            ),
            Request::DrainReport => Response::Report(self.report()),
            Request::Shutdown => {
                self.draining.store(true, Ordering::Relaxed);
                Response::Ok
            }
        }
    }

    fn register(&self, campaign: &str, weight: u32, priority: i32, quota: Option<u64>) -> Response {
        let spec = CampaignSpec {
            id: campaign.to_string(),
            weight,
            priority,
        };
        match self.queue.register(&spec) {
            Ok(()) => {
                let mut state = self.state();
                match quota {
                    Some(quota) => {
                        state.quotas.insert(campaign.to_string(), quota);
                    }
                    None => {
                        state.quotas.remove(campaign);
                    }
                }
                Response::Ok
            }
            Err(e) => Response::Error(e.to_string()),
        }
    }

    fn submit(&self, request_id: &str, campaign: &str, spec: &JobSpec) -> Response {
        // The request id is not trusted: it must equal the digest of the
        // content it claims to identify, or the dedup map could be
        // poisoned into acking a submit that was never applied.
        let expected = spec.digest(campaign);
        if request_id != expected {
            return Response::Error(format!(
                "request_id `{request_id}` does not match the content digest `{expected}`"
            ));
        }

        if let Some(previous) = self.state().dedup.get(request_id) {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            hostobs::inc("serve_dedup_hits_total");
            if let Response::Submitted { outcome, .. } = previous {
                return Response::Submitted {
                    outcome: *outcome,
                    deduped: true,
                };
            }
        }

        if self.draining.load(Ordering::Relaxed) {
            return Response::Draining;
        }

        // Admission quota: a per-campaign bound on live jobs, layered
        // under the queue's global capacity so one chatty campaign
        // cannot starve its siblings of queue slots.
        let quota = self.state().quotas.get(campaign).copied();
        if let Some(quota) = quota {
            let live = self.queue.campaign_live(campaign) as u64;
            if live >= quota {
                *self
                    .state()
                    .quota_rejections
                    .entry(campaign.to_string())
                    .or_insert(0) += 1;
                hostobs::inc("serve_quota_rejections_total");
                return Response::QuotaExceeded {
                    campaign: campaign.to_string(),
                    live,
                    quota,
                };
            }
        }

        let job = match (self.factory)(spec) {
            Ok(job) => job,
            Err(e) => return Response::Error(format!("workload factory: {e}")),
        };
        if job.id != spec.id {
            return Response::Error(format!(
                "factory returned job id `{}` for spec id `{}`",
                job.id, spec.id
            ));
        }

        match self.queue.enqueue(campaign, job) {
            Ok(enqueued) => {
                let outcome = match enqueued {
                    Enqueued::Accepted => SubmitOutcome::Accepted,
                    Enqueued::AlreadyComplete => SubmitOutcome::AlreadyComplete,
                    Enqueued::Poisoned => SubmitOutcome::Poisoned,
                };
                let response = Response::Submitted {
                    outcome,
                    deduped: false,
                };
                self.remember(request_id, &response);
                response
            }
            // Already journaled live: a previous process applied this
            // submit but its ack (and dedup map) was lost. Idempotent
            // success, not an error — this is the restart half of the
            // exactly-once guarantee.
            Err(QueueError::DuplicateJob(_)) => {
                let response = Response::Submitted {
                    outcome: SubmitOutcome::Accepted,
                    deduped: false,
                };
                self.remember(request_id, &response);
                hostobs::inc("serve_dedup_hits_total");
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                Response::Submitted {
                    outcome: SubmitOutcome::Accepted,
                    deduped: true,
                }
            }
            // Backpressure is deliberately NOT remembered: a retry after
            // saturation must re-attempt, not replay the rejection.
            Err(QueueError::Saturated { depth, capacity }) => {
                hostobs::inc("serve_saturated_total");
                Response::Saturated {
                    depth: depth as u64,
                    capacity: capacity as u64,
                }
            }
            Err(e) => Response::Error(e.to_string()),
        }
    }

    fn remember(&self, request_id: &str, response: &Response) {
        let mut state = self.state();
        if state.dedup.len() >= self.cfg.dedup_capacity {
            state.dedup.clear();
        }
        state.dedup.insert(request_id.to_string(), response.clone());
    }

    /// The deterministic merged report: records + poison appendix +
    /// quarantine appendix, the exact composition the smoke binaries
    /// print and the goldens pin.
    #[must_use]
    pub fn report(&self) -> String {
        let mut text = report::render(&self.queue.merged_records());
        text.push_str(&report::render_poison(&self.queue.poison_jobs()));
        text.push_str(&report::render_quarantines(
            &self.queue.recovery().quarantines,
        ));
        text
    }

    /// Per-campaign quota rejections so far.
    #[must_use]
    pub fn quota_rejections(&self) -> BTreeMap<String, u64> {
        self.state().quota_rejections.clone()
    }

    // ------------------------------------------------------------------
    // The socket front.
    // ------------------------------------------------------------------

    /// Serves `listener` until a graceful `Shutdown` drain completes or
    /// the service stop token fires. Internally runs three concerns on
    /// scoped threads: the accept loop (with the connection bound), the
    /// expired-lease reap tick, and the queue drain loop on the calling
    /// thread.
    ///
    /// # Errors
    ///
    /// [`QueueError`] when the drain loop hits a filesystem-level
    /// journal failure; transport errors never surface here (they are
    /// per-connection and the client retries).
    pub fn run(&self, listener: TcpListener) -> Result<ServeOutcome, QueueError> {
        self.done.store(false, Ordering::Relaxed);
        listener
            .set_nonblocking(true)
            .map_err(|e| QueueError::InvalidConfig(format!("listener: {e}")))?;

        let drained = std::thread::scope(|scope| {
            scope.spawn(|| {
                while !self.done.load(Ordering::Relaxed) {
                    self.queue.reap_expired();
                    std::thread::sleep(self.cfg.reap_interval);
                }
            });
            scope.spawn(|| {
                while !self.done.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => self.admit(scope, stream),
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::Interrupted =>
                        {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            });
            let drained = self.drain_loop();
            // Everything stops — accept loop, reap tick, and any
            // connection handlers at their next read poll.
            self.done.store(true, Ordering::Relaxed);
            drained
        });
        drained.map(|cancelled| ServeOutcome {
            report: self.report(),
            requests: self.requests.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            quota_rejections: self.quota_rejections(),
            waits: self.queue.wait_hists(),
            cancelled,
        })
    }

    /// Hands an accepted connection to a scoped handler thread, or
    /// turns it away with a typed `Overloaded` when at the bound.
    fn admit<'scope>(
        &'scope self,
        scope: &'scope std::thread::Scope<'scope, '_>,
        mut stream: TcpStream,
    ) {
        let active = self.active.load(Ordering::Relaxed);
        if active >= self.cfg.max_connections {
            hostobs::inc("serve_overloaded_total");
            let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
            let reply = Response::Overloaded {
                active: active as u64,
                max: self.cfg.max_connections as u64,
            };
            let _ = write_frame(&mut stream, &reply.encode());
            return;
        }
        self.active.fetch_add(1, Ordering::Relaxed);
        hostobs::set_gauge(
            "serve_active_connections",
            i64::try_from(active + 1).unwrap_or(i64::MAX),
        );
        scope.spawn(move || {
            self.serve_stream(stream);
            let now = self.active.fetch_sub(1, Ordering::Relaxed) - 1;
            hostobs::set_gauge(
                "serve_active_connections",
                i64::try_from(now).unwrap_or(i64::MAX),
            );
        });
    }

    /// One connection's request loop. Frame damage closes the
    /// connection (the client retries idempotently); a malformed but
    /// intact frame gets a typed `Error` and the connection survives.
    fn serve_stream(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(POLL));
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let mut idle = Duration::ZERO;
        loop {
            if self.done.load(Ordering::Relaxed) {
                return;
            }
            match read_frame(&mut stream) {
                Ok(payload) => {
                    idle = Duration::ZERO;
                    let response = match Request::decode(&payload) {
                        Ok(request) => self.handle(&request),
                        Err(e) => {
                            hostobs::inc("serve_decode_errors_total");
                            Response::Error(e)
                        }
                    };
                    if write_frame(&mut stream, &response.encode()).is_err() {
                        return;
                    }
                }
                Err(FrameError::TimedOut) => {
                    idle += POLL;
                    if idle >= self.cfg.read_timeout {
                        return;
                    }
                }
                Err(FrameError::Closed) => return,
                Err(_) => {
                    // Torn frame, checksum mismatch, bad magic, reset:
                    // nothing half-applied, so just drop the connection.
                    hostobs::inc("serve_frame_errors_total");
                    return;
                }
            }
        }
    }

    /// Drains the queue whenever work is pending; exits once draining
    /// was requested and everything reached a terminal state, or the
    /// stop token fired. Returns whether the exit was a cancellation.
    fn drain_loop(&self) -> Result<bool, QueueError> {
        self.advise_lease(true);
        let stop = self.queue.cancel_token();
        loop {
            if stop.is_cancelled() {
                return Ok(true);
            }
            let stats = self.queue.stats();
            if stats.pending > 0 {
                let outcome = self.queue.drain()?;
                self.advise_lease(false);
                if outcome.cancelled {
                    return Ok(true);
                }
            } else if self.draining.load(Ordering::Relaxed) && stats.leased == 0 {
                return Ok(false);
            } else {
                std::thread::sleep(POLL);
            }
        }
    }

    /// Satellite concern: compare the configured lease deadline against
    /// the p99-derived suggestion and raise it (with a warning) when a
    /// user configured a deadline shorter than observed run times.
    fn advise_lease(&self, at_start: bool) {
        let current = self.queue.lease();
        match self.queue.suggested_lease() {
            Some(suggested) => {
                if at_start {
                    eprintln!(
                        "serve: suggested lease deadline {}ms (4x observed p99 run time); configured {}ms",
                        suggested.as_millis(),
                        current.as_millis()
                    );
                }
                if current < suggested {
                    eprintln!(
                        "serve: warning: lease deadline {}ms is below the suggested {}ms; raising it to avoid spurious lease expiries",
                        current.as_millis(),
                        suggested.as_millis()
                    );
                    self.queue.set_lease(suggested);
                    hostobs::inc("serve_lease_raises_total");
                }
            }
            None if at_start => eprintln!(
                "serve: no run history yet; keeping configured lease deadline {}ms",
                current.as_millis()
            ),
            None => {}
        }
    }
}

fn status_of(stats: &QueueStats) -> StatusReply {
    StatusReply {
        pending: stats.pending as u64,
        leased: stats.leased as u64,
        committed: stats.committed as u64,
        failed: stats.failed as u64,
        quarantined: stats.quarantined as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_driver::{mode_from_label, QueueConfig, RetryPolicy, TelemetryConfig, WorkloadFn};
    use ffsim_emu::Memory;
    use ffsim_isa::{Asm, Reg};
    use ffsim_uarch::CoreConfig;
    use std::path::{Path, PathBuf};

    fn workload(trips: i64) -> WorkloadFn {
        Arc::new(move || {
            let i = Reg::new(1);
            let mut a = Asm::new();
            a.li(i, trips);
            a.label("loop");
            a.addi(i, i, -1);
            a.bnez(i, "loop");
            a.halt();
            Ok((a.assemble()?, Memory::new()))
        })
    }

    fn factory() -> JobFactory {
        Arc::new(|spec: &JobSpec| {
            let mode = mode_from_label(&spec.mode).ok_or_else(|| format!("mode {}", spec.mode))?;
            if spec.workload != "countdown" {
                return Err(format!("unknown workload `{}`", spec.workload));
            }
            Ok(Job::new(&spec.id, mode, workload(spec.arg))
                .with_core(CoreConfig::tiny_for_tests())
                .with_priority(spec.priority))
        })
    }

    fn tmp_dir(name: &str) -> PathBuf {
        // CARGO_TARGET_TMPDIR only exists for integration tests; unit
        // tests get a namespaced corner of the system temp dir.
        let dir = std::env::temp_dir().join("ffsim_serve_unit").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn qcfg(dir: &Path) -> QueueConfig {
        QueueConfig {
            workers: 1,
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            default_timeout: Some(Duration::from_secs(60)),
            telemetry: TelemetryConfig::default(),
            ..QueueConfig::new(dir)
        }
    }

    fn server(name: &str) -> CampaignServer {
        let queue = JobQueue::open(qcfg(&tmp_dir(name))).expect("queue opens");
        CampaignServer::new(queue, factory(), ServeConfig::default())
    }

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            mode: "wpemul".into(),
            workload: "countdown".into(),
            arg: 30,
            priority: 0,
        }
    }

    fn submit_req(campaign: &str, job: JobSpec) -> Request {
        Request::Submit {
            request_id: job.digest(campaign),
            campaign: campaign.into(),
            job,
        }
    }

    fn register_req(campaign: &str, quota: Option<u64>) -> Request {
        Request::Register {
            campaign: campaign.into(),
            weight: 1,
            priority: 0,
            quota,
        }
    }

    #[test]
    fn duplicate_submit_dedups_instead_of_double_enqueueing() {
        let server = server("serve_dedup");
        assert_eq!(server.handle(&register_req("alpha", None)), Response::Ok);
        let request = submit_req("alpha", spec("alpha/j0"));
        assert_eq!(
            server.handle(&request),
            Response::Submitted {
                outcome: SubmitOutcome::Accepted,
                deduped: false
            }
        );
        // The retry replays the recorded decision; the queue still holds
        // exactly one live copy.
        assert_eq!(
            server.handle(&request),
            Response::Submitted {
                outcome: SubmitOutcome::Accepted,
                deduped: true
            }
        );
        assert_eq!(server.queue().stats().pending, 1);
    }

    #[test]
    fn post_restart_retry_of_a_journaled_submit_is_idempotent() {
        let server = server("serve_dup_job");
        assert_eq!(server.handle(&register_req("alpha", None)), Response::Ok);
        let request = submit_req("alpha", spec("alpha/j0"));
        assert_eq!(
            server.handle(&request),
            Response::Submitted {
                outcome: SubmitOutcome::Accepted,
                deduped: false
            }
        );
        // Simulate the ack (and the dedup map) dying with the process:
        // the retry goes down the queue's DuplicateJob path and must
        // still be an idempotent success.
        server.state().dedup.clear();
        assert_eq!(
            server.handle(&request),
            Response::Submitted {
                outcome: SubmitOutcome::Accepted,
                deduped: true
            }
        );
        assert_eq!(server.queue().stats().pending, 1);
    }

    #[test]
    fn forged_request_ids_are_refused() {
        let server = server("serve_forged");
        assert_eq!(server.handle(&register_req("alpha", None)), Response::Ok);
        let response = server.handle(&Request::Submit {
            request_id: "0000000000000000".into(),
            campaign: "alpha".into(),
            job: spec("alpha/j0"),
        });
        assert!(
            matches!(response, Response::Error(ref e) if e.contains("content digest")),
            "got {response:?}"
        );
        assert_eq!(server.queue().stats().pending, 0);
    }

    #[test]
    fn admission_quota_rejects_distinctly_from_saturation() {
        let server = server("serve_quota");
        assert_eq!(server.handle(&register_req("alpha", Some(1))), Response::Ok);
        assert_eq!(
            server.handle(&submit_req("alpha", spec("alpha/j0"))),
            Response::Submitted {
                outcome: SubmitOutcome::Accepted,
                deduped: false
            }
        );
        assert_eq!(
            server.handle(&submit_req("alpha", spec("alpha/j1"))),
            Response::QuotaExceeded {
                campaign: "alpha".into(),
                live: 1,
                quota: 1
            }
        );
        assert_eq!(server.quota_rejections().get("alpha"), Some(&1));
        // The rejection surfaces in the queue-wait appendix, labelled as
        // quota (not saturation).
        let appendix =
            report::render_queue_waits(&server.queue().wait_hists(), &server.quota_rejections());
        assert!(
            appendix.contains("admission-quota rejections"),
            "{appendix}"
        );
        assert!(appendix.contains("alpha: 1 submit(s)"), "{appendix}");
    }

    #[test]
    fn draining_refuses_new_submits_but_answers_reads() {
        let server = server("serve_draining");
        assert_eq!(server.handle(&register_req("alpha", None)), Response::Ok);
        assert_eq!(server.handle(&Request::Shutdown), Response::Ok);
        assert!(server.draining());
        assert_eq!(
            server.handle(&submit_req("alpha", spec("alpha/j0"))),
            Response::Draining
        );
        assert!(matches!(
            server.handle(&Request::Status),
            Response::Stats(_)
        ));
    }

    #[test]
    fn saturation_passes_through_depth_and_capacity_untouched() {
        let dir = tmp_dir("serve_saturated");
        let queue = JobQueue::open(QueueConfig {
            capacity: 2,
            ..qcfg(&dir)
        })
        .expect("queue opens");
        let server = CampaignServer::new(queue, factory(), ServeConfig::default());
        assert_eq!(server.handle(&register_req("alpha", None)), Response::Ok);
        for id in ["alpha/j0", "alpha/j1"] {
            assert!(matches!(
                server.handle(&submit_req("alpha", spec(id))),
                Response::Submitted { .. }
            ));
        }
        assert_eq!(
            server.handle(&submit_req("alpha", spec("alpha/j2"))),
            Response::Saturated {
                depth: 2,
                capacity: 2
            }
        );
        // Backpressure is not recorded: once there is room, the same
        // request id succeeds for real instead of replaying a rejection.
        let outcome = server.queue().drain().expect("drain");
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(
            server.handle(&submit_req("alpha", spec("alpha/j2"))),
            Response::Submitted {
                outcome: SubmitOutcome::Accepted,
                deduped: false
            }
        );
    }

    #[test]
    fn run_serves_drains_and_reports_over_a_real_socket() {
        let server = server("serve_socket");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let running = scope.spawn(|| server.run(listener).expect("run"));
            let mut stream = TcpStream::connect(addr).expect("connect");
            let mut call = |request: &Request| -> Response {
                write_frame(&mut stream, &request.encode()).expect("write");
                Response::decode(&read_frame(&mut stream).expect("read")).expect("decode")
            };
            assert_eq!(call(&register_req("alpha", None)), Response::Ok);
            assert_eq!(
                call(&submit_req("alpha", spec("alpha/j0"))),
                Response::Submitted {
                    outcome: SubmitOutcome::Accepted,
                    deduped: false
                }
            );
            assert_eq!(call(&Request::Shutdown), Response::Ok);
            let outcome = running.join().expect("no panic");
            assert!(!outcome.cancelled);
            assert!(outcome.report.contains("alpha/j0"), "{}", outcome.report);
            assert_eq!(outcome.requests, 3);
        });
    }
}
