//! The retrying client: idempotent requests over disposable
//! connections.
//!
//! [`ServeClient`] never trusts a connection: every transport or frame
//! error drops the socket, waits out the driver's [`RetryPolicy`]
//! backoff (deterministic FNV jitter keyed by the request content — the
//! same scheme job attempts use), reconnects, and re-sends the *same*
//! bytes. Because a submit's request id is the content digest, the
//! server-side dedup collapses any number of retries into one enqueue:
//! the client can be killed and restarted at any byte offset of any
//! attempt and the queue still sees the submit exactly once.
//!
//! Typed backpressure ([`Response::Saturated`],
//! [`Response::Overloaded`]) is retried the same way — it means "later",
//! not "never" — while typed rejections (`QuotaExceeded`, `Draining`,
//! `Error`) surface to the caller immediately.

use crate::proto::{
    read_frame, write_frame, FrameError, JobSpec, PoisonEntry, Request, Response, StatusReply,
    SubmitOutcome,
};
use ffsim_driver::fnv::fnv1a;
use ffsim_driver::RetryPolicy;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Any byte stream usable as a client connection (blanket-implemented).
pub trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// Produces a fresh connection per attempt. Returning an error is a
/// retryable condition (the server may be mid-restart).
pub type Connector = Box<dyn FnMut() -> io::Result<Box<dyn Conn>> + Send>;

/// Why a client call gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The retry budget ran out without a response; carries the last
    /// transport/frame/backpressure condition seen.
    Exhausted(String),
    /// The server answered with a typed rejection that retrying cannot
    /// fix (malformed request, unknown campaign, quota, draining).
    Rejected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Exhausted(last) => write!(f, "retries exhausted: {last}"),
            ClientError::Rejected(why) => write!(f, "rejected: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A campaign-service client with deterministic retry.
pub struct ServeClient {
    connector: Connector,
    retry: RetryPolicy,
    conn: Option<Box<dyn Conn>>,
}

impl fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeClient")
            .field("retry", &self.retry)
            .field("connected", &self.conn.is_some())
            .finish_non_exhaustive()
    }
}

impl ServeClient {
    /// A client over an arbitrary connector (tests inject
    /// [`FaultyTransport`](crate::FaultyTransport) here).
    #[must_use]
    pub fn new(connector: Connector, retry: RetryPolicy) -> ServeClient {
        ServeClient {
            connector,
            retry,
            conn: None,
        }
    }

    /// A TCP client for `addr` (e.g. `127.0.0.1:47613`) with the given
    /// per-read deadline.
    #[must_use]
    pub fn tcp(addr: String, io_timeout: Duration, retry: RetryPolicy) -> ServeClient {
        ServeClient::new(
            Box::new(move || {
                let stream = TcpStream::connect(&addr)?;
                stream.set_read_timeout(Some(io_timeout))?;
                stream.set_write_timeout(Some(io_timeout))?;
                Ok(Box::new(stream) as Box<dyn Conn>)
            }),
            retry,
        )
    }

    fn conn(&mut self) -> io::Result<&mut Box<dyn Conn>> {
        if self.conn.is_none() {
            self.conn = Some((self.connector)()?);
        }
        Ok(self.conn.as_mut().expect("just installed"))
    }

    /// Sends `request` until a response arrives, retrying transport
    /// faults and typed backpressure with the policy's deterministic
    /// jittered backoff. Every attempt re-sends identical bytes, so
    /// retried submits are deduplicated server-side.
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] once the retry budget is spent.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.encode();
        // The backoff jitter key is the content digest of the request,
        // so a fleet of clients retrying distinct submits de-syncs
        // deterministically instead of thundering in lockstep.
        let key = format!("{:016x}", fnv1a(&payload));
        let attempts = self.retry.max_attempts.max(1);
        let mut last = String::from("no attempt made");
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = self.retry.backoff(&key, attempt - 1);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            match self.attempt(&payload) {
                Ok(Response::Saturated { depth, capacity }) => {
                    self.conn = None;
                    last = format!("saturated ({depth}/{capacity})");
                }
                Ok(Response::Overloaded { active, max }) => {
                    self.conn = None;
                    last = format!("overloaded ({active}/{max} connections)");
                }
                Ok(response) => return Ok(response),
                Err(e) => {
                    // Any transport doubt poisons the connection; the
                    // next attempt starts from a fresh socket.
                    self.conn = None;
                    last = e;
                }
            }
        }
        Err(ClientError::Exhausted(last))
    }

    /// One wire round-trip; any error string is retryable.
    fn attempt(&mut self, payload: &[u8]) -> Result<Response, String> {
        let conn = self.conn().map_err(|e| format!("connect: {e}"))?;
        write_frame(conn.as_mut(), payload).map_err(|e| format!("send: {e}"))?;
        let reply = match read_frame(conn.as_mut()) {
            Ok(reply) => reply,
            // The read deadline mid-silence is retryable too: the reply
            // may be lost, and idempotency makes re-asking safe.
            Err(FrameError::TimedOut) => return Err("reply deadline expired".into()),
            Err(e) => return Err(format!("recv: {e}")),
        };
        Response::decode(&reply).map_err(|e| format!("decode: {e}"))
    }

    // ------------------------------------------------------------------
    // Typed helpers.
    // ------------------------------------------------------------------

    /// Registers (or re-registers) a campaign, optionally with an
    /// admission quota.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a typed rejection.
    pub fn register(
        &mut self,
        campaign: &str,
        weight: u32,
        priority: i32,
        quota: Option<u64>,
    ) -> Result<(), ClientError> {
        let response = self.call(&Request::Register {
            campaign: campaign.to_string(),
            weight,
            priority,
            quota,
        })?;
        match response {
            Response::Ok => Ok(()),
            other => Err(rejected(&other)),
        }
    }

    /// Submits one job idempotently; returns what the queue did and
    /// whether the answer came from the server's dedup map.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a typed rejection (quota,
    /// draining, malformed spec).
    pub fn submit(
        &mut self,
        campaign: &str,
        job: JobSpec,
    ) -> Result<(SubmitOutcome, bool), ClientError> {
        let request = Request::Submit {
            request_id: job.digest(campaign),
            campaign: campaign.to_string(),
            job,
        };
        match self.call(&request)? {
            Response::Submitted { outcome, deduped } => Ok((outcome, deduped)),
            other => Err(rejected(&other)),
        }
    }

    /// Fetches aggregate queue counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a typed rejection.
    pub fn status(&mut self) -> Result<StatusReply, ClientError> {
        match self.call(&Request::Status)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(rejected(&other)),
        }
    }

    /// Fetches the poison-job list.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a typed rejection.
    pub fn poison_list(&mut self) -> Result<Vec<PoisonEntry>, ClientError> {
        match self.call(&Request::PoisonList)? {
            Response::Poison(jobs) => Ok(jobs),
            other => Err(rejected(&other)),
        }
    }

    /// Fetches the deterministic merged campaign report.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a typed rejection.
    pub fn report(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::DrainReport)? {
            Response::Report(text) => Ok(text),
            other => Err(rejected(&other)),
        }
    }

    /// Fires the service-wide stop token.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a typed rejection.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Cancel)? {
            Response::Ok => Ok(()),
            other => Err(rejected(&other)),
        }
    }

    /// Requests a graceful drain-and-exit.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on exhaustion or a typed rejection.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(rejected(&other)),
        }
    }
}

fn rejected(response: &Response) -> ClientError {
    ClientError::Rejected(match response {
        Response::Error(e) => e.clone(),
        Response::Draining => "server is draining; submits are closed".to_string(),
        Response::QuotaExceeded {
            campaign,
            live,
            quota,
        } => format!("campaign `{campaign}` at admission quota ({live}/{quota})"),
        other => format!("unexpected response {other:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FaultyTransport;
    use std::io::Cursor;
    use std::sync::{Arc, Mutex};

    /// A scripted connection: reads serve pre-encoded reply frames,
    /// writes accumulate into a shared transcript.
    struct ScriptConn {
        reads: Cursor<Vec<u8>>,
        writes: Arc<Mutex<Vec<u8>>>,
    }

    impl Read for ScriptConn {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.reads.read(buf)
        }
    }

    impl Write for ScriptConn {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.writes.lock().expect("transcript").write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn reply_bytes(responses: &[Response]) -> Vec<u8> {
        let mut wire = Vec::new();
        for response in responses {
            write_frame(&mut wire, &response.encode()).expect("encode reply");
        }
        wire
    }

    fn zero_backoff(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    fn spec() -> JobSpec {
        JobSpec {
            id: "alpha/j0".into(),
            mode: "wpemul".into(),
            workload: "countdown".into(),
            arg: 30,
            priority: 0,
        }
    }

    #[test]
    fn retries_a_torn_write_with_identical_bytes() {
        let transcript = Arc::new(Mutex::new(Vec::new()));
        let accepted = Response::Submitted {
            outcome: SubmitOutcome::Accepted,
            deduped: true,
        };
        let reply = reply_bytes(&[accepted]);
        let script = transcript.clone();
        let mut calls = 0u32;
        let connector: Connector = Box::new(move || {
            calls += 1;
            let conn = ScriptConn {
                reads: Cursor::new(reply.clone()),
                writes: script.clone(),
            };
            Ok(if calls == 1 {
                // First attempt: the pipe breaks 9 bytes into the frame.
                Box::new(FaultyTransport::new(conn).cut_write_after(9)) as Box<dyn Conn>
            } else {
                Box::new(conn) as Box<dyn Conn>
            })
        });
        let mut client = ServeClient::new(connector, zero_backoff(3));
        let (outcome, deduped) = client
            .submit("alpha", spec())
            .expect("second attempt lands");
        assert_eq!(outcome, SubmitOutcome::Accepted);
        assert!(deduped, "server saw the retry as a duplicate");

        // The retry sent the exact same frame: the transcript is the
        // torn 9-byte prefix followed by one complete copy of it.
        let bytes = transcript.lock().expect("transcript").clone();
        assert_eq!(&bytes[..9], &bytes[9..18], "identical resend");
        let full = &bytes[9..];
        let request = Request::decode(&read_frame(&mut Cursor::new(full.to_vec())).expect("frame"))
            .expect("decode");
        match request {
            Request::Submit { request_id, .. } => {
                assert_eq!(request_id, spec().digest("alpha"));
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn backpressure_is_retried_not_surfaced() {
        let transcript = Arc::new(Mutex::new(Vec::new()));
        let mut scripts = vec![
            reply_bytes(&[Response::Submitted {
                outcome: SubmitOutcome::Accepted,
                deduped: false,
            }]),
            reply_bytes(&[Response::Saturated {
                depth: 4,
                capacity: 4,
            }]),
        ];
        let script = transcript.clone();
        let connector: Connector = Box::new(move || {
            Ok(Box::new(ScriptConn {
                reads: Cursor::new(scripts.pop().expect("scripted")),
                writes: script.clone(),
            }) as Box<dyn Conn>)
        });
        let mut client = ServeClient::new(connector, zero_backoff(3));
        let (outcome, deduped) = client.submit("alpha", spec()).expect("after backpressure");
        assert_eq!((outcome, deduped), (SubmitOutcome::Accepted, false));
    }

    #[test]
    fn exhaustion_reports_the_last_failure() {
        let connector: Connector = Box::new(|| {
            Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "server is restarting",
            ))
        });
        let mut client = ServeClient::new(connector, zero_backoff(2));
        let err = client.status().expect_err("never connects");
        match err {
            ClientError::Exhausted(last) => assert!(last.contains("connect"), "{last}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn typed_rejections_are_not_retried() {
        let mut served = 0u32;
        let connector: Connector = Box::new(move || {
            served += 1;
            assert_eq!(served, 1, "a rejection must not trigger a retry");
            Ok(Box::new(ScriptConn {
                reads: Cursor::new(reply_bytes(&[Response::Draining])),
                writes: Arc::new(Mutex::new(Vec::new())),
            }) as Box<dyn Conn>)
        });
        let mut client = ServeClient::new(connector, zero_backoff(5));
        let err = client.submit("alpha", spec()).expect_err("draining");
        assert!(matches!(err, ClientError::Rejected(ref why) if why.contains("draining")));
    }
}
