//! Property-based tests for the timing model and the wrong-path
//! techniques: timestamp ordering, window invariants, reconstruction
//! chain integrity, recovery soundness, and simulator determinism.

use ffsim_core::{
    reconstruct, recover_addresses, CodeCache, ConvergenceConfig, ConvergenceStats, ObsConfig,
    Pipeline, SimConfig, Simulator, WpInst, WrongPathMode,
};
use ffsim_emu::{DynInst, MemAccess, Memory};
use ffsim_isa::{AluOp, Instr, MemWidth, Program, Reg, INSTR_BYTES};
use ffsim_uarch::{BranchPredictor, CoreConfig};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (1u8..30).prop_map(Reg::new)
}

/// Straight-line instructions with occasional aligned loads off a fixed
/// base register (x30, set up by the test driver).
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Alu {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2: Reg::new(9)
        }),
        (arb_reg(), 0i64..128).prop_map(|(rd, w)| Instr::Load {
            rd,
            base: Reg::new(30),
            offset: w * 8,
            width: MemWidth::D,
            signed: false,
        }),
        (arb_reg(), 0i64..128).prop_map(|(src, w)| Instr::Store {
            src,
            base: Reg::new(30),
            offset: w * 8,
            width: MemWidth::D,
        }),
        Just(Instr::Nop),
    ]
}

fn mem_of(instr: &Instr) -> Option<MemAccess> {
    match instr {
        Instr::Load { offset, .. } => Some(MemAccess {
            addr: 0x10_0000u64 + *offset as u64,
            size: 8,
            is_store: false,
        }),
        Instr::Store { offset, .. } => Some(MemAccess {
            addr: 0x10_0000u64 + *offset as u64,
            size: 8,
            is_store: true,
        }),
        _ => None,
    }
}

proptest! {
    /// Pipeline stages are causally ordered for every instruction, and
    /// global cycle count never decreases.
    #[test]
    fn pipeline_timestamps_are_ordered(instrs in proptest::collection::vec(arb_instr(), 1..300)) {
        let mut p = Pipeline::new(CoreConfig::tiny_for_tests());
        let cfg = CoreConfig::tiny_for_tests();
        let mut pc = 0x1000u64;
        let mut last_cycles = 0;
        for instr in &instrs {
            let t = p.feed_correct(pc, instr, mem_of(instr));
            prop_assert!(t.fetch <= t.dispatch);
            prop_assert!(t.dispatch >= t.fetch + cfg.frontend_depth);
            prop_assert!(t.dispatch <= t.issue);
            prop_assert!(t.issue < t.complete);
            prop_assert!(p.cycles() > t.complete - 1, "retire at or after completion");
            prop_assert!(p.cycles() >= last_cycles);
            last_cycles = p.cycles();
            pc += INSTR_BYTES;
        }
        prop_assert_eq!(p.retired(), instrs.len() as u64);
        prop_assert_eq!(p.wrong_path_injected(), 0);
    }

    /// Wrong-path injection with register snapshot/restore never slows the
    /// *dataflow* of subsequent correct-path instructions: a consumer of a
    /// register written only by squashed instructions is not delayed by
    /// them.
    #[test]
    fn wrong_path_register_writes_never_leak(
        wp_instrs in proptest::collection::vec(arb_instr(), 1..64),
        resolve in 1u64..5000,
    ) {
        let mut p = Pipeline::new(CoreConfig::tiny_for_tests());
        let snap = p.snapshot_regs();
        let mut window = p.begin_wrong_path();
        let mut pc = 0x2000u64;
        for instr in &wp_instrs {
            let _ = p.feed_wrong(&mut window, pc, instr, mem_of(instr),
                                 ffsim_core::LoadTiming::AssumeL1Hit, resolve);
            pc += INSTR_BYTES;
        }
        p.restore_regs(snap);
        prop_assert_eq!(p.snapshot_regs(), snap);
        prop_assert_eq!(p.retired(), 0);
        prop_assert_eq!(p.wrong_path_injected(), wp_instrs.len() as u64);
    }

    /// Reconstruction produces a well-chained sequence: every pc is in the
    /// code cache, non-branch successors are sequential, and length never
    /// exceeds the budget.
    #[test]
    fn reconstruction_chains_are_well_formed(
        instrs in proptest::collection::vec(arb_instr(), 1..100),
        budget in 0usize..128,
        start_idx in 0usize..100,
    ) {
        let base = 0x4000u64;
        let mut cc = CodeCache::unbounded();
        for (i, instr) in instrs.iter().enumerate() {
            cc.insert(base + i as u64 * INSTR_BYTES, *instr);
        }
        let predictor = BranchPredictor::new(CoreConfig::tiny_for_tests().branch);
        let start = base + (start_idx % instrs.len()) as u64 * INSTR_BYTES;
        let wp = reconstruct(&mut cc, &predictor, start, budget);
        prop_assert!(wp.len() <= budget);
        for (i, w) in wp.iter().enumerate() {
            prop_assert!(cc.contains(w.pc), "reconstructed pc must come from the cache");
            prop_assert!(w.mem.is_none(), "reconstruction cannot know addresses");
            if !w.instr.is_branch() {
                prop_assert_eq!(w.next_pc, w.pc + INSTR_BYTES);
            }
            if i + 1 < wp.len() {
                prop_assert_eq!(wp[i + 1].pc, w.next_pc, "chain must follow next_pc");
            }
        }
    }

    /// Recovery soundness: every recovered address comes from a future
    /// instruction at the same pc, and non-memory instructions are never
    /// given addresses.
    #[test]
    fn recovery_is_sound(
        instrs in proptest::collection::vec(arb_instr(), 1..80),
        skip in 0usize..8,
    ) {
        // Future = the instruction sequence with real addresses; wrong
        // path = the same sequence offset by `skip` (converging suffix).
        let base = 0x4000u64;
        let future: Vec<DynInst> = instrs
            .iter()
            .enumerate()
            .map(|(i, instr)| DynInst {
                seq: i as u64,
                pc: base + i as u64 * INSTR_BYTES,
                instr: *instr,
                mem: mem_of(instr),
                branch: None,
                next_pc: base + (i as u64 + 1) * INSTR_BYTES,
            })
            .collect();
        let mut wp: Vec<WpInst> = future
            .iter()
            .skip(skip.min(instrs.len().saturating_sub(1)))
            .map(|d| WpInst {
                pc: d.pc,
                instr: d.instr,
                mem: None,
                next_pc: d.next_pc,
            })
            .collect();
        let mut stats = ConvergenceStats::default();
        let result = recover_addresses(&mut wp, &future, &ConvergenceConfig::default(), &mut stats);
        if !wp.is_empty() {
            prop_assert!(result.is_some(), "identical suffix must converge");
        }
        for w in &wp {
            if let Some(m) = w.mem {
                let f = future.iter().find(|f| f.pc == w.pc).expect("pc exists");
                prop_assert_eq!(Some(m), f.mem, "recovered address must match future");
                prop_assert!(w.instr.is_mem());
            }
        }
        prop_assert!(stats.converged <= stats.branch_misses_checked);
    }

    /// Bounded code caches never exceed their capacity.
    #[test]
    fn code_cache_capacity_is_respected(
        cap in 1usize..64,
        pcs in proptest::collection::vec(0u64..4096, 1..300),
    ) {
        let mut cc = CodeCache::with_capacity(cap);
        for pc in pcs {
            cc.insert(pc * 4, Instr::Nop);
            prop_assert!(cc.len() <= cap);
        }
    }

    /// Full-simulator determinism over random straight-line programs with
    /// a loop wrapper, across all four modes.
    #[test]
    fn simulator_is_deterministic_across_modes(
        body in proptest::collection::vec(arb_instr(), 1..40),
        trip in 1i64..40,
    ) {
        // do { body } while (--x1): exercises branch prediction and, on
        // the final iteration, a wrong path.
        let base = 0x1000u64;
        let mut instrs = vec![
            Instr::LoadImm { rd: Reg::new(31), imm: trip },
            Instr::LoadImm { rd: Reg::new(30), imm: 0x10_0000 },
        ];
        let loop_start = base + instrs.len() as u64 * INSTR_BYTES;
        instrs.extend(body.iter().copied());
        instrs.push(Instr::AluImm { op: AluOp::Add, rd: Reg::new(31), rs1: Reg::new(31), imm: -1 });
        instrs.push(Instr::Branch {
            cond: ffsim_isa::BranchCond::Ne,
            rs1: Reg::new(31),
            rs2: Reg::ZERO,
            target: loop_start,
        });
        instrs.push(Instr::Halt);
        let program = Program::new(base, instrs);

        for mode in WrongPathMode::ALL {
            let cfg = SimConfig::with_core(CoreConfig::tiny_for_tests(), mode);
            let r1 = Simulator::new(program.clone(), Memory::new(), cfg.clone()).unwrap().run().unwrap();
            let r2 = Simulator::new(program.clone(), Memory::new(), cfg).unwrap().run().unwrap();
            prop_assert_eq!(r1.cycles, r2.cycles, "{} must be deterministic", mode);
            prop_assert_eq!(r1.instructions, r2.instructions);
            prop_assert_eq!(r1.wrong_path_instructions, r2.wrong_path_instructions);
            prop_assert_eq!(r1.state_digest, r2.state_digest);
        }
    }

    /// The handoff batch size is a pure host-speed knob (see DESIGN.md
    /// §"Batched handoff and the block cache"): per-instruction delivery
    /// (`handoff_batch = 1`) and every batched size must produce
    /// bit-identical simulations across all four techniques — same
    /// cycles, retired counts, wrong-path injections, CPI stacks,
    /// technique counters, and final architectural digest.
    #[test]
    fn handoff_batch_size_never_changes_the_simulation(
        body in proptest::collection::vec(arb_instr(), 1..40),
        trip in 1i64..40,
        batch in prop_oneof![Just(3usize), Just(16), Just(64), Just(256)],
    ) {
        let base = 0x1000u64;
        let mut instrs = vec![
            Instr::LoadImm { rd: Reg::new(31), imm: trip },
            Instr::LoadImm { rd: Reg::new(30), imm: 0x10_0000 },
        ];
        let loop_start = base + instrs.len() as u64 * INSTR_BYTES;
        instrs.extend(body.iter().copied());
        instrs.push(Instr::AluImm { op: AluOp::Add, rd: Reg::new(31), rs1: Reg::new(31), imm: -1 });
        instrs.push(Instr::Branch {
            cond: ffsim_isa::BranchCond::Ne,
            rs1: Reg::new(31),
            rs2: Reg::ZERO,
            target: loop_start,
        });
        instrs.push(Instr::Halt);
        let program = Program::new(base, instrs);

        for mode in WrongPathMode::ALL {
            let mut cfg = SimConfig::with_core(CoreConfig::tiny_for_tests(), mode);
            cfg.handoff_batch = 1;
            let per_instr = Simulator::new(program.clone(), Memory::new(), cfg.clone())
                .unwrap().run().unwrap();
            cfg.handoff_batch = batch;
            let batched = Simulator::new(program.clone(), Memory::new(), cfg)
                .unwrap().run().unwrap();
            prop_assert_eq!(per_instr.cycles, batched.cycles,
                "{}: batch {} changed cycles", mode, batch);
            prop_assert_eq!(per_instr.instructions, batched.instructions);
            prop_assert_eq!(per_instr.wrong_path_instructions, batched.wrong_path_instructions,
                "{}: batch {} changed wrong-path injection", mode, batch);
            prop_assert_eq!(per_instr.branch.mispredicts(), batched.branch.mispredicts());
            prop_assert_eq!(per_instr.convergence, batched.convergence);
            prop_assert_eq!(per_instr.code_cache, batched.code_cache);
            prop_assert_eq!(per_instr.state_digest, batched.state_digest);
            prop_assert_eq!(per_instr.cpi.total(), batched.cpi.total());
        }
    }

    /// Observer-effect invariant: enabling CPI/event tracing never changes
    /// the simulated outcome. Same workload, obs on vs. off, across all
    /// four modes — identical cycles, instructions, and state digest.
    #[test]
    fn observability_never_perturbs_the_simulation(
        body in proptest::collection::vec(arb_instr(), 1..40),
        trip in 1i64..40,
    ) {
        let base = 0x1000u64;
        let mut instrs = vec![
            Instr::LoadImm { rd: Reg::new(31), imm: trip },
            Instr::LoadImm { rd: Reg::new(30), imm: 0x10_0000 },
        ];
        let loop_start = base + instrs.len() as u64 * INSTR_BYTES;
        instrs.extend(body.iter().copied());
        instrs.push(Instr::AluImm { op: AluOp::Add, rd: Reg::new(31), rs1: Reg::new(31), imm: -1 });
        instrs.push(Instr::Branch {
            cond: ffsim_isa::BranchCond::Ne,
            rs1: Reg::new(31),
            rs2: Reg::ZERO,
            target: loop_start,
        });
        instrs.push(Instr::Halt);
        let program = Program::new(base, instrs);

        for mode in WrongPathMode::ALL {
            let mut off = SimConfig::with_core(CoreConfig::tiny_for_tests(), mode);
            off.obs = ObsConfig::disabled();
            let quiet = Simulator::new(program.clone(), Memory::new(), off.clone()).unwrap().run().unwrap();
            // Full tracing and profiling-only must both leave the simulated
            // outcome untouched — the phase profiler perturbs wall time,
            // never simulated state.
            for obs in [ObsConfig::enabled(), ObsConfig::profiled()] {
                let tracing = obs.enabled;
                let mut on = off.clone();
                on.obs = obs;
                let observed = Simulator::new(program.clone(), Memory::new(), on).unwrap().run().unwrap();
                prop_assert_eq!(quiet.cycles, observed.cycles, "{}: cycles must not move", mode);
                prop_assert_eq!(quiet.instructions, observed.instructions);
                prop_assert_eq!(quiet.wrong_path_instructions, observed.wrong_path_instructions);
                prop_assert_eq!(quiet.state_digest, observed.state_digest);
                prop_assert_eq!(quiet.cpi.total(), observed.cpi.total());
                let report = observed.obs.as_ref().expect("observed run must produce a report");
                prop_assert!(report.profile.is_enabled(), "profiling is on in both configs");
                prop_assert!(
                    report.profile.phase_agg(ffsim_core::Phase::TimingPipeline).count > 0,
                    "the run loop must record its pipeline scope"
                );
                if !tracing {
                    prop_assert!(report.events.is_empty(), "profile-only mode buffers no events");
                }
            }
            prop_assert!(quiet.obs.is_none(), "disabled run must not allocate a report");
        }
    }

    /// Monotone workload growth: more loop iterations never reduce cycles.
    #[test]
    fn cycles_grow_with_work(extra in 1i64..200) {
        let make = |trips: i64| {
            let mut a = ffsim_isa::Asm::new();
            a.li(Reg::new(1), trips);
            a.label("l");
            a.addi(Reg::new(1), Reg::new(1), -1);
            a.bnez(Reg::new(1), "l");
            a.halt();
            a.assemble().unwrap()
        };
        let cfg = SimConfig::with_core(CoreConfig::tiny_for_tests(), WrongPathMode::NoWrongPath);
        let small = Simulator::new(make(10), Memory::new(), cfg.clone()).unwrap().run().unwrap();
        let large = Simulator::new(make(10 + extra), Memory::new(), cfg).unwrap().run().unwrap();
        prop_assert!(large.cycles > small.cycles);
        prop_assert!(large.instructions > small.instructions);
    }
}
