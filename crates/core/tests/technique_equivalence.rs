//! Cross-technique equivalence: the extracted [`WrongPathTechnique`]
//! strategies must behave exactly like the pre-refactor monolithic
//! dispatch. The oracle below reimplements the old `Simulator::run`
//! mode switch as one monolithic technique built from the same public
//! building blocks (`reconstruct`, `recover_addresses`,
//! `inject_wrong_path`, the replica frontend), and the property drives
//! both through identical random workloads.

use ffsim_core::technique::inject_wrong_path;
use ffsim_core::{
    passive_frontend, reconstruct, recover_addresses, CodeCache, ConvergenceConfig,
    ConvergenceStats, MispredictContext, ObsConfig, ReplicaPolicy, SimConfig, Simulator,
    TechniqueStats, WpInst, WrongPathMode, WrongPathTechnique,
};
use ffsim_emu::{DynInst, Emulator, FetchSource, InstrQueue, Memory};
use ffsim_isa::{AluOp, Instr, MemWidth, Program, Reg, INSTR_BYTES};
use ffsim_uarch::CoreConfig;
use proptest::prelude::*;

/// The pre-refactor behavior, expressed as a single technique holding the
/// union of all per-mode state and branching on `mode` at every hook —
/// exactly the shape `Simulator::run` had before the strategy extraction.
#[derive(Debug)]
struct MonolithOracle {
    mode: WrongPathMode,
    code_cache: CodeCache,
    convergence: ConvergenceConfig,
    budget: usize,
    rob: usize,
    conv_stats: ConvergenceStats,
}

impl MonolithOracle {
    fn new(cfg: &SimConfig) -> MonolithOracle {
        MonolithOracle {
            mode: cfg.mode,
            code_cache: match cfg.code_cache_capacity {
                Some(cap) => CodeCache::with_capacity(cap),
                None => CodeCache::unbounded(),
            },
            convergence: cfg.convergence,
            budget: cfg.core.wrong_path_budget(),
            rob: cfg.core.rob_size,
            conv_stats: ConvergenceStats::default(),
        }
    }
}

impl WrongPathTechnique for MonolithOracle {
    fn mode(&self) -> WrongPathMode {
        self.mode
    }

    fn build_frontend(&self, emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource> {
        if self.mode == WrongPathMode::WrongPathEmulation {
            Box::new(
                InstrQueue::new(
                    emu,
                    ReplicaPolicy::new(cfg.core.branch, cfg.core.wrong_path_budget())
                        .with_pc_corruption(cfg.wp_pc_corruption),
                    cfg.core.queue_depth,
                )
                .with_fault_policy(cfg.fault_policy)
                .with_watchdog(cfg.wrong_path_watchdog)
                .with_trace(cfg.obs.ring()),
            )
        } else {
            passive_frontend(emu, cfg)
        }
    }

    fn on_instruction(&mut self, inst: &DynInst) {
        if self.mode.uses_code_cache() {
            self.code_cache.insert(inst.pc, inst.instr);
        }
    }

    fn on_mispredict(&mut self, cx: &mut MispredictContext<'_>) {
        if self.mode == WrongPathMode::InstructionReconstruction {
            if let Some(start) = cx.wrong_path_start {
                let wp = reconstruct(&mut self.code_cache, cx.predictor, start, self.budget);
                inject_wrong_path(cx.pipeline, &wp, cx.resolve, self.budget, None);
            }
        } else if self.mode == WrongPathMode::ConvergenceExploitation {
            let Some(start) = cx.wrong_path_start else {
                return;
            };
            let mut wp = reconstruct(&mut self.code_cache, cx.predictor, start, self.budget);
            let mut future = Vec::new();
            for i in 0..self.rob {
                match cx.frontend.peek(i) {
                    Some(e) => future.push(e.inst),
                    None => break,
                }
            }
            let _ = recover_addresses(&mut wp, &future, &self.convergence, &mut self.conv_stats);
            inject_wrong_path(
                cx.pipeline,
                &wp,
                cx.resolve,
                self.budget,
                Some(&mut self.conv_stats),
            );
        } else if self.mode == WrongPathMode::WrongPathEmulation {
            if let Some(bundle) = &cx.entry.wrong_path {
                let wp: Vec<WpInst> = bundle.insts.iter().map(WpInst::from_dyn).collect();
                inject_wrong_path(cx.pipeline, &wp, cx.resolve, self.budget, None);
            }
        }
        // NoWrongPath: detection only, nothing injected.
    }

    fn stats(&self) -> TechniqueStats {
        TechniqueStats {
            convergence: self.conv_stats,
            code_cache: self.code_cache.stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.code_cache.reset_stats();
        self.conv_stats = ConvergenceStats::default();
    }
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (1u8..29).prop_map(Reg::new)
}

/// Straight-line bodies with loads/stores off the x30 base set up by the
/// loop wrapper.
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2
        }),
        (arb_reg(), 0i64..64).prop_map(|(rd, w)| Instr::Load {
            rd,
            base: Reg::new(30),
            offset: w * 8,
            width: MemWidth::D,
            signed: false,
        }),
        (arb_reg(), 0i64..64).prop_map(|(src, w)| Instr::Store {
            src,
            base: Reg::new(30),
            offset: w * 8,
            width: MemWidth::D,
        }),
        Just(Instr::Nop),
    ]
}

/// `do { body } while (--x31 != 0)`: branchy enough to mispredict on
/// predictor warmup and on loop exit, so every technique's wrong-path
/// machinery is exercised.
fn loop_program(body: &[Instr], trip: i64) -> Program {
    let base = 0x1000u64;
    let mut instrs = vec![
        Instr::LoadImm {
            rd: Reg::new(31),
            imm: trip,
        },
        Instr::LoadImm {
            rd: Reg::new(30),
            imm: 0x10_0000,
        },
    ];
    let loop_start = base + instrs.len() as u64 * INSTR_BYTES;
    instrs.extend(body.iter().copied());
    instrs.push(Instr::AluImm {
        op: AluOp::Add,
        rd: Reg::new(31),
        rs1: Reg::new(31),
        imm: -1,
    });
    instrs.push(Instr::Branch {
        cond: ffsim_isa::BranchCond::Ne,
        rs1: Reg::new(31),
        rs2: Reg::ZERO,
        target: loop_start,
    });
    instrs.push(Instr::Halt);
    Program::new(base, instrs)
}

proptest! {
    /// For every mode, the registry-built technique and the monolithic
    /// oracle produce bit-identical results: same cycles, same injected
    /// wrong path, same technique-owned counters, same final state.
    #[test]
    fn techniques_match_the_pre_refactor_monolith(
        body in proptest::collection::vec(arb_instr(), 1..32),
        trip in 1i64..32,
        bounded_cache in (0u8..2).prop_map(|b| b == 1),
    ) {
        let program = loop_program(&body, trip);
        for mode in WrongPathMode::ALL {
            let mut cfg = SimConfig::with_core(CoreConfig::tiny_for_tests(), mode);
            cfg.obs = ObsConfig::disabled();
            if bounded_cache {
                cfg.code_cache_capacity = Some(16);
            }
            let refactored = Simulator::new(program.clone(), Memory::new(), cfg.clone())
                .unwrap()
                .run()
                .unwrap();
            let oracle = Simulator::with_technique(
                program.clone(),
                Memory::new(),
                cfg.clone(),
                Box::new(MonolithOracle::new(&cfg)),
            )
            .unwrap()
            .run()
            .unwrap();

            prop_assert_eq!(refactored.cycles, oracle.cycles, "{}: cycles diverged", mode);
            prop_assert_eq!(refactored.instructions, oracle.instructions);
            prop_assert_eq!(
                refactored.wrong_path_instructions,
                oracle.wrong_path_instructions,
                "{}: wrong-path injection diverged", mode
            );
            prop_assert_eq!(
                refactored.branch.mispredicts(),
                oracle.branch.mispredicts()
            );
            prop_assert_eq!(refactored.convergence, oracle.convergence);
            // Code-cache counters match everywhere except instruction
            // reconstruction, whose fused reconstruct+inject walk probes
            // only the prefix the pipeline consumes; the eager oracle
            // reconstructs the full budget, so it counts more probes. The
            // injected stream and timing still match exactly (asserted
            // above via cycles / wrong_path_instructions / digest).
            if mode != WrongPathMode::InstructionReconstruction {
                prop_assert_eq!(refactored.code_cache, oracle.code_cache);
            }
            prop_assert_eq!(refactored.state_digest, oracle.state_digest);
            prop_assert_eq!(refactored.cpi.total(), oracle.cpi.total());
        }
    }
}

/// The same equivalence holds across the warmup boundary, where
/// `reset_stats` must clear counters without cooling technique state
/// (code-cache contents survive, statistics do not).
#[test]
fn warmup_reset_matches_the_monolith() {
    let body: Vec<Instr> = (0..8)
        .map(|i| Instr::Load {
            rd: Reg::new(1 + (i % 8) as u8),
            base: Reg::new(30),
            offset: i * 8,
            width: MemWidth::D,
            signed: false,
        })
        .collect();
    let program = loop_program(&body, 24);
    for mode in WrongPathMode::ALL {
        let mut cfg = SimConfig::with_core(CoreConfig::tiny_for_tests(), mode);
        cfg.obs = ObsConfig::disabled();
        cfg.warmup_instructions = 50;
        let refactored = Simulator::new(program.clone(), Memory::new(), cfg.clone())
            .unwrap()
            .run()
            .unwrap();
        let oracle = Simulator::with_technique(
            program.clone(),
            Memory::new(),
            cfg.clone(),
            Box::new(MonolithOracle::new(&cfg)),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(refactored.cycles, oracle.cycles, "{mode}: cycles diverged");
        assert_eq!(refactored.instructions, oracle.instructions);
        assert_eq!(
            refactored.wrong_path_instructions,
            oracle.wrong_path_instructions
        );
        assert_eq!(refactored.convergence, oracle.convergence);
        // See techniques_match_the_pre_refactor_monolith: instrec's fused
        // walk probes fewer pcs than the eager oracle.
        if mode != WrongPathMode::InstructionReconstruction {
            assert_eq!(refactored.code_cache, oracle.code_cache);
        }
        assert_eq!(refactored.state_digest, oracle.state_digest);
    }
}
