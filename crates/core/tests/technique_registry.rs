//! Trait-object smoke test: a fifth, out-of-tree technique registers in
//! the [`TechniqueRegistry`] and runs through the unchanged `Simulator`
//! run loop — the extension seam the strategy layer exists for.

use ffsim_core::{
    passive_frontend, ConvergenceStats, MispredictContext, ObsConfig, SimConfig, Simulator,
    TechniqueRegistry, TechniqueStats, WrongPathMode, WrongPathTechnique,
};
use ffsim_emu::{Emulator, FetchSource, Memory};
use ffsim_isa::{Asm, Program, Reg};
use ffsim_uarch::CoreConfig;

/// Injects nothing (so timing matches `nowp` exactly) but counts every
/// misprediction the run loop hands it, reporting the count through the
/// stats seam.
#[derive(Debug, Default)]
struct CountingTechnique {
    mispredicts_seen: u64,
    resolves_seen: u64,
}

impl WrongPathTechnique for CountingTechnique {
    fn mode(&self) -> WrongPathMode {
        WrongPathMode::NoWrongPath
    }

    fn build_frontend(&self, emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource> {
        passive_frontend(emu, cfg)
    }

    fn on_mispredict(&mut self, _cx: &mut MispredictContext<'_>) {
        self.mispredicts_seen += 1;
    }

    fn on_resolve(&mut self, _resolve: u64) {
        self.resolves_seen += 1;
    }

    fn stats(&self) -> TechniqueStats {
        TechniqueStats {
            convergence: ConvergenceStats {
                branch_misses_checked: self.mispredicts_seen,
                ..ConvergenceStats::default()
            },
            ..TechniqueStats::default()
        }
    }

    fn reset_stats(&mut self) {
        self.mispredicts_seen = 0;
        self.resolves_seen = 0;
    }
}

fn branchy_program() -> Program {
    let mut a = Asm::new();
    a.li(Reg::new(1), 200);
    a.label("loop");
    a.addi(Reg::new(2), Reg::new(2), 3);
    a.addi(Reg::new(1), Reg::new(1), -1);
    a.bnez(Reg::new(1), "loop");
    a.halt();
    a.assemble().unwrap()
}

fn cfg_for(mode: WrongPathMode) -> SimConfig {
    let mut cfg = SimConfig::with_core(CoreConfig::tiny_for_tests(), mode);
    cfg.obs = ObsConfig::disabled();
    cfg
}

#[test]
fn fifth_technique_registers_and_shadows_by_mode() {
    let mut registry = TechniqueRegistry::builtin();
    assert_eq!(registry.len(), 4);
    registry.register("counting", WrongPathMode::NoWrongPath, |_cfg| {
        Box::new(CountingTechnique::default())
    });
    assert_eq!(registry.len(), 5);
    let labels: Vec<&str> = registry.entries().map(|(l, _)| l).collect();
    assert_eq!(
        labels,
        vec!["nowp", "instrec", "conv", "wpemul", "counting"]
    );

    let cfg = cfg_for(WrongPathMode::NoWrongPath);
    let by_label = registry.build("counting", &cfg).expect("registered");
    assert!(
        format!("{by_label:?}").contains("CountingTechnique"),
        "label lookup builds the new technique"
    );
    // Latest registration wins for the mode, so mode-based lookup now
    // resolves to the fifth technique, not the builtin.
    let by_mode = registry
        .build_for_mode(WrongPathMode::NoWrongPath, &cfg)
        .expect("mode is covered");
    assert!(
        format!("{by_mode:?}").contains("CountingTechnique"),
        "latest registration shadows the builtin for its mode"
    );
    // The other modes still resolve to their builtins.
    let untouched = registry
        .build_for_mode(WrongPathMode::WrongPathEmulation, &cfg)
        .expect("builtin");
    assert!(format!("{untouched:?}").contains("EmulationTechnique"));
}

#[test]
fn dummy_technique_runs_through_the_unchanged_loop() {
    let program = branchy_program();
    let cfg = cfg_for(WrongPathMode::NoWrongPath);

    let mut registry = TechniqueRegistry::new();
    registry.register("counting", WrongPathMode::NoWrongPath, |_cfg| {
        Box::new(CountingTechnique::default())
    });
    let technique = registry.build("counting", &cfg).expect("registered");
    let counted = Simulator::with_technique(program.clone(), Memory::new(), cfg.clone(), technique)
        .unwrap()
        .run()
        .unwrap();

    // The run loop hands the technique exactly one on_mispredict per
    // detected misprediction (surfaced via the stats seam).
    assert!(counted.branch.mispredicts() > 0, "workload must mispredict");
    assert_eq!(
        counted.convergence.branch_misses_checked,
        counted.branch.mispredicts(),
        "one hook call per detected misprediction"
    );

    // A technique that injects nothing is timing-identical to the builtin
    // no-wrong-path baseline.
    let baseline = Simulator::new(program, Memory::new(), cfg)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(counted.cycles, baseline.cycles);
    assert_eq!(counted.instructions, baseline.instructions);
    assert_eq!(counted.wrong_path_instructions, 0);
    assert_eq!(counted.state_digest, baseline.state_digest);
}
