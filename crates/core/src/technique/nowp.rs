//! The no-wrong-path baseline: fetch halts on a misprediction.

use crate::sim::SimConfig;
use crate::technique::mode::WrongPathMode;
use crate::technique::{passive_frontend, MispredictContext, WrongPathTechnique};
use ffsim_emu::{Emulator, FetchSource};

/// The functional-first default (paper §IV configuration 1): no wrong-path
/// instructions are modeled; fetch simply halts until the mispredicted
/// branch resolves and redirects.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoWrongPathTechnique;

impl NoWrongPathTechnique {
    /// Creates the baseline technique (stateless).
    #[must_use]
    pub fn new() -> NoWrongPathTechnique {
        NoWrongPathTechnique
    }
}

impl WrongPathTechnique for NoWrongPathTechnique {
    fn mode(&self) -> WrongPathMode {
        WrongPathMode::NoWrongPath
    }

    fn build_frontend(&self, emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource> {
        passive_frontend(emu, cfg)
    }

    fn on_mispredict(&mut self, _cx: &mut MispredictContext<'_>) {
        // Nothing is injected; the resolve/redirect timing alone models
        // the misprediction penalty.
    }
}
