//! Convergence exploitation (paper §III-C) — the paper's novel technique.

use crate::pipeline::Pipeline;
use crate::sim::SimConfig;
use crate::technique::code_cache::CodeCache;
use crate::technique::mode::WrongPathMode;
use crate::technique::wrongpath::{
    reconstruct_into, recover_addresses_from, ConvergenceConfig, ConvergenceStats, FutureSource,
    WpInst,
};
use crate::technique::{
    inject_wrong_path, passive_frontend, MispredictContext, TechniqueStats, WrongPathTechnique,
};
use ffsim_emu::{DynInst, Emulator, FetchSource};
use ffsim_obs::{Log2Hist, TraceEvent, TraceEventKind, TraceSource};

/// Instruction reconstruction plus memory-address recovery: the future
/// correct path — visible thanks to functional runahead — is scanned for a
/// convergence point with the reconstructed wrong path, and addresses of
/// register-independence-checked operations are copied across.
#[derive(Debug)]
pub struct ConvergenceTechnique {
    code_cache: CodeCache,
    convergence: ConvergenceConfig,
    budget: usize,
    rob: usize,
    stats: ConvergenceStats,
    /// Convergence distances (observability histogram).
    dist_hist: Log2Hist,
    /// Reusable buffer for peeked future correct-path instructions.
    future_buf: Vec<DynInst>,
    /// Reusable buffer for the reconstructed wrong path.
    wp_buf: Vec<WpInst>,
}

impl ConvergenceTechnique {
    /// Creates the technique with the configured convergence tunables,
    /// code-cache bound, and window sizes.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> ConvergenceTechnique {
        ConvergenceTechnique {
            code_cache: match cfg.code_cache_capacity {
                Some(cap) => CodeCache::with_capacity(cap),
                None => CodeCache::unbounded(),
            },
            convergence: cfg.convergence,
            budget: cfg.core.wrong_path_budget(),
            rob: cfg.core.rob_size,
            stats: ConvergenceStats::default(),
            dist_hist: Log2Hist::new(),
            future_buf: Vec::new(),
            wp_buf: Vec::new(),
        }
    }
}

/// Serves the future correct-path window on demand from the mispredict
/// context's peek window, materializing entries into the technique's
/// reusable buffer only as deep as the convergence scan actually looks.
/// Maintains [`FutureSource`]'s contiguous-prefix contract: the buffer is
/// a prefix of the peek window, and once a peek returns `None` every
/// deeper index is `None` too.
struct LazyFuture<'a, 'b> {
    buf: &'a mut Vec<DynInst>,
    cx: &'a mut MispredictContext<'b>,
    limit: usize,
    exhausted: bool,
}

impl FutureSource for LazyFuture<'_, '_> {
    fn at(&mut self, i: usize) -> Option<&DynInst> {
        if i >= self.limit {
            return None;
        }
        while self.buf.len() <= i && !self.exhausted {
            match self.cx.peek_ahead(self.buf.len()) {
                Some(e) => self.buf.push(e.inst),
                None => self.exhausted = true,
            }
        }
        self.buf.get(i)
    }
}

impl WrongPathTechnique for ConvergenceTechnique {
    fn mode(&self) -> WrongPathMode {
        WrongPathMode::ConvergenceExploitation
    }

    fn build_frontend(&self, emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource> {
        passive_frontend(emu, cfg)
    }

    fn on_instruction(&mut self, inst: &DynInst) {
        self.code_cache.insert(inst.pc, inst.instr);
    }

    fn on_mispredict(&mut self, cx: &mut MispredictContext<'_>) {
        let Some(start) = cx.wrong_path_start else {
            return;
        };
        let mut wp_buf = std::mem::take(&mut self.wp_buf);
        reconstruct_into(
            &mut self.code_cache,
            cx.predictor,
            start,
            self.budget,
            &mut wp_buf,
        );
        self.wp_buf = wp_buf;
        // Peek the future correct path out of the runahead queue (§III-C:
        // "take a peek in the future correct-path instructions"). The
        // batched handoff serves the peek window from the batch tail first,
        // then the frontend's runahead buffer — lazily, so a scan that
        // converges after a handful of instructions never copies the full
        // ROB-sized window.
        self.future_buf.clear();
        let convergence_distance = {
            let mut future = LazyFuture {
                buf: &mut self.future_buf,
                cx: &mut *cx,
                limit: self.rob,
                exhausted: false,
            };
            recover_addresses_from(
                &mut self.wp_buf,
                &mut future,
                &self.convergence,
                &mut self.stats,
            )
        };
        if cx.trace.is_enabled() {
            if let Some(distance) = convergence_distance {
                self.dist_hist.record(distance as u64);
                let resolve = cx.resolve;
                cx.trace.record(|| TraceEvent {
                    ts: resolve,
                    source: TraceSource::Timing,
                    kind: TraceEventKind::ConvergenceHit {
                        distance: distance as u64,
                    },
                });
            }
        }
        let wp = std::mem::take(&mut self.wp_buf);
        let budget = self.budget;
        self.inject_wrong_path(cx.pipeline, &wp, cx.resolve, budget);
        self.wp_buf = wp;
    }

    fn inject_wrong_path(
        &mut self,
        pipeline: &mut Pipeline,
        wp: &[WpInst],
        resolve: u64,
        budget: usize,
    ) {
        inject_wrong_path(pipeline, wp, resolve, budget, Some(&mut self.stats));
    }

    fn stats(&self) -> TechniqueStats {
        TechniqueStats {
            convergence: self.stats,
            code_cache: self.code_cache.stats(),
        }
    }

    fn reset_stats(&mut self) {
        self.code_cache.reset_stats();
        self.stats = ConvergenceStats::default();
        self.dist_hist = Log2Hist::new();
    }

    fn conv_distance(&self) -> Log2Hist {
        self.dist_hist
    }
}
