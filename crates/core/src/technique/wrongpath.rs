//! Wrong-path instruction reconstruction and convergence-based memory
//! address recovery — the paper's §III-A and §III-C techniques.
//!
//! **Instruction reconstruction** ([`reconstruct`]): on a misprediction,
//! walk the [`CodeCache`] from the wrong-path start, steering branches with
//! speculative predictions, until the budget is exhausted or an address is
//! not remembered. The result carries no data addresses.
//!
//! **Convergence exploitation** ([`recover_addresses`]): exploit the
//! functional simulator's runahead to peek at the *future correct path*;
//! if the wrong and correct paths converge (one-sided branches only, per
//! the paper), copy memory addresses from matching post-convergence
//! correct-path instructions into the wrong path — but only for
//! operations that are register-dependence-free of the non-converged code
//! ("dirty registers"), to avoid the optimism pitfall of §III-C.

use crate::technique::code_cache::{CodeCache, RunEnd, RUN_CAP};
use ffsim_emu::{DynInst, MemAccess};
use ffsim_isa::{Addr, Instr, RegSet, INSTR_BYTES};
use ffsim_uarch::BranchPredictor;

/// One reconstructed (or emulated) wrong-path instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WpInst {
    /// Instruction address.
    pub pc: Addr,
    /// Decoded instruction (from the code cache or the emulator).
    pub instr: Instr,
    /// Data memory access, if known. Reconstruction leaves this `None`;
    /// convergence recovery or functional emulation fill it in.
    pub mem: Option<MemAccess>,
    /// The next wrong-path fetch pc actually followed.
    pub next_pc: Addr,
}

impl WpInst {
    /// Converts an emulator-produced wrong-path instruction.
    #[must_use]
    pub fn from_dyn(d: &DynInst) -> WpInst {
        WpInst {
            pc: d.pc,
            instr: d.instr,
            mem: d.mem,
            next_pc: d.next_pc,
        }
    }
}

/// Reconstructs the wrong path starting at `start` from the code cache,
/// steering branch directions with speculative predictions from
/// `predictor` (which is never mutated).
///
/// Reconstruction stops at the first address the code cache does not
/// remember, at an unpredictable branch (which is still included, as it
/// was fetched), or when `budget` instructions have been produced — the
/// stopping rules of §III-A.
#[must_use]
pub fn reconstruct(
    code_cache: &mut CodeCache,
    predictor: &BranchPredictor,
    start: Addr,
    budget: usize,
) -> Vec<WpInst> {
    let mut out = Vec::new();
    reconstruct_into(code_cache, predictor, start, budget, &mut out);
    out
}

/// [`reconstruct`] into a caller-owned buffer, so techniques can reuse one
/// allocation across mispredictions. The buffer is cleared first.
///
/// Straight-line stretches between branches are served from the code
/// cache's memoized runs when available (see [`CodeCache`]); stretches
/// walked per-instruction are memoized for the next episode. The produced
/// stream and the hit/miss statistics are identical either way: a run hit
/// counts one cache hit per instruction consumed, exactly as the
/// per-instruction walk would have.
pub fn reconstruct_into(
    code_cache: &mut CodeCache,
    predictor: &BranchPredictor,
    start: Addr,
    budget: usize,
    out: &mut Vec<WpInst>,
) {
    out.clear();
    let mut spec = predictor.speculative_state();
    let mut pc = start;
    'outer: while out.len() < budget {
        let remaining = budget - out.len();
        // Fast path: replay a memoized run entered at `pc`.
        if let Some((run, end)) = code_cache.run_at(pc) {
            let m = run.len().min(remaining);
            let full = m == run.len();
            // A fully consumed branch-terminated run needs its last
            // instruction steered through the predictor; everything before
            // it (and every truncated prefix) falls through sequentially.
            let last_is_branch = full && end == RunEnd::Branch;
            let straight = if last_is_branch { m - 1 } else { m };
            for (i, &instr) in run[..straight].iter().enumerate() {
                let ipc = pc + i as Addr * INSTR_BYTES;
                out.push(WpInst {
                    pc: ipc,
                    instr,
                    mem: None,
                    next_pc: ipc + INSTR_BYTES,
                });
            }
            // One hit per consumed instruction; the per-instruction walk
            // additionally probes the terminating `halt` — but only when
            // still under budget.
            let mut hits = m as u64;
            let mut next = pc + straight as Addr * INSTR_BYTES;
            let mut stop = !full;
            if last_is_branch {
                let bpc = pc + (m - 1) as Addr * INSTR_BYTES;
                let instr = run[m - 1];
                match predictor
                    .predict_speculative(bpc, &instr, &mut spec)
                    .next_pc
                {
                    Some(t) => {
                        out.push(WpInst {
                            pc: bpc,
                            instr,
                            mem: None,
                            next_pc: t,
                        });
                        next = t;
                    }
                    None => {
                        // The branch itself was fetched; reconstruction
                        // cannot continue past it.
                        out.push(WpInst {
                            pc: bpc,
                            instr,
                            mem: None,
                            next_pc: bpc + INSTR_BYTES,
                        });
                        stop = true;
                    }
                }
            } else if full && end == RunEnd::Halt {
                if m < remaining {
                    hits += 1;
                }
                stop = true;
            }
            code_cache.add_run_hits(hits);
            if stop {
                return;
            }
            pc = next;
            continue;
        }
        // Slow path: probe per instruction, exactly like the original walk,
        // recording the stretch so the next episode through this entry pc
        // replays it. Only complete runs (branch / remembered halt / cap)
        // are memoized — a budget- or unknown-pc-ended prefix could grow
        // longer in a later episode.
        let run_start = pc;
        let mut recorded: Vec<Instr> = Vec::new();
        loop {
            if out.len() >= budget {
                return;
            }
            let Some(instr) = code_cache.lookup(pc) else {
                return;
            };
            if matches!(instr, Instr::Halt) {
                code_cache.memoize_run(run_start, recorded, RunEnd::Halt);
                return;
            }
            recorded.push(instr);
            if instr.is_branch() {
                match predictor.predict_speculative(pc, &instr, &mut spec).next_pc {
                    Some(t) => {
                        out.push(WpInst {
                            pc,
                            instr,
                            mem: None,
                            next_pc: t,
                        });
                        code_cache.memoize_run(run_start, recorded, RunEnd::Branch);
                        pc = t;
                        continue 'outer;
                    }
                    None => {
                        // The branch itself was fetched; reconstruction
                        // cannot continue past it.
                        out.push(WpInst {
                            pc,
                            instr,
                            mem: None,
                            next_pc: pc + INSTR_BYTES,
                        });
                        code_cache.memoize_run(run_start, recorded, RunEnd::Branch);
                        return;
                    }
                }
            }
            out.push(WpInst {
                pc,
                instr,
                mem: None,
                next_pc: pc + INSTR_BYTES,
            });
            pc += INSTR_BYTES;
            if recorded.len() >= RUN_CAP {
                code_cache.memoize_run(run_start, recorded, RunEnd::Cap);
                continue 'outer;
            }
        }
    }
}

/// Tunables of the convergence-exploitation technique (paper §III-C plus
/// the ablation knobs discussed in §III-C.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConvergenceConfig {
    /// Restrict convergence detection to one-sided branches: only check
    /// whether the first wrong-path instruction appears in the future
    /// correct path, or the first correct-path instruction appears in the
    /// wrong path (the paper's choice — at most 2×ROB comparisons).
    /// When `false`, search for the earliest matching pair anywhere in
    /// both windows (the two-sided ablation).
    pub one_sided_only: bool,
    /// Track registers written before the convergence point and refuse to
    /// recover addresses of dependent operations (the paper's
    /// independence check). Disabling this is the "overly optimistic"
    /// ablation the paper warns about.
    pub track_dirty_regs: bool,
}

impl Default for ConvergenceConfig {
    fn default() -> ConvergenceConfig {
        ConvergenceConfig {
            one_sided_only: true,
            track_dirty_regs: true,
        }
    }
}

/// Counters behind the paper's Table III.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct ConvergenceStats {
    /// Branch misses where convergence detection ran.
    pub branch_misses_checked: u64,
    /// Branch misses where a convergence point was found (→ "Conv frac").
    pub converged: u64,
    /// Sum of instruction distances to the convergence point
    /// (→ "Conv dist" when divided by `converged`).
    pub distance_sum: u64,
    /// Wrong-path memory operations *executed* (injected into the
    /// pipeline before the branch resolved), loads + stores. This is the
    /// paper's Table III denominator: operations on reconstructed wrong
    /// path that never reach the pipeline do not count.
    pub wp_mem_ops: u64,
    /// Executed wrong-path memory operations whose address was recovered
    /// (→ "Addr recover").
    pub wp_mem_recovered: u64,
    /// Total post-convergence instructions scanned in lock-step.
    pub scan_length_sum: u64,
    /// Lock-step scans ended by an instruction-pointer mismatch.
    pub scan_stop_pc_mismatch: u64,
    /// Lock-step scans ended by a control divergence (wrong-path branch
    /// predicted differently from the correct path's actual direction).
    pub scan_stop_control: u64,
    /// Memory operations skipped because their sources were dirty.
    pub skipped_dirty: u64,
    /// Convergence points re-detected after an intra-wrong-path
    /// divergence (loop-structured code reconverges every iteration).
    pub reconvergences: u64,
}

impl ConvergenceStats {
    /// Fraction of branch misses where convergence was found.
    #[must_use]
    pub fn conv_frac(&self) -> f64 {
        if self.branch_misses_checked == 0 {
            0.0
        } else {
            self.converged as f64 / self.branch_misses_checked as f64
        }
    }

    /// Average instructions until the convergence point.
    #[must_use]
    pub fn avg_distance(&self) -> f64 {
        if self.converged == 0 {
            0.0
        } else {
            self.distance_sum as f64 / self.converged as f64
        }
    }

    /// Fraction of wrong-path memory operations with recovered addresses.
    #[must_use]
    pub fn recover_frac(&self) -> f64 {
        if self.wp_mem_ops == 0 {
            0.0
        } else {
            self.wp_mem_recovered as f64 / self.wp_mem_ops as f64
        }
    }
}

fn written_regs<'a>(instrs: impl Iterator<Item = &'a Instr>) -> RegSet {
    let mut dirty = RegSet::new();
    for i in instrs {
        if let Some(dst) = i.operands().dst {
            dirty.insert(dst);
        }
    }
    dirty
}

/// Indexed access to the future correct-path window used by convergence
/// detection and address recovery.
///
/// The window is always a contiguous prefix: once `at(i)` returns `None`,
/// every larger index is `None` too. Abstracting the access lets the
/// convergence technique serve the window lazily out of the frontend's
/// runahead buffer — materializing only the entries the scans actually
/// visit — while tests and the equivalence oracle keep passing plain
/// slices. The recovery logic is identical either way.
pub trait FutureSource {
    /// The `i`th future correct-path instruction, if the window reaches
    /// that deep.
    fn at(&mut self, i: usize) -> Option<&DynInst>;
}

impl FutureSource for &[DynInst] {
    fn at(&mut self, i: usize) -> Option<&DynInst> {
        self.get(i)
    }
}

/// Finds the next convergence point between `wp[wi..]` and the future
/// window past `fi` under the configured detection rule. Returns
/// window-relative offsets.
fn detect_convergence<F: FutureSource + ?Sized>(
    wp: &[WpInst],
    future: &mut F,
    wi: usize,
    fi: usize,
    cfg: &ConvergenceConfig,
) -> Option<(usize, usize)> {
    let wp_rest = &wp[wi..];
    if wp_rest.is_empty() {
        return None;
    }
    let fut_head = future.at(fi)?.pc;
    // One-sided detection (§III-C.1): the convergence point is the first
    // instruction of one of the two paths. The two scans are interleaved
    // by depth so the search stops at the shallowest match instead of
    // walking both full windows; on convergent code (the common case —
    // Table III distances are tens of instructions against ROB-sized
    // windows) this exits after a handful of comparisons. Checking the
    // future side first at each depth preserves the original tie-break:
    // equal depths resolve to case A, i.e. `k <= j` picks `(0, k)`.
    let wp_head = wp_rest[0].pc;
    let mut one_sided = None;
    let mut fut_ended = false;
    let mut i = 0;
    loop {
        if !fut_ended {
            match future.at(fi + i) {
                Some(d) if d.pc == wp_head => {
                    one_sided = Some((0, i));
                    break;
                }
                Some(_) => {}
                None => fut_ended = true,
            }
        }
        if let Some(w) = wp_rest.get(i) {
            if w.pc == fut_head {
                one_sided = Some((i, 0));
                break;
            }
        }
        i += 1;
        if fut_ended && i >= wp_rest.len() {
            break;
        }
    }
    match one_sided {
        Some(found) => Some(found),
        None => {
            if cfg.one_sided_only {
                return None;
            }
            // Two-sided ablation: earliest matching pair by summed depth.
            let mut first_at = std::collections::HashMap::new();
            let mut k = 0;
            while let Some(d) = future.at(fi + k) {
                first_at.entry(d.pc).or_insert(k);
                k += 1;
            }
            let mut best: Option<(usize, usize)> = None;
            for (j, w) in wp_rest.iter().enumerate() {
                if let Some(&k) = first_at.get(&w.pc) {
                    if best.is_none_or(|(bj, bk)| j + k < bj + bk) {
                        best = Some((j, k));
                    }
                }
            }
            best
        }
    }
}

/// Detects wrong/correct-path convergence and copies memory addresses from
/// the future correct path (`future`, the instructions that will follow the
/// mispredicted branch) into matching, register-independent wrong-path
/// instructions. Returns the distance to the first convergence point when
/// one was found.
///
/// Matching follows the paper's Fig. 3: from the convergence point both
/// paths are scanned in lock-step, copying addresses while instruction
/// pointers match and operands are independent of non-converged code. When
/// the paths diverge again (a wrong-path branch predicted differently from
/// the correct path's actual direction — e.g. a misprediction along the
/// wrong path), the scan re-detects convergence further down both paths;
/// instructions skipped on either side dirty their destination registers.
pub fn recover_addresses(
    wp: &mut [WpInst],
    future: &[DynInst],
    cfg: &ConvergenceConfig,
    stats: &mut ConvergenceStats,
) -> Option<usize> {
    recover_addresses_from(wp, &mut { future }, cfg, stats)
}

/// [`recover_addresses`] against an abstract [`FutureSource`], so the
/// convergence technique can serve the window lazily from the frontend's
/// runahead buffer. Behavior — matching, dirty-register tracking, and
/// every statistic — is identical to the slice version.
pub fn recover_addresses_from<F: FutureSource + ?Sized>(
    wp: &mut [WpInst],
    future: &mut F,
    cfg: &ConvergenceConfig,
    stats: &mut ConvergenceStats,
) -> Option<usize> {
    stats.branch_misses_checked += 1;

    let (wj, fk) = detect_convergence(wp, future, 0, 0, cfg)?;
    let distance = wj + fk;
    stats.converged += 1;
    stats.distance_sum += distance as u64;

    let mut dirty = RegSet::new();
    let mut wi = 0usize;
    let mut fi = 0usize;
    let (mut next_wi, mut next_fi) = (wj, fk);

    loop {
        // Instructions skipped on either side before this convergence
        // point hold values the other path did not compute: their
        // destinations become dirty (§III-C.2). Every index below
        // `next_fi` exists: detection just matched an entry there.
        if cfg.track_dirty_regs {
            dirty = dirty.union(written_regs(wp[wi..next_wi].iter().map(|w| &w.instr)));
            for i in fi..next_fi {
                if let Some(d) = future.at(i) {
                    if let Some(dst) = d.instr.operands().dst {
                        dirty.insert(dst);
                    }
                }
            }
        }
        wi = next_wi;
        fi = next_fi;

        // Lock-step matching.
        let mut diverged = false;
        while wi < wp.len() {
            let Some(f) = future.at(fi) else {
                break; // future window exhausted
            };
            let (f_pc, f_mem, f_next_pc) = (f.pc, f.mem, f.next_pc);
            let w = &mut wp[wi];
            if w.pc != f_pc {
                stats.scan_stop_pc_mismatch += 1;
                diverged = true;
                break;
            }
            stats.scan_length_sum += 1;
            let ops = w.instr.operands();
            let src_dirty = cfg.track_dirty_regs && ops.src_iter().any(|r| dirty.contains(r));
            if w.instr.is_mem() {
                if src_dirty {
                    stats.skipped_dirty += 1;
                } else if let Some(m) = f_mem {
                    w.mem = Some(m);
                }
            }
            if let Some(dst) = ops.dst {
                if src_dirty {
                    dirty.insert(dst);
                } else {
                    // Clean sources recompute the same value: the register
                    // is no longer dirty past this point.
                    dirty.remove(dst);
                }
            }
            let control_diverges = w.next_pc != f_next_pc;
            wi += 1;
            fi += 1;
            if control_diverges {
                stats.scan_stop_control += 1;
                diverged = true;
                break;
            }
        }
        if !diverged {
            break; // one side exhausted
        }
        // Re-detect convergence past the divergence.
        match detect_convergence(wp, future, wi, fi, cfg) {
            Some((dj, dk)) => {
                stats.reconvergences += 1;
                next_wi = wi + dj;
                next_fi = fi + dk;
            }
            None => break,
        }
    }
    Some(distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_emu::BranchOutcome;
    use ffsim_isa::{AluOp, MemWidth, Reg};
    use ffsim_uarch::{BranchConfig, CoreConfig};

    fn predictor() -> BranchPredictor {
        let cfg: BranchConfig = CoreConfig::tiny_for_tests().branch;
        BranchPredictor::new(cfg)
    }

    fn load(rd: u8, base: u8, offset: i64) -> Instr {
        Instr::Load {
            rd: Reg::new(rd),
            base: Reg::new(base),
            offset,
            width: MemWidth::D,
            signed: false,
        }
    }

    fn alu(rd: u8, rs1: u8, rs2: u8) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2),
        }
    }

    fn dyn_at(pc: Addr, instr: Instr, mem: Option<MemAccess>) -> DynInst {
        DynInst {
            seq: 0,
            pc,
            instr,
            mem,
            branch: None,
            next_pc: pc + 4,
        }
    }

    fn fill_code_cache(cc: &mut CodeCache, base: Addr, instrs: &[Instr]) {
        for (i, ins) in instrs.iter().enumerate() {
            cc.insert(base + i as Addr * 4, *ins);
        }
    }

    #[test]
    fn reconstruct_straight_line() {
        let mut cc = CodeCache::unbounded();
        fill_code_cache(&mut cc, 0x1000, &[alu(1, 2, 3), alu(2, 3, 4), alu(3, 4, 5)]);
        let p = predictor();
        let wp = reconstruct(&mut cc, &p, 0x1000, 16);
        assert_eq!(wp.len(), 3, "stops at first unknown pc");
        assert_eq!(wp[0].pc, 0x1000);
        assert_eq!(wp[2].next_pc, 0x100c);
        assert!(wp.iter().all(|w| w.mem.is_none()));
    }

    #[test]
    fn reconstruct_respects_budget() {
        let mut cc = CodeCache::unbounded();
        let instrs: Vec<Instr> = (0..20).map(|i| alu((i % 8) as u8 + 1, 2, 3)).collect();
        fill_code_cache(&mut cc, 0x1000, &instrs);
        let p = predictor();
        assert_eq!(reconstruct(&mut cc, &p, 0x1000, 5).len(), 5);
    }

    #[test]
    fn reconstruct_follows_predicted_taken_branch() {
        // Train the predictor that the branch at 0x1004 is taken to 0x2000.
        let mut p = predictor();
        let branch = Instr::Branch {
            cond: ffsim_isa::BranchCond::Ne,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target: 0x2000,
        };
        for _ in 0..20 {
            let _ = p.observe(0x1004, &branch, true, 0x2000);
        }
        let mut cc = CodeCache::unbounded();
        cc.insert(0x1000, alu(1, 2, 3));
        cc.insert(0x1004, branch);
        cc.insert(0x2000, alu(5, 6, 7));
        let wp = reconstruct(&mut cc, &p, 0x1000, 16);
        assert_eq!(wp.len(), 3);
        assert_eq!(wp[1].next_pc, 0x2000);
        assert_eq!(wp[2].pc, 0x2000);
    }

    #[test]
    fn reconstruct_stops_on_unpredictable_indirect() {
        let mut cc = CodeCache::unbounded();
        cc.insert(0x1000, alu(1, 2, 3));
        cc.insert(
            0x1004,
            Instr::Jalr {
                rd: Reg::ZERO,
                base: Reg::new(5),
                offset: 0,
            },
        );
        cc.insert(0x1008, alu(2, 3, 4));
        let p = predictor();
        let wp = reconstruct(&mut cc, &p, 0x1000, 16);
        // The indirect jump itself is fetched, then reconstruction stops.
        assert_eq!(wp.len(), 2);
        assert!(wp[1].instr.is_branch());
    }

    #[test]
    fn reconstruct_stops_at_halt() {
        let mut cc = CodeCache::unbounded();
        cc.insert(0x1000, alu(1, 2, 3));
        cc.insert(0x1004, Instr::Halt);
        let p = predictor();
        let wp = reconstruct(&mut cc, &p, 0x1000, 16);
        assert_eq!(wp.len(), 1);
    }

    /// Case A convergence: the correct path falls through W X and then
    /// reaches the wrong path's start (one-sided taken branch predicted
    /// not-taken... i.e. wp = target ABCD, correct = WX then ABCD).
    #[test]
    fn case_a_convergence_recovers_independent_addresses() {
        // Wrong path: A B C where B is a load x5 <- [x6], C a load x7 <- [x4].
        let a_pc = 0x3000;
        let mut wp = vec![
            WpInst {
                pc: a_pc,
                instr: alu(1, 2, 3),
                mem: None,
                next_pc: a_pc + 4,
            },
            WpInst {
                pc: a_pc + 4,
                instr: load(5, 6, 0),
                mem: None,
                next_pc: a_pc + 8,
            },
            WpInst {
                pc: a_pc + 8,
                instr: load(7, 4, 0),
                mem: None,
                next_pc: a_pc + 12,
            },
        ];
        // Future correct path: two skipped instructions (writing x4!),
        // then A B C with real addresses.
        let future = vec![
            dyn_at(0x2000, alu(4, 9, 9), None), // writes x4 → dirty
            dyn_at(0x2004, alu(8, 9, 9), None),
            dyn_at(a_pc, alu(1, 2, 3), None),
            dyn_at(
                a_pc + 4,
                load(5, 6, 0),
                Some(MemAccess {
                    addr: 0xAAAA8,
                    size: 8,
                    is_store: false,
                }),
            ),
            dyn_at(
                a_pc + 8,
                load(7, 4, 0),
                Some(MemAccess {
                    addr: 0xBBBB8,
                    size: 8,
                    is_store: false,
                }),
            ),
        ];
        let mut stats = ConvergenceStats::default();
        let d = recover_addresses(&mut wp, &future, &ConvergenceConfig::default(), &mut stats);
        assert_eq!(d, Some(2));
        assert_eq!(stats.converged, 1);
        assert_eq!(stats.distance_sum, 2);
        // Load via x6 (clean) recovered; load via x4 (dirty: written by
        // skipped correct-path code) must NOT be recovered.
        assert_eq!(wp[1].mem.map(|m| m.addr), Some(0xAAAA8));
        assert_eq!(wp[2].mem, None);
        assert_eq!(stats.skipped_dirty, 1);
    }

    /// Case B convergence: the wrong path executes extra instructions and
    /// then reaches the correct path's start.
    #[test]
    fn case_b_convergence_dirty_from_wrong_path() {
        let conv_pc = 0x2000;
        let mut wp = vec![
            // Pre-convergence wrong-path instruction writing x6.
            WpInst {
                pc: 0x3000,
                instr: alu(6, 1, 1),
                mem: None,
                next_pc: conv_pc,
            },
            // Post-convergence: load via x6 (dirty), load via x7 (clean).
            WpInst {
                pc: conv_pc,
                instr: load(2, 6, 0),
                mem: None,
                next_pc: conv_pc + 4,
            },
            WpInst {
                pc: conv_pc + 4,
                instr: load(3, 7, 0),
                mem: None,
                next_pc: conv_pc + 8,
            },
        ];
        let future = vec![
            dyn_at(
                conv_pc,
                load(2, 6, 0),
                Some(MemAccess {
                    addr: 0x111_000,
                    size: 8,
                    is_store: false,
                }),
            ),
            dyn_at(
                conv_pc + 4,
                load(3, 7, 0),
                Some(MemAccess {
                    addr: 0x222_000,
                    size: 8,
                    is_store: false,
                }),
            ),
        ];
        let mut stats = ConvergenceStats::default();
        let d = recover_addresses(&mut wp, &future, &ConvergenceConfig::default(), &mut stats);
        assert_eq!(d, Some(1));
        assert_eq!(wp[1].mem, None, "x6 was written on the wrong path");
        assert_eq!(wp[2].mem.map(|m| m.addr), Some(0x222_000));
    }

    #[test]
    fn clean_overwrite_clears_dirtiness() {
        let conv_pc = 0x2000;
        let mut wp = vec![
            WpInst {
                pc: 0x3000,
                instr: alu(6, 1, 1), // x6 dirty
                mem: None,
                next_pc: conv_pc,
            },
            // x6 = x9 + x9 with clean sources → x6 clean again.
            WpInst {
                pc: conv_pc,
                instr: alu(6, 9, 9),
                mem: None,
                next_pc: conv_pc + 4,
            },
            WpInst {
                pc: conv_pc + 4,
                instr: load(2, 6, 0),
                mem: None,
                next_pc: conv_pc + 8,
            },
        ];
        let future = vec![
            dyn_at(conv_pc, alu(6, 9, 9), None),
            dyn_at(
                conv_pc + 4,
                load(2, 6, 0),
                Some(MemAccess {
                    addr: 0x9_000,
                    size: 8,
                    is_store: false,
                }),
            ),
        ];
        let mut stats = ConvergenceStats::default();
        let _ = recover_addresses(&mut wp, &future, &ConvergenceConfig::default(), &mut stats);
        assert_eq!(wp[2].mem.map(|m| m.addr), Some(0x9_000));
    }

    #[test]
    fn control_divergence_stops_recovery() {
        let conv_pc = 0x2000;
        let br = Instr::Branch {
            cond: ffsim_isa::BranchCond::Ne,
            rs1: Reg::new(1),
            rs2: Reg::new(2),
            target: 0x4000,
        };
        let mut wp = vec![
            // Convergence at first instruction; branch follows, predicted
            // differently (next_pc differs), then a load.
            WpInst {
                pc: conv_pc,
                instr: br,
                mem: None,
                next_pc: 0x4000, // wrong path predicted taken
            },
            WpInst {
                pc: 0x4000,
                instr: load(2, 7, 0),
                mem: None,
                next_pc: 0x4004,
            },
        ];
        let mut fut_branch = dyn_at(conv_pc, br, None);
        fut_branch.next_pc = conv_pc + 4; // correct path falls through
        fut_branch.branch = Some(BranchOutcome {
            taken: false,
            next_pc: conv_pc + 4,
        });
        let future = vec![
            fut_branch,
            dyn_at(
                conv_pc + 4,
                load(2, 7, 0),
                Some(MemAccess {
                    addr: 0x5_000,
                    size: 8,
                    is_store: false,
                }),
            ),
        ];
        let mut stats = ConvergenceStats::default();
        let _ = recover_addresses(&mut wp, &future, &ConvergenceConfig::default(), &mut stats);
        assert_eq!(
            wp[1].mem, None,
            "instructions past an unreconverged control divergence must not be recovered"
        );
    }

    #[test]
    fn no_convergence_no_recovery() {
        let mut wp = vec![WpInst {
            pc: 0x3000,
            instr: load(2, 7, 0),
            mem: None,
            next_pc: 0x3004,
        }];
        let future = vec![dyn_at(
            0x2000,
            load(2, 7, 0),
            Some(MemAccess {
                addr: 0x5_000,
                size: 8,
                is_store: false,
            }),
        )];
        let mut stats = ConvergenceStats::default();
        let d = recover_addresses(&mut wp, &future, &ConvergenceConfig::default(), &mut stats);
        assert_eq!(d, None);
        assert_eq!(stats.converged, 0);
        assert_eq!(wp[0].mem, None);
        assert_eq!(stats.branch_misses_checked, 1);
    }

    #[test]
    fn optimistic_ablation_ignores_dirty_registers() {
        let conv_pc = 0x2000;
        let mut wp = vec![
            WpInst {
                pc: 0x3000,
                instr: alu(6, 1, 1),
                mem: None,
                next_pc: conv_pc,
            },
            WpInst {
                pc: conv_pc,
                instr: load(2, 6, 0),
                mem: None,
                next_pc: conv_pc + 4,
            },
        ];
        let future = vec![dyn_at(
            conv_pc,
            load(2, 6, 0),
            Some(MemAccess {
                addr: 0x111_000,
                size: 8,
                is_store: false,
            }),
        )];
        let mut stats = ConvergenceStats::default();
        let cfg = ConvergenceConfig {
            one_sided_only: true,
            track_dirty_regs: false,
        };
        let _ = recover_addresses(&mut wp, &future, &cfg, &mut stats);
        assert_eq!(
            wp[1].mem.map(|m| m.addr),
            Some(0x111_000),
            "without dirty tracking the dependent load is (optimistically) recovered"
        );
    }

    #[test]
    fn two_sided_ablation_finds_interior_convergence() {
        // Neither first instruction appears in the other path, but both
        // paths reach 0x5000 after one private instruction (if-then-else).
        let mut wp = vec![
            WpInst {
                pc: 0x3000,
                instr: alu(1, 2, 3),
                mem: None,
                next_pc: 0x5000,
            },
            WpInst {
                pc: 0x5000,
                instr: load(2, 7, 0),
                mem: None,
                next_pc: 0x5004,
            },
        ];
        let future = vec![
            dyn_at(0x2000, alu(4, 2, 3), None),
            dyn_at(
                0x5000,
                load(2, 7, 0),
                Some(MemAccess {
                    addr: 0x6_000,
                    size: 8,
                    is_store: false,
                }),
            ),
        ];
        let one_sided = ConvergenceConfig::default();
        let mut stats = ConvergenceStats::default();
        let mut wp1 = wp.clone();
        assert_eq!(
            recover_addresses(&mut wp1, &future, &one_sided, &mut stats),
            None,
            "one-sided detection misses if-then-else reconvergence"
        );
        let two_sided = ConvergenceConfig {
            one_sided_only: false,
            track_dirty_regs: true,
        };
        let mut stats2 = ConvergenceStats::default();
        let d = recover_addresses(&mut wp, &future, &two_sided, &mut stats2);
        assert_eq!(d, Some(2));
        assert_eq!(wp[1].mem.map(|m| m.addr), Some(0x6_000));
    }

    #[test]
    fn wp_inst_from_dyn_preserves_fields() {
        let d = dyn_at(
            0x1000,
            load(1, 2, 8),
            Some(MemAccess {
                addr: 0x42,
                size: 8,
                is_store: false,
            }),
        );
        let w = WpInst::from_dyn(&d);
        assert_eq!(w.pc, 0x1000);
        assert_eq!(w.mem, d.mem);
        assert_eq!(w.next_pc, d.next_pc);
    }
}
