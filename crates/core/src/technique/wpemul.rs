//! Full functional wrong-path emulation (paper §III-B) — the accuracy
//! reference.

use crate::sim::SimConfig;
use crate::technique::mode::WrongPathMode;
use crate::technique::replica::ReplicaPolicy;
use crate::technique::{inject_wrong_path, MispredictContext, WrongPathTechnique};
use ffsim_emu::{Emulator, FetchSource, InstrQueue};

/// The functional frontend checkpoints, redirects, and fully emulates the
/// wrong path: a branch-predictor replica in the frontend
/// ([`ReplicaPolicy`]) predicts each misprediction ahead of time and
/// attaches the emulated wrong-path bundle to the triggering stream entry.
#[derive(Debug)]
pub struct EmulationTechnique {
    budget: usize,
}

impl EmulationTechnique {
    /// Creates the technique with the configured per-miss wrong-path
    /// budget.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> EmulationTechnique {
        EmulationTechnique {
            budget: cfg.core.wrong_path_budget(),
        }
    }
}

impl WrongPathTechnique for EmulationTechnique {
    fn mode(&self) -> WrongPathMode {
        WrongPathMode::WrongPathEmulation
    }

    fn build_frontend(&self, emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource> {
        Box::new(
            InstrQueue::new(
                emu,
                ReplicaPolicy::new(cfg.core.branch, cfg.core.wrong_path_budget())
                    .with_pc_corruption(cfg.wp_pc_corruption),
                cfg.core.queue_depth,
            )
            .with_fault_policy(cfg.fault_policy)
            .with_watchdog(cfg.wrong_path_watchdog)
            .with_trace(cfg.obs.ring()),
        )
    }

    fn on_mispredict(&mut self, cx: &mut MispredictContext<'_>) {
        // The frontend replica predicted this misprediction and emulated
        // the wrong path; both predictors are deterministic on the
        // program-order stream, so the bundle is present exactly when we
        // mispredict — unless the stream ended abnormally (pending
        // abort-policy fault or cancellation), in which case the trailing
        // entries legitimately carry no bundle.
        debug_assert!(
            cx.entry.wrong_path.is_some() == cx.wrong_path_start.is_some()
                || cx.frontend.fault().is_some()
                || cx.frontend.cancelled().is_some(),
            "frontend replica desynchronized at pc {:#x}",
            cx.entry.inst.pc
        );
        if let Some(bundle) = &cx.entry.wrong_path {
            // Inject straight from the emulated bundle: `DynInst` feeds
            // the pipeline through `WpFeed`, so nothing is copied into an
            // intermediate `Vec<WpInst>` first.
            inject_wrong_path(cx.pipeline, &bundle.insts, cx.resolve, self.budget, None);
        }
    }
}
