//! The pluggable wrong-path technique layer.
//!
//! Each of the paper's four wrong-path modeling configurations (§IV) is a
//! [`WrongPathTechnique`] implementation that owns its technique-specific
//! state — the code cache, the convergence scanner, the frontend replica
//! wiring — and plugs into the [`Simulator`](crate::Simulator) run loop
//! through a small set of hooks:
//!
//! * [`build_frontend`](WrongPathTechnique::build_frontend) — choose the
//!   functional-frontend wiring (a passive runahead queue, or one carrying
//!   the branch-predictor replica for §III-B emulation),
//! * [`on_instruction`](WrongPathTechnique::on_instruction) — observe
//!   every consumed correct-path instruction (the §III-A code-cache fill),
//! * [`on_mispredict`](WrongPathTechnique::on_mispredict) — produce and
//!   inject the wrong path for a detected misprediction,
//! * [`inject_wrong_path`](WrongPathTechnique::inject_wrong_path) — feed a
//!   wrong-path sequence into the pipeline (overridable for
//!   technique-specific accounting),
//! * [`on_resolve`](WrongPathTechnique::on_resolve) — the squash point,
//!   after the episode is traced and before fetch redirects,
//! * [`stats`](WrongPathTechnique::stats) — technique-owned counters
//!   folded into the run's [`SimResult`](crate::SimResult).
//!
//! The [`TechniqueRegistry`] maps technique labels to factories;
//! [`TechniqueRegistry::builtin`] carries the paper's four, and
//! experimental techniques register without touching the run loop.

pub mod code_cache;
mod conv;
mod instrec;
pub mod mode;
mod nowp;
pub mod replica;
mod wpemul;
pub mod wrongpath;

pub use conv::ConvergenceTechnique;
pub use instrec::ReconstructionTechnique;
pub use nowp::NoWrongPathTechnique;
pub use wpemul::EmulationTechnique;

use crate::pipeline::{LoadTiming, Pipeline};
use crate::sim::SimConfig;
use crate::technique::code_cache::{CodeCache, CodeCacheStats};
use crate::technique::mode::WrongPathMode;
use crate::technique::wrongpath::{ConvergenceStats, WpInst};
use ffsim_emu::{DynInst, Emulator, FetchSource, InstrQueue, NoFrontendWrongPath, StreamEntry};
use ffsim_isa::{Addr, Instr, INSTR_BYTES};
use ffsim_obs::{EventRing, Log2Hist};
use ffsim_uarch::BranchPredictor;
use std::fmt;

/// Everything a technique may touch while handling one misprediction: the
/// triggering stream entry, the resolution cycle, and mutable access to
/// the pipeline, frontend, and event ring.
#[derive(Debug)]
pub struct MispredictContext<'a> {
    /// The stream entry carrying the mispredicted branch (and, in
    /// wrong-path-emulation runs, its emulated wrong-path bundle).
    pub entry: &'a StreamEntry,
    /// The cycle the mispredicted branch resolves (executes) at.
    pub resolve: u64,
    /// First wrong-path pc, when the predictor could name one.
    pub wrong_path_start: Option<Addr>,
    /// The unconsumed tail of the current handoff batch: future
    /// correct-path entries already delivered by the frontend, directly
    /// addressable without a virtual call. [`MispredictContext::peek_ahead`]
    /// reads these first and falls through to [`FetchSource::peek`].
    pub lookahead: &'a [StreamEntry],
    /// Total lookahead bound (batch tail + frontend peeks), matching the
    /// frontend's own queue depth so batched and per-instruction delivery
    /// expose the exact same peek window.
    pub peek_cap: usize,
    /// The timing model's branch predictor (read-only: speculative
    /// predictions steer reconstruction without perturbing training).
    pub predictor: &'a BranchPredictor,
    /// The timing backend the wrong path is injected into.
    pub pipeline: &'a mut Pipeline,
    /// The functional frontend (lookahead peeking, fault state).
    pub frontend: &'a mut dyn FetchSource,
    /// The timing-model event ring.
    pub trace: &'a mut EventRing,
}

impl MispredictContext<'_> {
    /// Peeks `index` future correct-path entries past the mispredicted
    /// branch (0 = the architecturally next instruction), bounded by
    /// [`peek_cap`](MispredictContext::peek_cap). Entries still in the
    /// current batch are served from the [`lookahead`] slice; the rest
    /// come from the frontend's runahead buffer. After any number of
    /// per-instruction pops the frontend keeps `queue_depth` entries
    /// buffered, so this window is identical to what per-instruction
    /// delivery would expose through [`FetchSource::peek`] alone.
    ///
    /// [`lookahead`]: MispredictContext::lookahead
    pub fn peek_ahead(&mut self, index: usize) -> Option<&StreamEntry> {
        if index >= self.peek_cap {
            return None;
        }
        if index < self.lookahead.len() {
            return Some(&self.lookahead[index]);
        }
        self.frontend.peek(index - self.lookahead.len())
    }
}

/// Technique-owned statistics folded into [`SimResult`](crate::SimResult).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct TechniqueStats {
    /// Convergence counters (Table III); zero outside the convergence
    /// technique.
    pub convergence: ConvergenceStats,
    /// Code-cache counters; zero for techniques without a code cache.
    pub code_cache: CodeCacheStats,
}

/// One wrong-path modeling strategy (paper §III), owning its state and
/// driven by the [`Simulator`](crate::Simulator) run loop through hooks.
///
/// Hook call order per retired instruction: [`on_instruction`] always;
/// then, on a detected misprediction, [`on_mispredict`] (which typically
/// calls [`inject_wrong_path`]) followed by [`on_resolve`] once the
/// episode has been traced, just before fetch redirects to the correct
/// path.
///
/// [`on_instruction`]: WrongPathTechnique::on_instruction
/// [`on_mispredict`]: WrongPathTechnique::on_mispredict
/// [`inject_wrong_path`]: WrongPathTechnique::inject_wrong_path
/// [`on_resolve`]: WrongPathTechnique::on_resolve
pub trait WrongPathTechnique: Send + fmt::Debug {
    /// The mode this technique models (labels, reporting).
    fn mode(&self) -> WrongPathMode;

    /// Builds the functional frontend this technique consumes. Most
    /// techniques use [`passive_frontend`]; wrong-path emulation installs
    /// the branch-predictor replica here.
    fn build_frontend(&self, emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource>;

    /// A correct-path instruction was consumed by the timing model
    /// (the §III-A code-cache fill point).
    fn on_instruction(&mut self, inst: &DynInst) {
        let _ = inst;
    }

    /// The timing model detected a misprediction; produce and inject the
    /// wrong path.
    fn on_mispredict(&mut self, cx: &mut MispredictContext<'_>);

    /// Feeds a wrong-path sequence into the pipeline. The default performs
    /// the shared §III-A/§V-C injection (snapshot, bounded feed, squash);
    /// override to add technique-specific accounting.
    fn inject_wrong_path(
        &mut self,
        pipeline: &mut Pipeline,
        wp: &[WpInst],
        resolve: u64,
        budget: usize,
    ) {
        inject_wrong_path(pipeline, wp, resolve, budget, None);
    }

    /// The mispredicted branch resolved (squash point); fetch redirects
    /// right after this hook returns.
    fn on_resolve(&mut self, resolve: u64) {
        let _ = resolve;
    }

    /// Technique-owned counters for the final result.
    fn stats(&self) -> TechniqueStats {
        TechniqueStats::default()
    }

    /// Resets technique-owned statistics at the warmup boundary (state —
    /// e.g. code-cache entries — stays warm).
    fn reset_stats(&mut self) {}

    /// Convergence-distance histogram for the observability report; empty
    /// outside the convergence technique.
    fn conv_distance(&self) -> Log2Hist {
        Log2Hist::new()
    }
}

/// Builds the passive runahead frontend used by every technique that does
/// not emulate wrong paths functionally (nowp, instrec, conv — and any
/// external technique that reconstructs rather than emulates).
#[must_use]
pub fn passive_frontend(emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource> {
    Box::new(
        InstrQueue::new(emu, NoFrontendWrongPath, cfg.core.queue_depth)
            .with_fault_policy(cfg.fault_policy)
            .with_watchdog(cfg.wrong_path_watchdog)
            .with_trace(cfg.obs.ring()),
    )
}

/// A wrong-path instruction as the injection loop sees it — implemented by
/// both [`WpInst`] (reconstructed) and [`DynInst`] (functionally emulated)
/// so [`inject_wrong_path`] can run straight off a
/// [`WrongPathBundle`](ffsim_emu::WrongPathBundle) without first copying
/// it element-by-element into a `Vec<WpInst>`.
pub trait WpFeed {
    /// Instruction address.
    fn wp_pc(&self) -> Addr;
    /// The decoded instruction.
    fn wp_instr(&self) -> &ffsim_isa::Instr;
    /// Data memory access, if known.
    fn wp_mem(&self) -> Option<ffsim_emu::MemAccess>;
    /// The next wrong-path fetch pc actually followed.
    fn wp_next_pc(&self) -> Addr;
}

impl WpFeed for WpInst {
    fn wp_pc(&self) -> Addr {
        self.pc
    }
    fn wp_instr(&self) -> &ffsim_isa::Instr {
        &self.instr
    }
    fn wp_mem(&self) -> Option<ffsim_emu::MemAccess> {
        self.mem
    }
    fn wp_next_pc(&self) -> Addr {
        self.next_pc
    }
}

impl WpFeed for DynInst {
    fn wp_pc(&self) -> Addr {
        self.pc
    }
    fn wp_instr(&self) -> &ffsim_isa::Instr {
        &self.instr
    }
    fn wp_mem(&self) -> Option<ffsim_emu::MemAccess> {
        self.mem
    }
    fn wp_next_pc(&self) -> Addr {
        self.next_pc
    }
}

/// Injects a wrong-path instruction sequence into the pipeline.
///
/// Fetch of wrong-path instructions continues until the mispredicted
/// branch resolves (`resolve`), the sequence ends, or the budget runs
/// out; the register scoreboard is snapshotted and restored around the
/// injection (the squash). Loads with known addresses access the real
/// hierarchy; the rest are modeled as L1 hits (§III-A, §V-C).
///
/// `conv_stats`, when present, receives the Table III accounting of
/// wrong-path memory operations that actually entered the pipeline.
pub fn inject_wrong_path<W: WpFeed>(
    pipeline: &mut Pipeline,
    wp: &[W],
    resolve: u64,
    budget: usize,
    mut conv_stats: Option<&mut ConvergenceStats>,
) {
    let snapshot = pipeline.snapshot_regs();
    let mut window = pipeline.begin_wrong_path();
    for w in wp.iter().take(budget) {
        if pipeline.next_fetch_cycle() >= resolve {
            break;
        }
        let instr = w.wp_instr();
        let mem = w.wp_mem();
        let timing = if instr.is_load() && mem.is_some() {
            LoadTiming::Real
        } else {
            LoadTiming::AssumeL1Hit
        };
        let _ = pipeline.feed_wrong(&mut window, w.wp_pc(), instr, mem, timing, resolve);
        // Table III accounting: only wrong-path memory operations that
        // actually enter the pipeline count.
        if let Some(stats) = conv_stats.as_deref_mut() {
            if instr.is_mem() {
                stats.wp_mem_ops += 1;
                if mem.is_some() {
                    stats.wp_mem_recovered += 1;
                }
            }
        }
        if instr.is_branch() && w.wp_next_pc() != w.wp_pc() + INSTR_BYTES {
            pipeline.break_fetch_group();
        }
    }
    pipeline.end_wrong_path(window);
    pipeline.restore_regs(snapshot);
}

/// [`reconstruct_into`](wrongpath::reconstruct_into) fused with
/// [`inject_wrong_path`]: reconstructs the wrong path from the code cache
/// and streams it straight into the pipeline, with no intermediate buffer.
///
/// Injection stops when the mispredicted branch resolves — usually long
/// before the reconstruction budget (ROB + frontend depth) is reached — so
/// the fused walk reconstructs exactly the prefix the pipeline consumes
/// and skips the tail a buffered walk would have produced and thrown away.
/// The injected stream, pipeline state, and timing are bit-identical to
/// the `reconstruct_into` + `inject_wrong_path` pair; the only observable
/// difference is that the code-cache hit/miss counters reflect the probed
/// prefix rather than the full budget. Used by the reconstruction
/// technique, whose memory timings are always
/// [`LoadTiming::AssumeL1Hit`] (`mem` is never known); convergence
/// exploitation needs the materialized window for address recovery and
/// keeps the unfused pair.
pub fn reconstruct_inject(
    code_cache: &mut CodeCache,
    predictor: &BranchPredictor,
    pipeline: &mut Pipeline,
    start: Addr,
    resolve: u64,
    budget: usize,
) {
    let snapshot = pipeline.snapshot_regs();
    let mut window = pipeline.begin_wrong_path();
    let mut spec = predictor.speculative_state();
    let mut pc = start;
    let mut injected = 0usize;
    while injected < budget && pipeline.next_fetch_cycle() < resolve {
        let Some(instr) = code_cache.lookup(pc) else {
            break;
        };
        if matches!(instr, Instr::Halt) {
            break;
        }
        let mut stop = false;
        let next_pc = if instr.is_branch() {
            match predictor.predict_speculative(pc, &instr, &mut spec).next_pc {
                Some(t) => t,
                None => {
                    // The branch itself was fetched; reconstruction cannot
                    // continue past it.
                    stop = true;
                    pc + INSTR_BYTES
                }
            }
        } else {
            pc + INSTR_BYTES
        };
        let _ = pipeline.feed_wrong(
            &mut window,
            pc,
            &instr,
            None,
            LoadTiming::AssumeL1Hit,
            resolve,
        );
        injected += 1;
        if instr.is_branch() && next_pc != pc + INSTR_BYTES {
            pipeline.break_fetch_group();
        }
        if stop {
            break;
        }
        pc = next_pc;
    }
    pipeline.end_wrong_path(window);
    pipeline.restore_regs(snapshot);
}

/// A technique factory: builds a fresh technique for one run's
/// configuration.
pub type TechniqueFactory = Box<dyn Fn(&SimConfig) -> Box<dyn WrongPathTechnique> + Send + Sync>;

struct RegistryEntry {
    label: &'static str,
    mode: WrongPathMode,
    factory: TechniqueFactory,
}

/// A label-indexed registry of wrong-path technique factories.
///
/// [`TechniqueRegistry::builtin`] carries the paper's four techniques in
/// [`WrongPathMode::ALL`] order; experimental techniques are added with
/// [`TechniqueRegistry::register`] and run through
/// [`Simulator::with_technique`](crate::Simulator::with_technique) without
/// touching the core run loop.
pub struct TechniqueRegistry {
    entries: Vec<RegistryEntry>,
}

impl TechniqueRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> TechniqueRegistry {
        TechniqueRegistry {
            entries: Vec::new(),
        }
    }

    /// The four paper techniques, labeled as in the figures (`nowp`,
    /// `instrec`, `conv`, `wpemul`), in [`WrongPathMode::ALL`] order.
    #[must_use]
    pub fn builtin() -> TechniqueRegistry {
        let mut r = TechniqueRegistry::new();
        r.register(
            WrongPathMode::NoWrongPath.label(),
            WrongPathMode::NoWrongPath,
            |_cfg| Box::new(NoWrongPathTechnique::new()),
        );
        r.register(
            WrongPathMode::InstructionReconstruction.label(),
            WrongPathMode::InstructionReconstruction,
            |cfg| Box::new(ReconstructionTechnique::new(cfg)),
        );
        r.register(
            WrongPathMode::ConvergenceExploitation.label(),
            WrongPathMode::ConvergenceExploitation,
            |cfg| Box::new(ConvergenceTechnique::new(cfg)),
        );
        r.register(
            WrongPathMode::WrongPathEmulation.label(),
            WrongPathMode::WrongPathEmulation,
            |cfg| Box::new(EmulationTechnique::new(cfg)),
        );
        r
    }

    /// Registers a technique factory under `label`. A duplicate label
    /// shadows the earlier entry (latest registration wins on build).
    pub fn register(
        &mut self,
        label: &'static str,
        mode: WrongPathMode,
        factory: impl Fn(&SimConfig) -> Box<dyn WrongPathTechnique> + Send + Sync + 'static,
    ) {
        self.entries.push(RegistryEntry {
            label,
            mode,
            factory: Box::new(factory),
        });
    }

    /// Registered `(label, mode)` pairs in registration order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, WrongPathMode)> + '_ {
        self.entries.iter().map(|e| (e.label, e.mode))
    }

    /// Number of registered techniques.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the technique registered under `label` for `cfg`.
    #[must_use]
    pub fn build(&self, label: &str, cfg: &SimConfig) -> Option<Box<dyn WrongPathTechnique>> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.label == label)
            .map(|e| (e.factory)(cfg))
    }

    /// Builds the (latest-registered) technique modeling `mode` for `cfg`.
    #[must_use]
    pub fn build_for_mode(
        &self,
        mode: WrongPathMode,
        cfg: &SimConfig,
    ) -> Option<Box<dyn WrongPathTechnique>> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.mode == mode)
            .map(|e| (e.factory)(cfg))
    }
}

impl Default for TechniqueRegistry {
    fn default() -> TechniqueRegistry {
        TechniqueRegistry::builtin()
    }
}

impl fmt::Debug for TechniqueRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TechniqueRegistry")
            .field(
                "labels",
                &self.entries.iter().map(|e| e.label).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_covers_all_modes_in_order() {
        let r = TechniqueRegistry::builtin();
        let modes: Vec<WrongPathMode> = r.entries().map(|(_, m)| m).collect();
        assert_eq!(modes, WrongPathMode::ALL.to_vec());
        let labels: Vec<&str> = r.entries().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["nowp", "instrec", "conv", "wpemul"]);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn build_by_label_and_mode_agree() {
        let r = TechniqueRegistry::builtin();
        let cfg = SimConfig::new(WrongPathMode::ConvergenceExploitation);
        let by_label = r.build("conv", &cfg).expect("conv is builtin");
        let by_mode = r
            .build_for_mode(WrongPathMode::ConvergenceExploitation, &cfg)
            .expect("mode is builtin");
        assert_eq!(by_label.mode(), by_mode.mode());
        assert!(r.build("no-such-technique", &cfg).is_none());
    }
}
