//! The frontend branch-predictor replica driving wrong-path emulation.
//!
//! For the *wrong-path emulation* technique the functional simulator must
//! know, while it runs ahead, which branches the timing model will later
//! mispredict — the paper solves this by placing "a copy of the branch
//! predictor model" in the functional simulator (§III-B). [`ReplicaPolicy`]
//! is that copy: it observes the correct-path instruction stream in program
//! order through the [`FrontendPolicy`] hook of the instruction queue,
//! maintains a [`BranchPredictor`] identical to the timing model's, and
//! requests full wrong-path emulation whenever its replica mispredicts.
//!
//! Because both predictors are deterministic functions of the program-order
//! branch stream (see `ffsim_uarch::branch`), the replica's mispredictions
//! coincide exactly with the timing model's, and the emulated wrong path is
//! steered by the same speculative predictions the timing model would make.

use ffsim_emu::{BranchOracle, BranchOutcome, DynInst, FrontendPolicy, WrongPathRequest};
use ffsim_isa::{Addr, Instr};
use ffsim_uarch::{BranchConfig, BranchPredictor, SpeculativeState};

/// Deterministic wrong-path pc corruption, for fault injection.
///
/// Every `every_nth` wrong-path request has its start pc XORed with
/// `xor_mask` *before* emulation. Because corruption only perturbs the
/// speculative stream — which is checkpointed and squashed — it must never
/// change correct-path results; the fault-injection harness asserts exactly
/// that.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PcCorruption {
    /// Corrupt the Nth, 2Nth, ... wrong-path request (must be non-zero).
    pub every_nth: u64,
    /// Mask XORed into the wrong-path start pc.
    pub xor_mask: u64,
}

/// Frontend policy holding the branch-predictor replica.
#[derive(Clone, Debug)]
pub struct ReplicaPolicy {
    predictor: BranchPredictor,
    wrong_path_budget: usize,
    /// Speculative fetch state for the wrong path currently being emulated.
    scratch: Option<SpeculativeState>,
    corruption: Option<PcCorruption>,
    requests: u64,
    corrupted: u64,
}

impl ReplicaPolicy {
    /// Creates a replica with the given predictor sizing and per-miss
    /// wrong-path instruction budget (ROB + frontend buffers).
    #[must_use]
    pub fn new(branch_cfg: BranchConfig, wrong_path_budget: usize) -> ReplicaPolicy {
        ReplicaPolicy {
            predictor: BranchPredictor::new(branch_cfg),
            wrong_path_budget,
            scratch: None,
            corruption: None,
            requests: 0,
            corrupted: 0,
        }
    }

    /// Enables deterministic wrong-path pc corruption (fault injection).
    #[must_use]
    pub fn with_pc_corruption(mut self, corruption: Option<PcCorruption>) -> ReplicaPolicy {
        self.corruption = corruption;
        self
    }

    /// The replica predictor (for sync validation against the timing
    /// model's predictor).
    #[must_use]
    pub fn predictor(&self) -> &BranchPredictor {
        &self.predictor
    }

    /// How many wrong-path start pcs were corrupted so far.
    #[must_use]
    pub fn corrupted_requests(&self) -> u64 {
        self.corrupted
    }
}

impl BranchOracle for ReplicaPolicy {
    fn next_fetch_pc(&mut self, pc: Addr, instr: &Instr, _computed: BranchOutcome) -> Option<Addr> {
        // Steer wrong-path branches by prediction, not by their computed
        // outcome (paper §III-A): "the predicted target is used to
        // continue the wrong path".
        let state = self
            .scratch
            .as_mut()
            // Invariant: the emulator only consults the oracle between
            // `begin_wrong_path` (which installs the scratch state) and
            // the matching `end_wrong_path`.
            .expect("oracle called outside wrong-path emulation");
        self.predictor.predict_speculative(pc, instr, state).next_pc
    }
}

impl FrontendPolicy for ReplicaPolicy {
    fn on_instruction(&mut self, inst: &DynInst) -> Option<WrongPathRequest> {
        let b = inst.branch?;
        let res = self
            .predictor
            .observe(inst.pc, &inst.instr, b.taken, b.next_pc);
        let mut start = res.wrong_path_start?;
        self.requests += 1;
        if let Some(c) = self.corruption {
            if c.every_nth > 0 && self.requests.is_multiple_of(c.every_nth) {
                start ^= c.xor_mask;
                self.corrupted += 1;
            }
        }
        self.scratch = Some(self.predictor.speculative_state());
        Some(WrongPathRequest {
            start,
            max_insts: self.wrong_path_budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_emu::{Emulator, InstrQueue};
    use ffsim_isa::{Asm, Reg};
    use ffsim_uarch::CoreConfig;

    fn branch_cfg() -> BranchConfig {
        CoreConfig::tiny_for_tests().branch
    }

    /// A loop whose final iteration mispredicts the back-edge.
    fn loop_program(n: i64) -> ffsim_isa::Program {
        let x = Reg::new(1);
        let mut a = Asm::new();
        a.li(x, n);
        a.label("loop");
        a.addi(x, x, -1);
        a.bnez(x, "loop");
        a.li(Reg::new(2), 7);
        a.li(Reg::new(3), 8);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn replica_attaches_bundle_at_final_back_edge() {
        let policy = ReplicaPolicy::new(branch_cfg(), 16);
        let mut q = InstrQueue::new(Emulator::new(loop_program(50)).unwrap(), policy, 256);
        let mut bundles = Vec::new();
        while let Some(e) = q.pop() {
            if let Some(wp) = e.wrong_path {
                bundles.push((e.inst.pc, wp));
            }
        }
        // The trained back-edge mispredicts on loop exit (plus possibly a
        // couple of cold mispredictions at the start).
        assert!(!bundles.is_empty());
        let (_pc, last) = bundles.last().unwrap();
        // The wrong path on exit re-enters the loop body: addi, bnez, ...
        assert!(!last.insts.is_empty());
        assert_eq!(last.insts[0].instr.to_string(), "addi x1, x1, -1");
    }

    #[test]
    fn replica_matches_independent_predictor() {
        // A second predictor fed the same stream must mispredict at the
        // same branches the replica requested bundles for.
        let policy = ReplicaPolicy::new(branch_cfg(), 16);
        let mut q = InstrQueue::new(Emulator::new(loop_program(30)).unwrap(), policy, 256);
        let mut shadow = BranchPredictor::new(branch_cfg());
        while let Some(e) = q.pop() {
            if let Some(b) = e.inst.branch {
                let res = shadow.observe(e.inst.pc, &e.inst.instr, b.taken, b.next_pc);
                let expect_bundle = res.mispredicted && res.wrong_path_start.is_some();
                assert_eq!(
                    e.wrong_path.is_some(),
                    expect_bundle,
                    "replica desync at pc {:#x}",
                    e.inst.pc
                );
                if let (Some(wp), Some(start)) = (&e.wrong_path, res.wrong_path_start) {
                    if let Some(first) = wp.insts.first() {
                        assert_eq!(first.pc, start);
                    }
                }
            } else {
                assert!(e.wrong_path.is_none());
            }
        }
    }

    #[test]
    fn pc_corruption_is_counted_and_confined_to_wrong_path() {
        let policy = ReplicaPolicy::new(branch_cfg(), 16).with_pc_corruption(Some(PcCorruption {
            every_nth: 1,
            xor_mask: 0xffff_0000,
        }));
        let mut q = InstrQueue::new(Emulator::new(loop_program(50)).unwrap(), policy, 256);
        let mut retired = 0;
        while q.pop().is_some() {
            retired += 1;
        }
        assert!(q.policy().corrupted_requests() >= 1);
        assert!(
            q.fault_stats().illegal_pc_stops >= 1,
            "corrupted start pcs land outside the text"
        );
        assert!(q.fault().is_none(), "corruption never ends the stream");
        // Same correct-path length as an uncorrupted run.
        let clean = ReplicaPolicy::new(branch_cfg(), 16);
        let mut q2 = InstrQueue::new(Emulator::new(loop_program(50)).unwrap(), clean, 256);
        let mut clean_retired = 0;
        while q2.pop().is_some() {
            clean_retired += 1;
        }
        assert_eq!(retired, clean_retired);
        assert_eq!(
            q.emulator().digest(),
            q2.emulator().digest(),
            "architectural state is bit-identical"
        );
    }

    #[test]
    fn budget_is_honoured() {
        let policy = ReplicaPolicy::new(branch_cfg(), 5);
        let mut q = InstrQueue::new(Emulator::new(loop_program(40)).unwrap(), policy, 256);
        while let Some(e) = q.pop() {
            if let Some(wp) = e.wrong_path {
                assert!(wp.insts.len() <= 5);
            }
        }
    }
}
