//! The four wrong-path modeling configurations evaluated by the paper.

use std::fmt;

/// How the simulator models instructions past a mispredicted branch.
///
/// These are exactly the four simulator versions of the paper's §IV:
///
/// 1. no wrong-path modeling (the functional-first default),
/// 2. instruction reconstruction from the code cache (§III-A),
/// 3. instruction reconstruction plus memory-address reconstruction by
///    exploiting wrong/correct-path convergence (§III-C) — the paper's
///    novel technique,
/// 4. full functional wrong-path emulation (§III-B) — the accuracy
///    reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WrongPathMode {
    /// Halt fetch on a misprediction until the branch resolves.
    NoWrongPath,
    /// Reconstruct wrong-path instructions from the code cache; memory
    /// addresses are unknown, so wrong-path memory operations are modeled
    /// as data-cache hits and never touch cache state.
    InstructionReconstruction,
    /// Instruction reconstruction, plus recovery of wrong-path memory
    /// addresses from the future correct path where the two paths
    /// converge and the operations are register-dependence-free.
    ConvergenceExploitation,
    /// Full functional emulation of the wrong path in the frontend
    /// (checkpoint, redirect, suppressed stores) — slowest, most accurate.
    WrongPathEmulation,
}

impl WrongPathMode {
    /// All four modes in the paper's order.
    pub const ALL: [WrongPathMode; 4] = [
        WrongPathMode::NoWrongPath,
        WrongPathMode::InstructionReconstruction,
        WrongPathMode::ConvergenceExploitation,
        WrongPathMode::WrongPathEmulation,
    ];

    /// The short label used in the paper's figures (`nowp`, `instrec`,
    /// `conv`, `wpemul`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WrongPathMode::NoWrongPath => "nowp",
            WrongPathMode::InstructionReconstruction => "instrec",
            WrongPathMode::ConvergenceExploitation => "conv",
            WrongPathMode::WrongPathEmulation => "wpemul",
        }
    }

    /// Whether this mode injects wrong-path instructions into the pipeline.
    #[must_use]
    pub fn models_wrong_path(self) -> bool {
        self != WrongPathMode::NoWrongPath
    }

    /// Whether this mode reconstructs from the code cache (as opposed to
    /// emulating in the functional frontend).
    #[must_use]
    pub fn uses_code_cache(self) -> bool {
        matches!(
            self,
            WrongPathMode::InstructionReconstruction | WrongPathMode::ConvergenceExploitation
        )
    }
}

impl fmt::Display for WrongPathMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = WrongPathMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["nowp", "instrec", "conv", "wpemul"]);
    }

    #[test]
    fn classification() {
        assert!(!WrongPathMode::NoWrongPath.models_wrong_path());
        assert!(WrongPathMode::WrongPathEmulation.models_wrong_path());
        assert!(WrongPathMode::InstructionReconstruction.uses_code_cache());
        assert!(WrongPathMode::ConvergenceExploitation.uses_code_cache());
        assert!(!WrongPathMode::WrongPathEmulation.uses_code_cache());
        assert!(!WrongPathMode::NoWrongPath.uses_code_cache());
    }
}
