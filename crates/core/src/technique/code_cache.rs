//! The code cache between the functional and performance simulators.
//!
//! The functional simulator only ever delivers *correct-path* instructions.
//! But a static branch executed several times has, at some point, had both
//! of its successor paths delivered. The code cache (paper §III-A)
//! remembers the decode information of every instruction the performance
//! simulator has consumed — "instruction address, instruction type, input
//! and output registers" — so that on a misprediction the wrong path can
//! be *reconstructed* by walking remembered instructions from the wrong
//! target. A lookup miss stops reconstruction and falls back to halting
//! fetch.

use ffsim_emu::FxBuildHasher;
use ffsim_isa::{Addr, Instr};
use std::collections::{HashMap, VecDeque};

/// Lookup/insert statistics of the code cache.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CodeCacheStats {
    /// Successful wrong-path lookups.
    pub hits: u64,
    /// Lookups that found no remembered instruction (reconstruction stop).
    pub misses: u64,
    /// Entries evicted due to the capacity bound.
    pub evictions: u64,
}

/// How a memoized straight-line run of remembered instructions ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum RunEnd {
    /// The run's last instruction is a branch (always included, per the
    /// reconstruction stopping rules).
    Branch,
    /// The pc after the run holds a remembered `halt`. A run of length
    /// zero with this end marks an entry pc that is itself `halt`.
    Halt,
    /// Split at [`RUN_CAP`]; the walk continues at the pc after the run.
    Cap,
}

/// Maximum instructions per memoized run, mirroring the emulator-side
/// block cache's length cap: long branch-free stretches are chunked so a
/// single run never holds a pathological amount of straight-line code.
pub(crate) const RUN_CAP: usize = 64;

/// Decode-information cache indexed by instruction address.
///
/// By default the cache is unbounded — program text is finite, which
/// mirrors the paper's implementation. A capacity bound (with FIFO
/// replacement in insertion order, so runs are bit-reproducible) is
/// available for the code-cache-size ablation study.
///
/// Unbounded caches additionally memoize *straight-line runs* keyed by
/// entry pc (the timing-side analogue of the emulator's basic-block
/// cache, see DESIGN.md §"Batched handoff and the block cache"): repeated
/// wrong-path reconstruction of the same region then iterates a decoded
/// slice instead of probing the map once per instruction. Runs are only
/// memoized when their end can never move — a terminating branch, a
/// remembered `halt`, or the length cap — so later inserts cannot stale
/// them; bounded (ablation) caches evict, so they never memoize.
///
/// # Examples
///
/// ```
/// use ffsim_core::CodeCache;
/// use ffsim_isa::Instr;
/// let mut cc = CodeCache::unbounded();
/// cc.insert(0x1000, Instr::Nop);
/// assert_eq!(cc.lookup(0x1000), Some(Instr::Nop));
/// assert_eq!(cc.lookup(0x2000), None);
/// ```
#[derive(Clone, Debug)]
pub struct CodeCache {
    /// Keyed with the cheap address-mixing hasher: lookups sit on the
    /// wrong-path reconstruction hot loop, where SipHash dominates.
    entries: HashMap<Addr, Instr, FxBuildHasher>,
    /// Insertion order of live keys (bounded caches only): the FIFO
    /// eviction queue. The front is always the oldest live key.
    order: VecDeque<Addr>,
    /// Memoized straight-line runs by entry pc (unbounded caches only).
    runs: HashMap<Addr, (Box<[Instr]>, RunEnd), FxBuildHasher>,
    capacity: Option<usize>,
    stats: CodeCacheStats,
}

impl CodeCache {
    /// Creates an unbounded code cache (the paper's configuration).
    #[must_use]
    pub fn unbounded() -> CodeCache {
        CodeCache {
            entries: HashMap::default(),
            order: VecDeque::new(),
            runs: HashMap::default(),
            capacity: None,
            stats: CodeCacheStats::default(),
        }
    }

    /// Creates a capacity-bounded code cache with deterministic FIFO
    /// replacement in insertion order (for ablation studies).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> CodeCache {
        assert!(capacity > 0, "code cache capacity must be positive");
        CodeCache {
            entries: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            order: VecDeque::with_capacity(capacity),
            runs: HashMap::default(),
            capacity: Some(capacity),
            stats: CodeCacheStats::default(),
        }
    }

    /// Number of remembered instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CodeCacheStats {
        self.stats
    }

    /// Resets statistics (entries are kept — use after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CodeCacheStats::default();
    }

    /// Remembers the decode information of a consumed correct-path
    /// instruction.
    pub fn insert(&mut self, pc: Addr, instr: Instr) {
        if let Some(slot) = self.entries.get_mut(&pc) {
            if *slot != instr {
                // A remembered pc changed meaning (never happens for real
                // programs — text is immutable — but the API permits it):
                // every memoized run is suspect, drop them all.
                self.runs.clear();
            }
            *slot = instr;
            return;
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                // FIFO replacement: evict the oldest live key, so bounded
                // runs are deterministic (HashMap iteration order is not).
                if let Some(victim) = self.order.pop_front() {
                    self.entries.remove(&victim);
                    self.stats.evictions += 1;
                }
            }
        }
        self.entries.insert(pc, instr);
        if self.capacity.is_some() {
            self.order.push_back(pc);
        }
    }

    /// Looks up the remembered instruction at `pc`, counting hit/miss.
    pub fn lookup(&mut self, pc: Addr) -> Option<Instr> {
        match self.entries.get(&pc) {
            Some(&i) => {
                self.stats.hits += 1;
                Some(i)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks presence without touching statistics.
    #[must_use]
    pub fn contains(&self, pc: Addr) -> bool {
        self.entries.contains_key(&pc)
    }

    /// The memoized straight-line run entered at `pc`, if one was recorded
    /// by an earlier reconstruction walk. Statistics are untouched — the
    /// caller counts one hit per instruction it actually consumes, which
    /// keeps the counters identical to a per-instruction walk.
    pub(crate) fn run_at(&self, pc: Addr) -> Option<(&[Instr], RunEnd)> {
        self.runs.get(&pc).map(|(run, end)| (&run[..], *end))
    }

    /// Memoizes the straight-line run entered at `pc`. No-op for bounded
    /// caches: eviction could remove a member instruction, and the run
    /// memo has no per-member back-pointers to notice.
    pub(crate) fn memoize_run(&mut self, pc: Addr, run: Vec<Instr>, end: RunEnd) {
        if self.capacity.is_none() {
            self.runs.insert(pc, (run.into_boxed_slice(), end));
        }
    }

    /// Counts `n` successful lookups served from a memoized run.
    pub(crate) fn add_run_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }
}

impl Default for CodeCache {
    fn default() -> CodeCache {
        CodeCache::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsim_isa::{AluOp, Reg};

    fn alu(n: u8) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(n),
            rs1: Reg::new(1),
            rs2: Reg::new(2),
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut cc = CodeCache::unbounded();
        cc.insert(0x1000, alu(3));
        cc.insert(0x1004, alu(4));
        assert_eq!(cc.lookup(0x1000), Some(alu(3)));
        assert_eq!(cc.lookup(0x1004), Some(alu(4)));
        assert_eq!(cc.lookup(0x1008), None);
        assert_eq!(cc.stats().hits, 2);
        assert_eq!(cc.stats().misses, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut cc = CodeCache::unbounded();
        cc.insert(0x1000, alu(3));
        cc.insert(0x1000, alu(5));
        assert_eq!(cc.len(), 1);
        assert_eq!(cc.lookup(0x1000), Some(alu(5)));
    }

    #[test]
    fn capacity_bound_evicts() {
        let mut cc = CodeCache::with_capacity(4);
        for i in 0..10u64 {
            cc.insert(0x1000 + i * 4, alu((i % 30) as u8));
        }
        assert_eq!(cc.len(), 4);
        assert_eq!(cc.stats().evictions, 6);
    }

    #[test]
    fn reinsert_does_not_evict_when_at_capacity() {
        let mut cc = CodeCache::with_capacity(2);
        cc.insert(0x1000, alu(3));
        cc.insert(0x1004, alu(4));
        cc.insert(0x1000, alu(5));
        assert_eq!(cc.len(), 2);
        assert_eq!(cc.stats().evictions, 0);
        assert!(cc.contains(0x1004));
    }

    #[test]
    fn eviction_is_fifo_in_insertion_order() {
        let mut cc = CodeCache::with_capacity(3);
        for pc in [0x1000u64, 0x1004, 0x1008] {
            cc.insert(pc, alu(1));
        }
        // Re-inserting 0x1000 must not refresh its age: it is still the
        // oldest and the next victim.
        cc.insert(0x1000, alu(2));
        cc.insert(0x2000, alu(3));
        assert!(!cc.contains(0x1000), "oldest key evicted first");
        assert!(cc.contains(0x1004));
        assert!(cc.contains(0x1008));
        assert!(cc.contains(0x2000));
        cc.insert(0x2004, alu(4));
        assert!(!cc.contains(0x1004), "second-oldest evicted next");
    }

    #[test]
    fn bounded_inserts_are_reproducible() {
        // Two caches fed the same sequence end with identical contents —
        // the determinism the ablations golden relies on.
        let seq: Vec<u64> = (0..200).map(|i| 0x1000 + (i * 37 % 64) * 4).collect();
        let mut a = CodeCache::with_capacity(16);
        let mut b = CodeCache::with_capacity(16);
        for &pc in &seq {
            a.insert(pc, alu(1));
            b.insert(pc, alu(1));
        }
        assert_eq!(a.stats().evictions, b.stats().evictions);
        for &pc in &seq {
            assert_eq!(a.contains(pc), b.contains(pc), "divergence at {pc:#x}");
        }
    }

    #[test]
    fn contains_is_stats_free() {
        let mut cc = CodeCache::unbounded();
        cc.insert(0x1000, alu(3));
        assert!(cc.contains(0x1000));
        assert!(!cc.contains(0x2000));
        assert_eq!(cc.stats().hits + cc.stats().misses, 0);
    }
}
