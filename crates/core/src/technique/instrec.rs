//! Instruction reconstruction from the code cache (paper §III-A).

use crate::sim::SimConfig;
use crate::technique::code_cache::CodeCache;
use crate::technique::mode::WrongPathMode;
use crate::technique::{
    passive_frontend, reconstruct_inject, MispredictContext, TechniqueStats, WrongPathTechnique,
};
use ffsim_emu::{DynInst, Emulator, FetchSource};

/// Wrong-path instructions are rebuilt from a [`CodeCache`] of previously
/// seen decode information, steered by speculative branch predictions.
/// Memory addresses remain unknown, so wrong-path memory operations are
/// modeled as data-cache hits and never touch cache state.
#[derive(Debug)]
pub struct ReconstructionTechnique {
    code_cache: CodeCache,
    budget: usize,
}

impl ReconstructionTechnique {
    /// Creates the technique with the configured code-cache bound and
    /// per-miss wrong-path budget.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> ReconstructionTechnique {
        ReconstructionTechnique {
            code_cache: match cfg.code_cache_capacity {
                Some(cap) => CodeCache::with_capacity(cap),
                None => CodeCache::unbounded(),
            },
            budget: cfg.core.wrong_path_budget(),
        }
    }
}

impl WrongPathTechnique for ReconstructionTechnique {
    fn mode(&self) -> WrongPathMode {
        WrongPathMode::InstructionReconstruction
    }

    fn build_frontend(&self, emu: Emulator, cfg: &SimConfig) -> Box<dyn FetchSource> {
        passive_frontend(emu, cfg)
    }

    fn on_instruction(&mut self, inst: &DynInst) {
        self.code_cache.insert(inst.pc, inst.instr);
    }

    fn on_mispredict(&mut self, cx: &mut MispredictContext<'_>) {
        if let Some(start) = cx.wrong_path_start {
            // Fused reconstruct + inject: the walk stops the moment the
            // pipeline stops consuming (branch resolution), skipping the
            // budget-sized tail a buffered reconstruction would discard.
            reconstruct_inject(
                &mut self.code_cache,
                cx.predictor,
                cx.pipeline,
                start,
                cx.resolve,
                self.budget,
            );
        }
    }

    fn stats(&self) -> TechniqueStats {
        TechniqueStats {
            code_cache: self.code_cache.stats(),
            ..TechniqueStats::default()
        }
    }

    fn reset_stats(&mut self) {
        self.code_cache.reset_stats();
    }
}
