//! # ffsim-core — wrong-path modeling in a functional-first simulator
//!
//! The primary contribution of *“Simulating Wrong-Path Instructions in
//! Decoupled Functional-First Simulation”* (Eyerman et al., ISPASS 2023),
//! implemented from scratch in Rust: an out-of-order core timing model fed
//! by a decoupled functional frontend ([`ffsim-emu`]), with four wrong-path
//! modeling techniques ([`WrongPathMode`]):
//!
//! 1. **No wrong path** — fetch halts on a misprediction (the common
//!    functional-first default),
//! 2. **Instruction reconstruction** — wrong-path instructions are rebuilt
//!    from a [`CodeCache`] of previously seen decode information; memory
//!    addresses remain unknown,
//! 3. **Convergence exploitation** — the paper's novel technique: detect
//!    convergence between the wrong path and the *future* correct path
//!    (visible thanks to functional runahead) and copy memory addresses
//!    into register-independent wrong-path operations,
//! 4. **Wrong-path emulation** — the functional frontend checkpoints,
//!    redirects, and fully emulates the wrong path (accuracy reference).
//!
//! # Examples
//!
//! Compare the four techniques on a program:
//!
//! ```
//! use ffsim_core::{run_all_modes, WrongPathMode};
//! use ffsim_emu::Memory;
//! use ffsim_isa::{Asm, Reg};
//! use ffsim_uarch::CoreConfig;
//!
//! let mut a = Asm::new();
//! a.li(Reg::new(1), 50);
//! a.label("loop");
//! a.addi(Reg::new(1), Reg::new(1), -1);
//! a.bnez(Reg::new(1), "loop");
//! a.halt();
//! let program = a.assemble()?;
//!
//! let results = run_all_modes(&program, &Memory::new(), &CoreConfig::tiny_for_tests(), None)?;
//! let reference = &results[3]; // wpemul
//! for r in &results {
//!     println!("{}: ipc {:.3}, error {:+.2}%", r.mode, r.ipc(), r.error_vs(reference));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`ffsim-emu`]: ../ffsim_emu/index.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod metrics;
mod pipeline;
mod sim;
pub mod technique;

pub use error::SimError;
pub use ffsim_emu::{CancelCause, CancelToken, FetchSource};
pub use ffsim_obs::{CpiStack, ObsConfig, Phase, PhaseProfiler, StallClass};
pub use metrics::{FaultStats, ObsReport, SimResult};
pub use pipeline::{InstrTimes, LoadTiming, Pipeline, WindowState};
pub use sim::{run_all_modes, NullObserver, SimConfig, SimObserver, Simulator};
pub use technique::code_cache::{CodeCache, CodeCacheStats};
pub use technique::mode::WrongPathMode;
pub use technique::replica::{PcCorruption, ReplicaPolicy};
pub use technique::wrongpath::{
    reconstruct, recover_addresses, ConvergenceConfig, ConvergenceStats, WpInst,
};
pub use technique::{
    passive_frontend, MispredictContext, TechniqueRegistry, TechniqueStats, WrongPathTechnique,
};
