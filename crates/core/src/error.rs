//! The crate-level typed error surface.
//!
//! Everything that can go wrong while building or running a simulation is
//! funnelled into [`SimError`], so harnesses and binaries get one `Result`
//! type end to end: assembly errors, emulator construction errors, config
//! validation, and execution faults (with their correct-path/wrong-path
//! provenance preserved).

use ffsim_emu::{CancelCause, EmuError, Fault};
use ffsim_isa::AsmError;
use std::error::Error;
use std::fmt;

/// Why a simulation could not be built or did not complete.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The [`SimConfig`](crate::SimConfig) is invalid (zero queue depth,
    /// zero watchdog, ...). The message names the offending knob.
    InvalidConfig(String),
    /// A fault on the *correct* path terminated the run — a workload bug.
    /// `retired` is the number of instructions retired before the fault.
    CorrectPathFault {
        /// The fault raised by the correct-path instruction.
        fault: Fault,
        /// Correct-path instructions retired before the fault.
        retired: u64,
    },
    /// A fault during wrong-path emulation ended the run under
    /// [`FaultPolicy::AbortRun`](ffsim_emu::FaultPolicy::AbortRun). Under
    /// the default squash policy wrong-path faults never surface here.
    WrongPathFault(Fault),
    /// The functional emulator could not be constructed.
    Emulator(EmuError),
    /// The workload program failed to assemble.
    Assembly(AsmError),
    /// The run's [`CancelToken`](crate::CancelToken) was cancelled by a
    /// supervisor (shutdown, user interrupt). The simulation stopped at a
    /// clean instruction boundary; no thread was killed.
    Cancelled,
    /// The run's [`CancelToken`](crate::CancelToken) expired: a wall-clock
    /// watchdog decided the job ran too long. As with [`SimError::Cancelled`],
    /// the stop is cooperative and state stays consistent.
    DeadlineExceeded,
}

impl From<CancelCause> for SimError {
    fn from(cause: CancelCause) -> SimError {
        match cause {
            CancelCause::Cancelled => SimError::Cancelled,
            CancelCause::DeadlineExceeded => SimError::DeadlineExceeded,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::CorrectPathFault { fault, retired } => {
                write!(
                    f,
                    "correct-path fault after {retired} instructions: {fault}"
                )
            }
            SimError::WrongPathFault(fault) => {
                write!(f, "wrong-path fault (abort policy): {fault}")
            }
            SimError::Emulator(e) => write!(f, "emulator setup failed: {e}"),
            SimError::Assembly(e) => write!(f, "assembly failed: {e}"),
            SimError::Cancelled => write!(f, "simulation cancelled by supervisor"),
            SimError::DeadlineExceeded => write!(f, "simulation exceeded its wall-clock deadline"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::CorrectPathFault { fault, .. } | SimError::WrongPathFault(fault) => {
                Some(fault)
            }
            SimError::Emulator(e) => Some(e),
            SimError::Assembly(e) => Some(e),
            SimError::InvalidConfig(_) | SimError::Cancelled | SimError::DeadlineExceeded => None,
        }
    }
}

impl From<EmuError> for SimError {
    fn from(e: EmuError) -> SimError {
        SimError::Emulator(e)
    }
}

impl From<AsmError> for SimError {
    fn from(e: AsmError) -> SimError {
        SimError::Assembly(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_cause() {
        let e = SimError::CorrectPathFault {
            fault: Fault::IllegalPc { pc: 0x40 },
            retired: 7,
        };
        let s = e.to_string();
        assert!(s.contains("7 instructions"));
        assert!(s.contains("0x40"));
        assert!(e.source().is_some());
    }

    #[test]
    fn conversions() {
        let e: SimError = AsmError::EmptyProgram.into();
        assert!(matches!(e, SimError::Assembly(_)));
        let e: SimError = EmuError::EntryNotExecutable { entry: 4 }.into();
        assert!(matches!(e, SimError::Emulator(_)));
    }
}
